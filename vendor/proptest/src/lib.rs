//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), half-open range and tuple strategies, [`any`],
//! [`collection::vec`] / [`collection::hash_set`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics: each test body runs [`ProptestConfig::cases`] times against
//! freshly sampled inputs from a generator seeded deterministically from the
//! test's name. A failing assertion panics with the case number (there is no
//! shrinking); `prop_assume!` rejects the sampled case and moves on.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hash;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Deterministic per-test random source handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates the generator for a named test (FNV-1a of the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    fn range<R: SampleRange>(&mut self, r: R) -> R::Output {
        self.inner.gen_range(r)
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

int_strategy!(u64, u32, usize);

// The rand shim deliberately offers no u8/u16 range sampling (see its docs);
// widen to u32 — proptest streams are this crate's own, not rand-calibrated.
macro_rules! narrow_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range(self.start as u32..self.end as u32) as $t
            }
        }
    )*};
}

narrow_int_strategy!(u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B),
    (A, B, C),
    (A, B, C, D),
}

/// Full-domain sampling for a primitive type ([`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing any value of `T`'s domain.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet`s with a cardinality drawn from `size`.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.range(self.size.clone());
            let mut out = HashSet::with_capacity(target);
            // Duplicates shrink the set below `target`; bound the retries so a
            // small element domain cannot loop forever.
            for _ in 0..target.saturating_mul(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest defaults to 256; these synthetic-workload
        // properties are cheap enough to match that.
        ProptestConfig { cases: 256 }
    }
}

/// Error type carried out of a property body.
pub enum TestCaseError {
    /// The sampled inputs did not satisfy a `prop_assume!` precondition.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20),
                        "prop_assume! rejected too many cases in {}",
                        stringify!($name),
                    );
                    let __samples = ( $( $crate::Strategy::sample(&($strategy), &mut rng), )* );
                    #[allow(clippy::redundant_closure_call)]
                    let case: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        #[allow(unused_parens, irrefutable_let_patterns)]
                        let ( $($arg,)* ) = __samples;
                        $body
                        Ok(())
                    })();
                    match case {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), ran, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Fallible assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format_args!($($fmt)+)
            )));
        }
    };
}

/// Fallible equality assertion usable inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 5u64..10, (a, b) in (0u32..4, 0.0f64..1.0)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(a < 4, "a was {}", a);
            prop_assert!((0.0..1.0).contains(&b));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(0u64..100, 1..8),
            s in prop::collection::hash_set(0u64..1000, 1..8)
        ) {
            prop_assert!((1..8).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_header_is_accepted(seed in any::<u64>()) {
            let _ = seed;
        }
    }
}
