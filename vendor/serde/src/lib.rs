//! Minimal offline stand-in for the `serde` facade.
//!
//! Exposes the two trait names and the derive macros the workspace imports
//! (`use serde::{Deserialize, Serialize}` + `#[derive(...)]`). The derives are
//! no-ops and the traits are empty markers: no code in this tree serializes
//! through the serde data model (see `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
