//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace only uses serde derives as declarations of intent — nothing
//! serializes through the serde data model at runtime (the `campaign` crate
//! does its own TOML/JSON encoding). These derives therefore expand to
//! nothing, which keeps every `#[derive(Serialize, Deserialize)]` in the tree
//! compiling without the real proc-macro stack (syn/quote) available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
