//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements exactly the API surface `sim_core::rng` consumes:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `u64`/`f64`/`bool`/`u32`, and [`Rng::gen_range`] over half-open integer
//! and float ranges. The generator is xoshiro256++ seeded through SplitMix64
//! — the same algorithms `rand` 0.8's 64-bit `SmallRng` uses — and the
//! sampling paths ([`Standard`] for `u64`/`u32`/`f64`, the zone-rejection
//! `gen_range`) replicate rand 0.8 draw for draw, so the value streams match
//! the registry crate the workload profiles were calibrated against. Only
//! [`Standard`] for `bool` is a surface rand derives differently (from `u8`);
//! nothing in this workspace samples booleans directly.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's 64-bit SmallRng implements next_u32 by truncating next_u64.
        rng.next_u64() as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable uniformly from an [`RngCore`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

// Bit-compatible with rand 0.8's `UniformInt::sample_single` (widening
// multiply with a rejection zone), so generators seeded identically produce
// the same value stream as they did under the registry crate. The workload
// layouts and traces in this repository were calibrated against that stream;
// keeping it avoids perturbing every downstream figure.
macro_rules! int_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end as u64).wrapping_sub(self.start as u64);
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.next_u64();
                    let m = (v as u128) * (range as u128);
                    let (hi, lo) = ((m >> 64) as u64, m as u64);
                    if lo <= zone {
                        return self.start + hi as $t;
                    }
                }
            }
        }
    )*};
}

int_range_64!(u64, usize);

// No u8/u16 impls: rand 0.8 computes a different (exact) rejection zone for
// sub-32-bit types, so offering them here would break the draw-for-draw
// compatibility contract. Nothing in this workspace samples them; add them
// only together with rand's exact small-type zone.
impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let range = self.end.wrapping_sub(self.start);
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            // rand's Xoshiro256++ next_u32 truncates next_u64.
            let v = rng.next_u64() as u32;
            let m = (v as u64) * (range as u64);
            let (hi, lo) = ((m >> 32) as u32, m as u32);
            if lo <= zone {
                return self.start + hi;
            }
        }
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = rng.gen_range(0usize..7);
            assert!(i < 7);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
