//! Cross-crate integration tests: the qualitative claims of the paper's
//! evaluation, checked end-to-end on small synthetic workloads.

use boomerang::{Mechanism, RunLength, WorkloadData};
use frontend::Simulator;
use sim_core::{MicroarchConfig, NocModel, PerfectComponents};
use workloads::WorkloadKind;
struct Bench {
    layout: workloads::CodeLayout,
    trace: workloads::Trace,
}

impl Bench {
    fn new(kind: WorkloadKind, footprint: u64, blocks: usize) -> Self {
        let profile = kind.profile().with_footprint_bytes(footprint);
        let layout = workloads::CodeLayout::generate(&profile);
        let trace = workloads::Trace::generate_blocks(&layout, blocks);
        Bench { layout, trace }
    }

    fn run(&self, mechanism: Mechanism, config: &MicroarchConfig) -> frontend::SimStats {
        let mut sim = Simulator::new(
            config.clone(),
            &self.layout,
            self.trace.blocks(),
            mechanism.build(),
        );
        sim.run_with_warmup(5_000)
    }
}

#[test]
fn figure1_opportunity_perfect_l1i_and_btb_help() {
    let bench = Bench::new(WorkloadKind::Apache, 256 * 1024, 40_000);
    let cfg = MicroarchConfig::hpca17();
    let baseline = bench.run(Mechanism::Baseline, &cfg);
    let perfect_l1i = bench.run(
        Mechanism::Baseline,
        &cfg.clone().with_perfect(PerfectComponents::l1i()),
    );
    let perfect_both = bench.run(
        Mechanism::Baseline,
        &cfg.clone().with_perfect(PerfectComponents::l1i_and_btb()),
    );
    let s1 = perfect_l1i.speedup_vs(&baseline);
    let s2 = perfect_both.speedup_vs(&baseline);
    assert!(s1 > 1.03, "perfect L1-I speedup too small: {s1:.3}");
    assert!(
        s2 > s1,
        "perfect BTB must add on top of perfect L1-I: {s2:.3} vs {s1:.3}"
    );
}

#[test]
fn figure7_boomerang_and_confluence_eliminate_most_btb_miss_squashes() {
    let bench = Bench::new(WorkloadKind::Db2, 256 * 1024, 40_000);
    let cfg = MicroarchConfig::hpca17();
    let fdip = bench.run(Mechanism::Fdip, &cfg);
    let confluence = bench.run(Mechanism::Confluence, &cfg);
    let boomerang = bench.run(Mechanism::Boomerang(Default::default()), &cfg);
    assert!(fdip.squashes.btb_miss > 0);
    assert!(
        boomerang.squashes.btb_miss * 4 < fdip.squashes.btb_miss,
        "Boomerang must remove most BTB-miss squashes ({} vs {})",
        boomerang.squashes.btb_miss,
        fdip.squashes.btb_miss
    );
    assert!(confluence.squashes.btb_miss < fdip.squashes.btb_miss);
}

#[test]
fn figure8_prefetchers_cover_stall_cycles() {
    let bench = Bench::new(WorkloadKind::Zeus, 256 * 1024, 40_000);
    let cfg = MicroarchConfig::hpca17();
    let baseline = bench.run(Mechanism::Baseline, &cfg);
    for mechanism in [
        Mechanism::NextLine,
        Mechanism::Fdip,
        Mechanism::Shift,
        Mechanism::Boomerang(Default::default()),
    ] {
        let stats = bench.run(mechanism, &cfg);
        let coverage = stats.stall_coverage_vs(&baseline);
        assert!(
            coverage > 0.1,
            "{} covered only {:.1}% of stall cycles",
            mechanism.label(),
            coverage * 100.0
        );
    }
}

#[test]
fn figure9_boomerang_matches_confluence_and_beats_pure_prefetchers() {
    let bench = Bench::new(WorkloadKind::Nutch, 256 * 1024, 40_000);
    let cfg = MicroarchConfig::hpca17();
    let baseline = bench.run(Mechanism::Baseline, &cfg);
    let fdip = bench.run(Mechanism::Fdip, &cfg);
    let confluence = bench.run(Mechanism::Confluence, &cfg);
    let boomerang = bench.run(Mechanism::Boomerang(Default::default()), &cfg);
    assert!(boomerang.speedup_vs(&baseline) > 1.0);
    assert!(boomerang.speedup_vs(&baseline) >= fdip.speedup_vs(&baseline) * 0.98);
    let ratio = boomerang.cycles as f64 / confluence.cycles as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "Boomerang vs Confluence cycle ratio {ratio:.3}"
    );
}

#[test]
fn figure11_lower_llc_latency_shrinks_absolute_benefit() {
    let bench = Bench::new(WorkloadKind::Streaming, 256 * 1024, 40_000);
    let mesh = MicroarchConfig::hpca17();
    let xbar = MicroarchConfig::hpca17().with_noc(NocModel::Crossbar);
    let mesh_base = bench.run(Mechanism::Baseline, &mesh);
    let mesh_boom = bench.run(Mechanism::Boomerang(Default::default()), &mesh);
    let xbar_base = bench.run(Mechanism::Baseline, &xbar);
    let xbar_boom = bench.run(Mechanism::Boomerang(Default::default()), &xbar);
    let mesh_speedup = mesh_boom.speedup_vs(&mesh_base);
    let xbar_speedup = xbar_boom.speedup_vs(&xbar_base);
    assert!(mesh_speedup >= 1.0 && xbar_speedup >= 1.0);
    // The cheaper the LLC access, the smaller the absolute benefit.
    assert!(xbar_speedup <= mesh_speedup + 0.05);
}

#[test]
fn determinism_across_identical_runs() {
    let bench = Bench::new(WorkloadKind::Oracle, 128 * 1024, 20_000);
    let cfg = MicroarchConfig::hpca17();
    let a = bench.run(Mechanism::Boomerang(Default::default()), &cfg);
    let b = bench.run(Mechanism::Boomerang(Default::default()), &cfg);
    assert_eq!(a, b);
}

#[test]
fn storage_comparison_headline() {
    let table = boomerang::storage::comparison_table();
    assert!(table.contains("Boomerang"));
    let boom = Mechanism::Boomerang(Default::default()).metadata_bytes();
    let confluence = Mechanism::Confluence.metadata_bytes();
    assert_eq!(boom, 540);
    assert!(confluence > 400 * boom);
}

#[test]
fn run_length_smoke_workload_data_api() {
    // The public WorkloadData API end-to-end (small but real).
    let data = WorkloadData::generate(WorkloadKind::Streaming, RunLength::smoke_test());
    let cfg = MicroarchConfig::hpca17();
    let baseline = data.run(Mechanism::Baseline, &cfg);
    let boom = data.run(Mechanism::Boomerang(Default::default()), &cfg);
    assert!(baseline.instructions > 0);
    assert!(boom.speedup_vs(&baseline) > 0.9);
}
