//! Differential tests for the lane-batched multi-row engine.
//!
//! Lane batching (`WorkloadData::run_group_with_predictor_engine` over
//! `frontend::LaneSimulator`) is a *schedule*, not an engine: N complete
//! per-row simulators round-robin over one shared immutable trace. Pausing a
//! lane at a block target must not change any state transition, so per-lane
//! statistics must be **bit-identical** to simulating each row alone —
//! whatever the lane cap, the chunk size, or the mix of configs in the
//! group. These tests drive the lane path against per-row runs over
//! randomized tiny profiles for all nine mechanism variants and lane counts
//! {1, 2, 6}, and assert exact equality.

use boomerang::{Mechanism, RunLength, ThrottlePolicy, WorkloadData};
use branch_pred::PredictorKind;
use frontend::SimEngine;
use sim_core::rng::SimRng;
use sim_core::{MicroarchConfig, NocModel};
use workloads::WorkloadProfile;

/// Every mechanism the campaign engine can run, including both Boomerang
/// throttle extremes.
fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::NextLine,
        Mechanism::Dip,
        Mechanism::Fdip,
        Mechanism::Pif,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
        Mechanism::Boomerang(ThrottlePolicy::None),
    ]
}

/// Runs the nine-mechanism group over `data` lane-batched at every lane cap
/// in {1, 2, 6} (plus 0 = whole group) and asserts each row's statistics
/// equal its standalone run.
fn assert_lanes_match_rows(data: &WorkloadData, configs: &[MicroarchConfig]) {
    let mechanisms = all_mechanisms();
    let rows: Vec<(Mechanism, &MicroarchConfig)> = mechanisms
        .iter()
        .enumerate()
        .map(|(at, &mechanism)| (mechanism, &configs[at % configs.len()]))
        .collect();
    let expected: Vec<_> = rows
        .iter()
        .map(|&(mechanism, config)| {
            data.run_with_predictor_engine(
                mechanism,
                config,
                PredictorKind::Tage,
                SimEngine::EventHorizon,
            )
        })
        .collect();
    for lanes in [0usize, 1, 2, 6] {
        let batched = data.run_group_with_predictor_engine(
            &rows,
            PredictorKind::Tage,
            SimEngine::EventHorizon,
            lanes,
        );
        assert_eq!(batched.len(), expected.len());
        for (at, (got, want)) in batched.iter().zip(&expected).enumerate() {
            assert_eq!(
                got, want,
                "lane-batched run diverged from single-row: lanes {lanes}, \
                 row {at} ({:?})",
                rows[at].0,
            );
        }
    }
}

#[test]
fn lane_batching_matches_single_row_on_the_paper_configuration() {
    let data = WorkloadData::generate_from_profile(
        &WorkloadProfile::tiny(53),
        RunLength {
            trace_blocks: 3_000,
            warmup_blocks: 500,
        },
    );
    assert_lanes_match_rows(&data, &[MicroarchConfig::hpca17()]);
}

#[test]
fn lane_batching_matches_single_row_across_mixed_configs() {
    // A lane-batched group may span configs (the campaign groups rows by
    // (workload, seed) across the config axis): lanes with different BTB
    // sizes and NoC latencies diverge maximally in timing while sharing the
    // trace cursor.
    let data = WorkloadData::generate_from_profile(
        &WorkloadProfile::tiny(7).with_footprint_bytes(128 * 1024),
        RunLength {
            trace_blocks: 3_000,
            warmup_blocks: 400,
        },
    );
    let configs = [
        MicroarchConfig::hpca17(),
        MicroarchConfig::hpca17()
            .with_btb_entries(256)
            .with_noc(NocModel::Fixed(70)),
        MicroarchConfig::hpca17().with_btb_entries(8192),
    ];
    assert_lanes_match_rows(&data, &configs);
}

#[test]
fn lane_batching_matches_single_row_over_randomized_profiles() {
    // Fuzz over randomized tiny profiles: footprint, service roots, call
    // depth, seed, warmup and config all vary, deterministically derived
    // from a fixed RNG seed.
    let mut rng = SimRng::seeded(0x1a9e_ba7c);
    for _ in 0..3 {
        let mut profile = WorkloadProfile::tiny(rng.range_u64(0, 1 << 20));
        profile.footprint_bytes = 32 * 1024 + 16 * 1024 * rng.range_u64(0, 8);
        profile.service_roots = 4 + rng.index(24);
        profile.max_call_depth = 4 + rng.index(12);
        let config = MicroarchConfig::hpca17()
            .with_btb_entries(256 << rng.range_u64(0, 4))
            .with_noc(NocModel::Fixed(5 + rng.range_u64(0, 60)));
        let data = WorkloadData::generate_from_profile(
            &profile,
            RunLength {
                trace_blocks: 1_200 + rng.index(1_200),
                warmup_blocks: rng.index(600),
            },
        );
        assert_lanes_match_rows(&data, &[config]);
    }
}

#[test]
fn reference_engine_groups_fall_back_to_per_row() {
    // The per-cycle reference has no resumable split; a group run on it must
    // still produce correct per-row results (via the per-row fallback).
    let data = WorkloadData::generate_from_profile(
        &WorkloadProfile::tiny(11),
        RunLength {
            trace_blocks: 1_200,
            warmup_blocks: 200,
        },
    );
    let config = MicroarchConfig::hpca17();
    let rows = [
        (Mechanism::Baseline, &config),
        (Mechanism::Fdip, &config),
        (Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT), &config),
    ];
    let batched = data.run_group_with_predictor_engine(
        &rows,
        PredictorKind::Tage,
        SimEngine::PerCycleReference,
        0,
    );
    for (at, &(mechanism, config)) in rows.iter().enumerate() {
        let alone = data.run_with_predictor_engine(
            mechanism,
            config,
            PredictorKind::Tage,
            SimEngine::PerCycleReference,
        );
        assert_eq!(batched[at], alone, "row {at} diverged on the reference");
    }
}
