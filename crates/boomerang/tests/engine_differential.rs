//! Differential tests for the event-horizon engine.
//!
//! The per-cycle stepper (`run_with_warmup_reference`) is the semantic
//! definition of the simulator; the event-horizon engine
//! (`run_with_warmup`) bulk-advances over provably dead cycles and must
//! produce **bit-identical** `SimStats`. These tests drive both engines over
//! randomized tiny workload profiles for every mechanism of the evaluation
//! and assert exact equality — any divergence means the idle-horizon
//! computation claimed a cycle was dead when it was not.

use boomerang::{Mechanism, ThrottlePolicy};
use branch_pred::PredictorKind;
use frontend::Simulator;
use sim_core::rng::SimRng;
use sim_core::{MicroarchConfig, NocModel};
use workloads::{CodeLayout, Trace, WorkloadProfile};

/// Every mechanism the campaign engine can run, including both Boomerang
/// throttle extremes.
fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::NextLine,
        Mechanism::Dip,
        Mechanism::Fdip,
        Mechanism::Pif,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
        Mechanism::Boomerang(ThrottlePolicy::None),
    ]
}

fn assert_engines_agree(
    profile: &WorkloadProfile,
    config: &MicroarchConfig,
    blocks: usize,
    warmup: usize,
    predictor: PredictorKind,
) {
    let layout = CodeLayout::generate(profile);
    let trace = Trace::generate_blocks(&layout, blocks);
    for mechanism in all_mechanisms() {
        let fast = Simulator::with_predictor(
            config.clone(),
            &layout,
            trace.blocks(),
            mechanism.build(),
            predictor,
        )
        .run_with_warmup(warmup);
        let reference = Simulator::with_predictor(
            config.clone(),
            &layout,
            trace.blocks(),
            mechanism.build(),
            predictor,
        )
        .run_with_warmup_reference(warmup);
        assert_eq!(
            fast,
            reference,
            "event-horizon diverged from per-cycle reference: mechanism {:?}, seed {}, footprint {}",
            mechanism,
            profile.seed,
            profile.footprint_bytes,
        );
    }
}

#[test]
fn engines_agree_on_the_paper_configuration() {
    assert_engines_agree(
        &WorkloadProfile::tiny(53),
        &MicroarchConfig::hpca17(),
        4_000,
        500,
        PredictorKind::Tage,
    );
}

#[test]
fn engines_agree_under_btb_pressure_and_slow_llc() {
    // A tiny BTB maximises Boomerang stalls and FDIP sequential walks; a
    // slow NoC stretches every fill latency, widening the dead windows the
    // event-horizon engine skips.
    assert_engines_agree(
        &WorkloadProfile::tiny(7).with_footprint_bytes(128 * 1024),
        &MicroarchConfig::hpca17()
            .with_btb_entries(256)
            .with_noc(NocModel::Fixed(70)),
        4_000,
        500,
        PredictorKind::Tage,
    );
}

#[test]
fn engines_agree_over_randomized_profiles() {
    // Fuzz over randomized tiny profiles: footprint, service roots, call
    // depth, seed, warmup and config all vary, deterministically derived
    // from a fixed RNG seed.
    let mut rng = SimRng::seeded(0x000d_1ffe_7e57);
    for _ in 0..6 {
        let mut profile = WorkloadProfile::tiny(rng.range_u64(0, 1 << 20));
        profile.footprint_bytes = 32 * 1024 + 16 * 1024 * rng.range_u64(0, 8);
        profile.service_roots = 4 + rng.index(24);
        profile.max_call_depth = 4 + rng.index(12);
        let config = MicroarchConfig::hpca17()
            .with_btb_entries(256 << rng.range_u64(0, 4))
            .with_noc(NocModel::Fixed(5 + rng.range_u64(0, 60)));
        let blocks = 1_500 + rng.index(2_000);
        let warmup = rng.index(800);
        assert_engines_agree(&profile, &config, blocks, warmup, PredictorKind::Tage);
    }
}

#[test]
fn engines_agree_without_warmup_and_with_bimodal_predictor() {
    assert_engines_agree(
        &WorkloadProfile::tiny(911),
        &MicroarchConfig::hpca17(),
        2_500,
        0,
        PredictorKind::Bimodal,
    );
}
