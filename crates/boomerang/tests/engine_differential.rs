//! Differential tests for the event-horizon engine.
//!
//! The per-cycle stepper (`run_with_warmup_reference`) is the semantic
//! definition of the simulator; the event-horizon engine
//! (`run_with_warmup`) bulk-advances over provably dead cycles and must
//! produce **bit-identical** `SimStats`. These tests drive both engines over
//! randomized tiny workload profiles for every mechanism of the evaluation
//! and assert exact equality — any divergence means the idle-horizon
//! computation claimed a cycle was dead when it was not.

use boomerang::{Mechanism, ThrottlePolicy};
use branch_pred::PredictorKind;
use frontend::Simulator;
use sim_core::rng::SimRng;
use sim_core::{MicroarchConfig, NocModel};
use workloads::{CodeLayout, Trace, WorkloadProfile};

/// Every mechanism the campaign engine can run, including both Boomerang
/// throttle extremes.
fn all_mechanisms() -> Vec<Mechanism> {
    vec![
        Mechanism::Baseline,
        Mechanism::NextLine,
        Mechanism::Dip,
        Mechanism::Fdip,
        Mechanism::Pif,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
        Mechanism::Boomerang(ThrottlePolicy::None),
    ]
}

fn assert_engines_agree(
    profile: &WorkloadProfile,
    config: &MicroarchConfig,
    blocks: usize,
    warmup: usize,
    predictor: PredictorKind,
) {
    let layout = CodeLayout::generate(profile);
    let trace = Trace::generate_blocks(&layout, blocks);
    for mechanism in all_mechanisms() {
        let fast = Simulator::with_predictor(
            config.clone(),
            &layout,
            trace.blocks(),
            mechanism.build(),
            predictor,
        )
        .run_with_warmup(warmup);
        let reference = Simulator::with_predictor(
            config.clone(),
            &layout,
            trace.blocks(),
            mechanism.build(),
            predictor,
        )
        .run_with_warmup_reference(warmup);
        assert_eq!(
            fast,
            reference,
            "event-horizon diverged from per-cycle reference: mechanism {:?}, seed {}, footprint {}",
            mechanism,
            profile.seed,
            profile.footprint_bytes,
        );
    }
}

#[test]
fn engines_agree_on_the_paper_configuration() {
    assert_engines_agree(
        &WorkloadProfile::tiny(53),
        &MicroarchConfig::hpca17(),
        4_000,
        500,
        PredictorKind::Tage,
    );
}

#[test]
fn engines_agree_under_btb_pressure_and_slow_llc() {
    // A tiny BTB maximises Boomerang stalls and FDIP sequential walks; a
    // slow NoC stretches every fill latency, widening the dead windows the
    // event-horizon engine skips.
    assert_engines_agree(
        &WorkloadProfile::tiny(7).with_footprint_bytes(128 * 1024),
        &MicroarchConfig::hpca17()
            .with_btb_entries(256)
            .with_noc(NocModel::Fixed(70)),
        4_000,
        500,
        PredictorKind::Tage,
    );
}

#[test]
fn engines_agree_over_randomized_profiles() {
    // Fuzz over randomized tiny profiles: footprint, service roots, call
    // depth, seed, warmup and config all vary, deterministically derived
    // from a fixed RNG seed.
    let mut rng = SimRng::seeded(0x000d_1ffe_7e57);
    for _ in 0..6 {
        let mut profile = WorkloadProfile::tiny(rng.range_u64(0, 1 << 20));
        profile.footprint_bytes = 32 * 1024 + 16 * 1024 * rng.range_u64(0, 8);
        profile.service_roots = 4 + rng.index(24);
        profile.max_call_depth = 4 + rng.index(12);
        let config = MicroarchConfig::hpca17()
            .with_btb_entries(256 << rng.range_u64(0, 4))
            .with_noc(NocModel::Fixed(5 + rng.range_u64(0, 60)));
        let blocks = 1_500 + rng.index(2_000);
        let warmup = rng.index(800);
        assert_engines_agree(&profile, &config, blocks, warmup, PredictorKind::Tage);
    }
}

#[test]
fn engines_agree_without_warmup_and_with_bimodal_predictor() {
    assert_engines_agree(
        &WorkloadProfile::tiny(911),
        &MicroarchConfig::hpca17(),
        2_500,
        0,
        PredictorKind::Bimodal,
    );
}

/// Configurations chosen to maximise batched-trickle coverage: a small,
/// slow-filling L1-I path keeps the fetch engine stalled on fills while the
/// BPU trickles the FTQ full — the exact windows
/// `Simulator::trickle_fill_stall` batches. Pins the batched-trickle path
/// bit-identical to `run_with_warmup_reference` over randomized profiles.
#[test]
fn batched_trickle_matches_reference_over_randomized_profiles() {
    let mut rng = SimRng::seeded(0x0071_c51e_0b47);
    for _ in 0..4 {
        let mut profile = WorkloadProfile::tiny(rng.range_u64(0, 1 << 20));
        profile.footprint_bytes = 96 * 1024 + 32 * 1024 * rng.range_u64(0, 6);
        profile.hot_callee_fraction = 0.05 + 0.2 * rng.unit();
        // Deep memory: long fill stalls mean long trickle windows.
        let config = MicroarchConfig::hpca17()
            .with_noc(NocModel::Fixed(30 + rng.range_u64(0, 60)))
            .with_btb_entries(512 << rng.range_u64(0, 3));
        let blocks = 2_000 + rng.index(2_000);
        assert_engines_agree(&profile, &config, blocks, 400, PredictorKind::Tage);
    }
}

/// Configurations chosen to maximise block-granular *streaming* coverage —
/// the exact windows `Simulator::stream_fast_forward` batches through
/// `BackEnd::stream_window`. Stall-light: a small footprint keeps the code
/// L1-I-resident after warmup, so the fetch engine spends its time
/// streaming hit lines instead of waiting on fills. Streaming-heavy: long
/// basic blocks maximise the instructions between control-flow events, and
/// a high fetch width drains them in wide per-cycle chunks. The ROB axis
/// sweeps from deep (pressure-free windows end at line/block boundaries)
/// down to shallow, with slow data-stall profiles, so windows also end —
/// and jump — on full-ROB back-pressure spans. Pins the streaming
/// fast-forward bit-identical to `run_with_warmup_reference` for all nine
/// mechanism variants (the line-transition event contract audit's
/// enforcement arm).
#[test]
fn streaming_fast_forward_matches_reference_over_randomized_profiles() {
    let mut rng = SimRng::seeded(0x00b1_0c60_fa57);
    for round in 0..5 {
        let mut profile = WorkloadProfile::tiny(rng.range_u64(0, 1 << 20));
        // L1-I-resident (stall-light) code with long straight-line blocks.
        profile.footprint_bytes = 16 * 1024 + 16 * 1024 * rng.range_u64(0, 2);
        profile.mean_block_instructions = 8.0 + 6.0 * rng.unit();
        profile.mean_function_blocks = 10.0 + 6.0 * rng.unit();
        // Back-end pressure sweep: from frequent long data stalls (shallow
        // windows ending on a full ROB) to nearly stall-free streaming.
        profile.backend.load_fraction = 0.1 + 0.3 * rng.unit();
        profile.backend.llc_miss_rate = 0.02 * rng.unit();
        profile.backend.l1d_miss_rate = 0.3 * rng.unit();
        let mut config = MicroarchConfig::hpca17();
        // Wide fetch + a ROB from paper-default down to shallow.
        config.fetch_width = 3 + rng.range_u64(0, 6);
        config.rob_entries = [16, 32, 64, 128][rng.index(4)];
        config.validate().expect("sweep must stay valid");
        let blocks = 2_000 + rng.index(2_000);
        let warmup = rng.index(600);
        assert_engines_agree(&profile, &config, blocks, warmup, PredictorKind::Tage);
        // Sanity: the window detector must actually fire on these profiles,
        // otherwise this test silently stops covering the streaming path.
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, blocks);
        let mut sim = Simulator::new(
            config.clone(),
            &layout,
            trace.blocks(),
            Mechanism::Baseline.build(),
        );
        let stats = sim.run_with_warmup(0);
        assert!(
            sim.bulk_fetched_cycles() > stats.cycles / 10,
            "round {round}: streaming windows covered only {} of {} cycles",
            sim.bulk_fetched_cycles(),
            stats.cycles
        );
    }
}

/// Property test of the `ControlFlowMechanism::on_ftq_push`
/// timestamp-invariance contract: a wrapper perturbs the `ctx.now` every
/// mechanism variant observes in `on_ftq_push`, and the final statistics
/// must not change. A mechanism whose FTQ-push hook read the timestamp (or
/// issued time-stamped hierarchy operations) would fail this, and would
/// break the event-horizon engine's batched fill-stall trickle, which
/// anchors `on_ftq_push` timestamps at the batch's first cycle.
#[test]
fn ftq_push_timestamp_invariance() {
    use frontend::{
        BtbMissAction, ControlFlowMechanism, FtqEntry, MechContext, SimStats, SquashCause,
    };
    use sim_core::DynamicBlock;

    /// Forwards every hook unchanged, except that `on_ftq_push` sees a
    /// jittered timestamp.
    struct JitterFtqPushTime {
        inner: Box<dyn ControlFlowMechanism>,
        offset: u64,
    }

    impl ControlFlowMechanism for JitterFtqPushTime {
        fn name(&self) -> &'static str {
            self.inner.name()
        }
        fn on_ftq_push(&mut self, entry: &FtqEntry, ctx: &mut MechContext<'_>) {
            let real_now = ctx.now;
            ctx.now = real_now.wrapping_add(self.offset);
            self.inner.on_ftq_push(entry, ctx);
            ctx.now = real_now;
        }
        fn on_demand_fetch(
            &mut self,
            line: sim_core::CacheLine,
            previous_line: Option<sim_core::CacheLine>,
            missed: bool,
            ctx: &mut MechContext<'_>,
        ) {
            self.inner.on_demand_fetch(line, previous_line, missed, ctx);
        }
        fn on_commit(&mut self, block: &DynamicBlock, ctx: &mut MechContext<'_>) {
            self.inner.on_commit(block, ctx);
        }
        fn on_btb_miss(
            &mut self,
            addr: sim_core::Addr,
            ctx: &mut MechContext<'_>,
        ) -> BtbMissAction {
            self.inner.on_btb_miss(addr, ctx)
        }
        fn tick(&mut self, ctx: &mut MechContext<'_>) {
            self.inner.tick(ctx);
        }
        fn next_tick_event(&self) -> Option<u64> {
            self.inner.next_tick_event()
        }
        fn on_squash(&mut self, cause: SquashCause, ctx: &mut MechContext<'_>) {
            self.inner.on_squash(cause, ctx);
        }
        fn storage_overhead_bits(&self) -> u64 {
            self.inner.storage_overhead_bits()
        }
        fn is_fetch_directed(&self) -> bool {
            self.inner.is_fetch_directed()
        }
    }

    let profile = WorkloadProfile::tiny(4242).with_footprint_bytes(96 * 1024);
    let layout = CodeLayout::generate(&profile);
    let trace = Trace::generate_blocks(&layout, 3_000);
    let config = MicroarchConfig::hpca17().with_btb_entries(512);
    let run = |mechanism: Box<dyn ControlFlowMechanism>, engine_ref: bool| -> SimStats {
        let mut sim = Simulator::new(config.clone(), &layout, trace.blocks(), mechanism);
        if engine_ref {
            sim.run_with_warmup_reference(400)
        } else {
            sim.run_with_warmup(400)
        }
    };
    for mechanism in all_mechanisms() {
        let baseline = run(mechanism.build(), false);
        for offset in [1, 97, u64::MAX / 2] {
            for engine_ref in [false, true] {
                let jittered = run(
                    Box::new(JitterFtqPushTime {
                        inner: mechanism.build(),
                        offset,
                    }),
                    engine_ref,
                );
                assert_eq!(
                    baseline, jittered,
                    "on_ftq_push of {mechanism:?} is timestamp-dependent \
                     (offset {offset}, reference engine: {engine_ref})"
                );
            }
        }
    }
}
