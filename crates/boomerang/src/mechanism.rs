//! The Boomerang control-flow-delivery mechanism (§IV of the paper).
//!
//! Boomerang = FDIP + BTB prefill, using only structures the core already
//! has:
//!
//! 1. **Instruction prefetching** is plain FDIP: the prefetch engine scans
//!    new FTQ entries and probes the L1-I for the lines they span.
//! 2. **BTB miss detection** comes for free from the basic-block BTB: a
//!    lookup that fails is a genuine miss.
//! 3. **BTB miss resolution**: the branch prediction unit halts, a *BTB miss
//!    probe* fetches the cache block containing the missing entry's start
//!    address (from the L1-I if present, otherwise from the LLC, prioritised
//!    over ordinary prefetch probes), a predecoder extracts the branches in
//!    the block, the entry terminating the missing basic block goes into the
//!    BTB and the remaining branches go into a 32-entry FIFO *BTB prefetch
//!    buffer*. If no branch follows the start address in the block, the probe
//!    moves to the next sequential block and repeats.
//! 4. **Throttled prefetch under a BTB miss** (§IV-C1): when the miss could
//!    not be filled from the L1-I, the next N sequential lines are prefetched
//!    so that a not-taken outcome does not lose prefetch opportunities; N = 2
//!    performs best (Figure 10).

use frontend::{BtbMissAction, ControlFlowMechanism, FtqEntry, MechContext, SquashCause};
use prefetchers::Fdip;
use sim_core::{Addr, DynamicBlock};

/// How many sequential cache lines Boomerang prefetches when a BTB miss
/// cannot be filled from the L1-I (§IV-C1, Figure 10).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThrottlePolicy {
    /// Do not prefetch at all under a BTB miss.
    None,
    /// Prefetch the next `N` sequential lines.
    NextN(u64),
}

impl ThrottlePolicy {
    /// The paper's chosen configuration: next-2-blocks.
    pub const PAPER_DEFAULT: ThrottlePolicy = ThrottlePolicy::NextN(2);

    /// The policies swept by Figure 10.
    pub const FIGURE10: [ThrottlePolicy; 5] = [
        ThrottlePolicy::None,
        ThrottlePolicy::NextN(1),
        ThrottlePolicy::NextN(2),
        ThrottlePolicy::NextN(4),
        ThrottlePolicy::NextN(8),
    ];

    /// Number of lines prefetched under this policy.
    pub const fn degree(self) -> u64 {
        match self {
            ThrottlePolicy::None => 0,
            ThrottlePolicy::NextN(n) => n,
        }
    }

    /// Label used by Figure 10.
    pub fn label(self) -> String {
        match self {
            ThrottlePolicy::None => "None".to_string(),
            ThrottlePolicy::NextN(1) => "1 Block".to_string(),
            ThrottlePolicy::NextN(n) => format!("{n} Blocks"),
        }
    }
}

/// Maximum number of sequential cache blocks a single BTB miss probe walks
/// before giving up (step 3b of §IV-B repeats across blocks; branch-free runs
/// longer than this are practically nonexistent).
const MAX_PROBE_LINES: u64 = 8;

/// The Boomerang mechanism.
#[derive(Clone, Debug)]
pub struct Boomerang {
    prefetcher: Fdip,
    throttle: ThrottlePolicy,
    btb_miss_probes: u64,
    btb_prefills: u64,
    buffer_prefills: u64,
    throttled_prefetches: u64,
}

impl Boomerang {
    /// Creates Boomerang with the paper's default next-2-blocks throttle
    /// policy.
    pub fn new() -> Self {
        Self::with_throttle(ThrottlePolicy::PAPER_DEFAULT)
    }

    /// Creates Boomerang with an explicit throttle policy (Figure 10 sweep).
    pub fn with_throttle(throttle: ThrottlePolicy) -> Self {
        Boomerang {
            prefetcher: Fdip::new(),
            throttle,
            btb_miss_probes: 0,
            btb_prefills: 0,
            buffer_prefills: 0,
            throttled_prefetches: 0,
        }
    }

    /// The configured throttle policy.
    pub fn throttle(&self) -> ThrottlePolicy {
        self.throttle
    }

    /// BTB miss probes issued so far.
    pub fn btb_miss_probes(&self) -> u64 {
        self.btb_miss_probes
    }

    /// Missing BTB entries prefilled directly into the BTB.
    pub fn btb_prefills(&self) -> u64 {
        self.btb_prefills
    }

    /// Additional entries staged in the BTB prefetch buffer.
    pub fn buffer_prefills(&self) -> u64 {
        self.buffer_prefills
    }

    /// Sequential lines prefetched by the throttled next-N policy.
    pub fn throttled_prefetches(&self) -> u64 {
        self.throttled_prefetches
    }
}

impl Default for Boomerang {
    fn default() -> Self {
        Boomerang::new()
    }
}

// Line-transition contract audit (covers both throttle extremes, which only
// change how many lines `on_btb_miss` prefetches): instruction prefetching
// delegates to FDIP (FTQ-push-scanned, tick-issued, exact
// `next_tick_event`), and BTB prefill acts solely inside the `on_btb_miss`
// event, walking whole cache blocks. Nothing observes intra-line fetch
// progress, so streaming windows may batch around Boomerang's events.
impl ControlFlowMechanism for Boomerang {
    fn name(&self) -> &'static str {
        "Boomerang"
    }

    fn is_fetch_directed(&self) -> bool {
        true
    }

    fn on_ftq_push(&mut self, entry: &FtqEntry, ctx: &mut MechContext<'_>) {
        // Timestamp-invariant: delegates to FDIP's scan, which only enqueues
        // the entry's lines for `tick` and never reads `ctx.now`.
        self.prefetcher.on_ftq_push(entry, ctx);
    }

    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        self.prefetcher.tick(ctx);
    }

    fn next_tick_event(&self) -> Option<u64> {
        self.prefetcher.next_tick_event()
    }

    fn on_squash(&mut self, cause: SquashCause, ctx: &mut MechContext<'_>) {
        self.prefetcher.on_squash(cause, ctx);
    }

    fn on_commit(&mut self, _block: &DynamicBlock, _ctx: &mut MechContext<'_>) {}

    fn on_btb_miss(&mut self, fetch_addr: Addr, ctx: &mut MechContext<'_>) -> BtbMissAction {
        self.btb_miss_probes += 1;
        let geometry = ctx.layout.geometry();

        // The predecoder's result: the BTB entry that starts at `fetch_addr`
        // and terminates at the first branch at or after it.
        let resolving = ctx.predecode_block_at(fetch_addr);

        // Walk the cache blocks the probe has to fetch: from the block
        // containing the start address up to the block containing the
        // terminating branch (step 3b repeats over sequential blocks until a
        // branch is found). BTB miss probes are prioritised over ordinary
        // prefetch probes (§IV-C2), which the single-port model reflects by
        // issuing them immediately.
        let first_line = geometry.line_of(fetch_addr);
        let last_line = resolving
            .map(|e| geometry.line_of(e.branch_pc()))
            .unwrap_or(first_line);
        let lines_to_walk = last_line
            .0
            .saturating_sub(first_line.0)
            .min(MAX_PROBE_LINES);

        let was_in_l1 = ctx.hierarchy.present(first_line);
        let mut latency = 0;
        for i in 0..=lines_to_walk {
            let line = first_line.step(i);
            latency += ctx.hierarchy.btb_probe_fetch(line, ctx.now + latency);
            // Predecode every walked block: the entry resolving the miss goes
            // straight to the BTB, the other branches go to the BTB prefetch
            // buffer.
            for entry in frontend::predecode_line_iter(ctx.layout, line) {
                if entry.target.is_none() {
                    continue; // indirect targets cannot be predecoded
                }
                let resolves_miss = resolving
                    .map(|r| entry.branch_pc() == r.branch_pc())
                    .unwrap_or(false);
                if resolves_miss {
                    continue; // the resolving entry is inserted below
                }
                ctx.btb_prefetch_buffer.insert(entry);
                self.buffer_prefills += 1;
            }
        }

        if let Some(entry) = resolving {
            ctx.btb.insert(entry);
            self.btb_prefills += 1;
        }

        // Throttled next-N-block prefetch (§IV-C1): only when the miss was
        // not filled from the L1-I.
        if !was_in_l1 {
            for i in 1..=self.throttle.degree() {
                ctx.prefetch_line(last_line.step(i));
                self.throttled_prefetches += 1;
            }
        }

        BtbMissAction::StallUntil {
            ready_at: ctx.now + latency.max(1),
        }
    }

    fn storage_overhead_bits(&self) -> u64 {
        // §VI-D: a 32-entry FTQ (204 bytes) plus a 32-entry BTB prefetch
        // buffer (336 bytes) — 540 bytes in total.
        btb::storage::boomerang_additional_bytes(32, 32) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{NoPrefetch, Simulator};
    use prefetchers::MechanismKind;
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    fn run(mechanism: Box<dyn ControlFlowMechanism>) -> frontend::SimStats {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(97));
        let trace = Trace::generate_blocks(&layout, 25_000);
        Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            mechanism,
        )
        .run_with_warmup(2_000)
    }

    #[test]
    fn throttle_policy_labels_and_degrees() {
        assert_eq!(ThrottlePolicy::None.degree(), 0);
        assert_eq!(ThrottlePolicy::NextN(2).degree(), 2);
        assert_eq!(ThrottlePolicy::None.label(), "None");
        assert_eq!(ThrottlePolicy::NextN(1).label(), "1 Block");
        assert_eq!(ThrottlePolicy::NextN(4).label(), "4 Blocks");
        assert_eq!(ThrottlePolicy::FIGURE10.len(), 5);
        assert_eq!(ThrottlePolicy::PAPER_DEFAULT, ThrottlePolicy::NextN(2));
    }

    #[test]
    fn storage_overhead_is_540_bytes() {
        let b = Boomerang::new();
        assert_eq!(b.storage_overhead_bits() / 8, 540);
        assert_eq!(b.name(), "Boomerang");
        assert!(b.is_fetch_directed());
        let _ = Boomerang::default();
    }

    #[test]
    fn boomerang_eliminates_most_btb_miss_squashes() {
        let baseline = run(Box::new(NoPrefetch::new()));
        let fdip = run(MechanismKind::Fdip.build());
        let boomerang = run(Box::new(Boomerang::new()));
        assert!(baseline.squashes.btb_miss > 0);
        // The paper reports >85% of BTB-miss-induced squashes eliminated.
        assert!(
            (boomerang.squashes.btb_miss as f64) < 0.25 * (fdip.squashes.btb_miss as f64).max(1.0),
            "Boomerang {} vs FDIP {} BTB-miss squashes",
            boomerang.squashes.btb_miss,
            fdip.squashes.btb_miss
        );
    }

    #[test]
    fn boomerang_outperforms_fdip_and_the_baseline() {
        let baseline = run(Box::new(NoPrefetch::new()));
        let fdip = run(MechanismKind::Fdip.build());
        let boomerang = run(Box::new(Boomerang::new()));
        assert!(boomerang.speedup_vs(&baseline) > 1.0);
        assert!(
            boomerang.cycles <= fdip.cycles,
            "Boomerang ({}) should not be slower than FDIP ({})",
            boomerang.cycles,
            fdip.cycles
        );
    }

    #[test]
    fn boomerang_matches_confluence_performance() {
        let confluence = run(MechanismKind::Confluence.build());
        let boomerang = run(Box::new(Boomerang::new()));
        let ratio = boomerang.cycles as f64 / confluence.cycles as f64;
        assert!(
            (0.85..=1.15).contains(&ratio),
            "Boomerang should match Confluence within ~15% (cycle ratio {ratio:.3})"
        );
    }

    #[test]
    fn probes_and_prefills_are_counted() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(97));
        let trace = Trace::generate_blocks(&layout, 10_000);
        let mut sim = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(Boomerang::new()),
        );
        let stats = sim.run();
        // The tiny BTB must have missed at least once, so Boomerang probed.
        assert!(stats.btb_misses > 0);
    }
}
