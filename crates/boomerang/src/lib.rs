//! # Boomerang: a metadata-free architecture for control flow delivery
//!
//! A from-scratch Rust reproduction of Kumar, Huang, Grot and Nagarajan,
//! *Boomerang: a Metadata-Free Architecture for Control Flow Delivery*,
//! HPCA 2017.
//!
//! Boomerang solves the two front-end problems of server workloads — L1-I
//! misses and BTB misses — using only structures a modest core already has.
//! It pairs a branch-predictor-directed instruction prefetcher (FDIP) with a
//! basic-block BTB whose misses it detects and prefills by predecoding the
//! very cache blocks the prefetcher brings in. The result matches
//! Confluence, the state-of-the-art unified instruction-supply scheme, while
//! adding only ~540 bytes of state instead of hundreds of kilobytes.
//!
//! This crate is the top-level library of the reproduction:
//!
//! * [`Boomerang`] / [`ThrottlePolicy`] — the mechanism itself (§IV),
//! * [`Mechanism`], [`WorkloadData`], [`run_matrix`] — the experiment API
//!   used by the examples and the benchmark harness to regenerate every
//!   figure,
//! * [`storage`] — the §VI-D storage/complexity comparison.
//!
//! The substrates live in their own crates: synthetic server workloads
//! (`workloads`), branch predictors (`branch-pred`), BTB organisations
//! (`btb`), the instruction memory hierarchy (`cache`), the cycle-level
//! decoupled front-end simulator (`frontend`) and the prior-work prefetchers
//! (`prefetchers`).
//!
//! # Quick start
//!
//! ```
//! use boomerang::{Mechanism, RunLength, WorkloadData};
//! use sim_core::MicroarchConfig;
//! use workloads::WorkloadKind;
//!
//! // A short run of the Nutch-like workload on the Table I core.
//! let data = WorkloadData::generate(WorkloadKind::Nutch, RunLength::smoke_test());
//! let config = MicroarchConfig::hpca17();
//!
//! let baseline = data.run(Mechanism::Baseline, &config);
//! let boomerang = data.run(Mechanism::Boomerang(Default::default()), &config);
//!
//! // Boomerang eliminates front-end stalls and BTB-miss squashes, so it is
//! // at least as fast as the no-prefetch baseline.
//! assert!(boomerang.speedup_vs(&baseline) >= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dispatch;
pub mod experiment;
pub mod mechanism;
pub mod storage;

pub use dispatch::AnyMechanism;
pub use experiment::{run_matrix, CellResult, Mechanism, RunLength, WorkloadData};
pub use mechanism::{Boomerang, ThrottlePolicy};

// Re-export the substrate crates so downstream users (and the examples) can
// reach every piece through a single dependency.
pub use branch_pred;
pub use btb;
pub use cache;
pub use frontend;
pub use prefetchers;
pub use sim_core;
pub use workloads;

impl Default for ThrottlePolicy {
    fn default() -> Self {
        ThrottlePolicy::PAPER_DEFAULT
    }
}
