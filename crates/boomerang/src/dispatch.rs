//! Static dispatch over the evaluation's mechanism set.
//!
//! [`AnyMechanism`] is the closed enum of every concrete
//! [`ControlFlowMechanism`] the campaign engine can run. The front-end
//! simulator is generic over its mechanism type
//! (`Simulator<'a, M: ControlFlowMechanism>`); instantiating it with
//! `AnyMechanism` instead of `Box<dyn ControlFlowMechanism>` turns every
//! hook call on the hot path — `tick` and `next_tick_event` every engine
//! iteration, `on_ftq_push`/`on_demand_fetch`/`on_commit` several times per
//! block — into one perfectly predicted match (the variant is constant for
//! a whole run) followed by a direct, inlinable call. The many empty hooks
//! then cost nothing, where the trait-object path paid an indirect call and
//! a `MechContext` it could not see through.
//!
//! The boxed trait-object path stays fully supported (it is the simulator's
//! default type parameter); this enum is an optimisation for the closed set
//! the experiment harness sweeps.

use crate::mechanism::Boomerang;
use frontend::{
    BtbMissAction, ControlFlowMechanism, FtqEntry, MechContext, NoPrefetch, SquashCause,
};
use prefetchers::{Confluence, Dip, Fdip, NextLine, Pif, Shift};
use sim_core::{Addr, CacheLine, DynamicBlock};

/// One concrete mechanism of the evaluation, dispatched statically.
#[derive(Clone, Debug)]
pub enum AnyMechanism {
    /// No prefetching, no BTB prefill.
    Baseline(NoPrefetch),
    /// Next-2-line prefetcher.
    NextLine(NextLine),
    /// Discontinuity prefetcher + next-2-line.
    Dip(Dip),
    /// Fetch-directed instruction prefetching.
    Fdip(Fdip),
    /// Proactive instruction fetch.
    Pif(Pif),
    /// Shared history instruction fetch.
    Shift(Shift),
    /// Confluence (SHIFT + BTB prefill).
    Confluence(Confluence),
    /// Boomerang (any throttle policy).
    Boomerang(Boomerang),
}

/// Delegates one method body to the active variant.
macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnyMechanism::Baseline($inner) => $body,
            AnyMechanism::NextLine($inner) => $body,
            AnyMechanism::Dip($inner) => $body,
            AnyMechanism::Fdip($inner) => $body,
            AnyMechanism::Pif($inner) => $body,
            AnyMechanism::Shift($inner) => $body,
            AnyMechanism::Confluence($inner) => $body,
            AnyMechanism::Boomerang($inner) => $body,
        }
    };
}

impl ControlFlowMechanism for AnyMechanism {
    fn name(&self) -> &'static str {
        dispatch!(self, m => m.name())
    }

    #[inline]
    fn on_ftq_push(&mut self, entry: &FtqEntry, ctx: &mut MechContext<'_>) {
        dispatch!(self, m => m.on_ftq_push(entry, ctx))
    }

    #[inline]
    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        previous_line: Option<CacheLine>,
        missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        dispatch!(self, m => m.on_demand_fetch(line, previous_line, missed, ctx))
    }

    #[inline]
    fn on_commit(&mut self, block: &DynamicBlock, ctx: &mut MechContext<'_>) {
        dispatch!(self, m => m.on_commit(block, ctx))
    }

    #[inline]
    fn on_btb_miss(&mut self, fetch_addr: Addr, ctx: &mut MechContext<'_>) -> BtbMissAction {
        dispatch!(self, m => m.on_btb_miss(fetch_addr, ctx))
    }

    #[inline]
    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        dispatch!(self, m => m.tick(ctx))
    }

    #[inline]
    fn next_tick_event(&self) -> Option<u64> {
        dispatch!(self, m => m.next_tick_event())
    }

    #[inline]
    fn on_squash(&mut self, cause: SquashCause, ctx: &mut MechContext<'_>) {
        dispatch!(self, m => m.on_squash(cause, ctx))
    }

    fn storage_overhead_bits(&self) -> u64 {
        dispatch!(self, m => m.storage_overhead_bits())
    }

    #[inline]
    fn is_fetch_directed(&self) -> bool {
        dispatch!(self, m => m.is_fetch_directed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mechanism, ThrottlePolicy};
    use frontend::{SimStats, Simulator};
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    /// The statically dispatched wrapper must be observationally identical
    /// to the boxed trait object it wraps, for every mechanism variant.
    #[test]
    fn any_mechanism_matches_boxed_dispatch() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(2024));
        let trace = Trace::generate_blocks(&layout, 4_000);
        let config = MicroarchConfig::hpca17().with_btb_entries(512);
        for mechanism in [
            Mechanism::Baseline,
            Mechanism::NextLine,
            Mechanism::Dip,
            Mechanism::Fdip,
            Mechanism::Pif,
            Mechanism::Shift,
            Mechanism::Confluence,
            Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
            Mechanism::Boomerang(ThrottlePolicy::None),
        ] {
            let boxed: SimStats =
                Simulator::new(config.clone(), &layout, trace.blocks(), mechanism.build())
                    .run_with_warmup(500);
            let static_dispatch: SimStats = Simulator::new(
                config.clone(),
                &layout,
                trace.blocks(),
                Box::new(mechanism.build_any()),
            )
            .run_with_warmup(500);
            assert_eq!(
                boxed, static_dispatch,
                "dispatch diverged for {mechanism:?}"
            );
            let any = mechanism.build_any();
            let boxed = mechanism.build();
            assert_eq!(any.name(), boxed.name());
            assert_eq!(any.is_fetch_directed(), boxed.is_fetch_directed());
            assert_eq!(any.storage_overhead_bits(), boxed.storage_overhead_bits());
        }
    }
}
