//! §VI-D: storage and complexity comparison.
//!
//! Boomerang's headline claim is not a performance win over Confluence but a
//! *cost* win at equal performance: 540 bytes of additional state versus
//! hundreds of kilobytes of prefetcher metadata (and, for hierarchical-BTB
//! designs, hundreds of kilobytes of second-level BTB). This module computes
//! the comparison table.

use crate::experiment::Mechanism;
use crate::mechanism::ThrottlePolicy;
use serde::{Deserialize, Serialize};

/// One row of the storage comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Dedicated per-core metadata in bytes.
    pub metadata_bytes: u64,
    /// Whether the scheme needs system-level support (pinned LLC lines,
    /// reserved physical address space).
    pub needs_system_support: bool,
    /// Whether the scheme consumes shared LLC capacity for its metadata.
    pub consumes_llc_capacity: bool,
}

/// The full §VI-D comparison: every mechanism's metadata cost and complexity
/// flags.
pub fn comparison() -> Vec<StorageRow> {
    let boomerang = Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT);
    vec![
        StorageRow {
            mechanism: "Next Line".into(),
            metadata_bytes: Mechanism::NextLine.metadata_bytes(),
            needs_system_support: false,
            consumes_llc_capacity: false,
        },
        StorageRow {
            mechanism: "DIP".into(),
            metadata_bytes: Mechanism::Dip.metadata_bytes(),
            needs_system_support: false,
            consumes_llc_capacity: false,
        },
        StorageRow {
            mechanism: "FDIP".into(),
            metadata_bytes: Mechanism::Fdip.metadata_bytes(),
            needs_system_support: false,
            consumes_llc_capacity: false,
        },
        StorageRow {
            mechanism: "PIF".into(),
            metadata_bytes: Mechanism::Pif.metadata_bytes(),
            needs_system_support: false,
            consumes_llc_capacity: false,
        },
        StorageRow {
            mechanism: "SHIFT".into(),
            metadata_bytes: Mechanism::Shift.metadata_bytes(),
            needs_system_support: true,
            consumes_llc_capacity: true,
        },
        StorageRow {
            mechanism: "Confluence".into(),
            metadata_bytes: Mechanism::Confluence.metadata_bytes(),
            needs_system_support: true,
            consumes_llc_capacity: true,
        },
        StorageRow {
            mechanism: "Boomerang".into(),
            metadata_bytes: boomerang.metadata_bytes(),
            needs_system_support: false,
            consumes_llc_capacity: false,
        },
    ]
}

/// Renders the comparison as a plain-text table.
pub fn comparison_table() -> String {
    let rows = comparison();
    let mut out =
        String::from("mechanism     metadata (bytes)  system support  carves LLC capacity\n");
    for r in rows {
        out.push_str(&format!(
            "{:<13} {:>16}  {:<14}  {}\n",
            r.mechanism,
            r.metadata_bytes,
            if r.needs_system_support { "yes" } else { "no" },
            if r.consumes_llc_capacity { "yes" } else { "no" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boomerang_is_orders_of_magnitude_cheaper_than_confluence() {
        let rows = comparison();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.mechanism == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        let boomerang = get("Boomerang");
        let confluence = get("Confluence");
        let pif = get("PIF");
        assert_eq!(boomerang.metadata_bytes, 540);
        assert!(confluence.metadata_bytes >= 200 * 1024);
        assert!(pif.metadata_bytes >= 200 * 1024);
        assert!(confluence.metadata_bytes / boomerang.metadata_bytes > 100);
        assert!(!boomerang.needs_system_support);
        assert!(confluence.needs_system_support);
    }

    #[test]
    fn table_renders_every_mechanism() {
        let table = comparison_table();
        for name in [
            "Next Line",
            "DIP",
            "FDIP",
            "PIF",
            "SHIFT",
            "Confluence",
            "Boomerang",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }
}
