//! Experiment harness: the API the examples and the benchmark binaries use to
//! regenerate the paper's tables and figures.
//!
//! The harness fixes the three ingredients of every experiment — a workload
//! ([`WorkloadData`]), a control-flow-delivery mechanism ([`Mechanism`]) and a
//! microarchitectural configuration — and runs the front-end simulator over
//! them, optionally in parallel across the six workloads.

use crate::dispatch::AnyMechanism;
use crate::mechanism::{Boomerang, ThrottlePolicy};
use branch_pred::PredictorKind;
use frontend::{ControlFlowMechanism, LaneSimulator, SimEngine, SimStats, Simulator};
use prefetchers::MechanismKind;
use serde::{Deserialize, Serialize};
use sim_core::MicroarchConfig;
use workloads::{CodeLayout, Trace, WorkloadKind};

/// Every control-flow-delivery mechanism of the evaluation, including
/// Boomerang itself.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    /// No prefetching, no BTB prefill.
    Baseline,
    /// Next-2-line prefetcher.
    NextLine,
    /// Discontinuity prefetcher + next-2-line.
    Dip,
    /// Fetch-directed instruction prefetching.
    Fdip,
    /// Proactive instruction fetch.
    Pif,
    /// Shared history instruction fetch.
    Shift,
    /// Confluence (SHIFT + BTB prefill).
    Confluence,
    /// Boomerang with the given throttle policy.
    Boomerang(ThrottlePolicy),
}

impl Mechanism {
    /// The six mechanisms of Figures 7, 8 and 9, in presentation order.
    pub const FIGURE7: [Mechanism; 6] = [
        Mechanism::NextLine,
        Mechanism::Dip,
        Mechanism::Fdip,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
    ];

    /// The five mechanisms of Figure 11 (the crossbar study).
    pub const FIGURE11: [Mechanism; 5] = [
        Mechanism::NextLine,
        Mechanism::Fdip,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
    ];

    /// Builds the mechanism instance as a boxed trait object.
    pub fn build(self) -> Box<dyn ControlFlowMechanism> {
        match self {
            Mechanism::Baseline => MechanismKind::Baseline.build(),
            Mechanism::NextLine => MechanismKind::NextLine.build(),
            Mechanism::Dip => MechanismKind::Dip.build(),
            Mechanism::Fdip => MechanismKind::Fdip.build(),
            Mechanism::Pif => MechanismKind::Pif.build(),
            Mechanism::Shift => MechanismKind::Shift.build(),
            Mechanism::Confluence => MechanismKind::Confluence.build(),
            Mechanism::Boomerang(policy) => Box::new(Boomerang::with_throttle(policy)),
        }
    }

    /// Builds the mechanism instance as the statically dispatched
    /// [`AnyMechanism`] — what the experiment and campaign hot paths run,
    /// so the simulator's per-block hook calls compile to direct calls (see
    /// [`crate::dispatch`]).
    pub fn build_any(self) -> AnyMechanism {
        match self {
            Mechanism::Baseline => AnyMechanism::Baseline(frontend::NoPrefetch::new()),
            Mechanism::NextLine => AnyMechanism::NextLine(prefetchers::NextLine::new(2)),
            Mechanism::Dip => AnyMechanism::Dip(prefetchers::Dip::new(8 * 1024, 2)),
            Mechanism::Fdip => AnyMechanism::Fdip(prefetchers::Fdip::new()),
            Mechanism::Pif => AnyMechanism::Pif(prefetchers::Pif::new()),
            Mechanism::Shift => AnyMechanism::Shift(prefetchers::Shift::new()),
            Mechanism::Confluence => AnyMechanism::Confluence(prefetchers::Confluence::new()),
            Mechanism::Boomerang(policy) => {
                AnyMechanism::Boomerang(Boomerang::with_throttle(policy))
            }
        }
    }

    /// Display label as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Baseline => "Baseline",
            Mechanism::NextLine => "Next Line",
            Mechanism::Dip => "DIP",
            Mechanism::Fdip => "FDIP",
            Mechanism::Pif => "PIF",
            Mechanism::Shift => "SHIFT",
            Mechanism::Confluence => "Confluence",
            Mechanism::Boomerang(_) => "Boomerang",
        }
    }

    /// Dedicated metadata storage of this mechanism in bytes (§VI-D).
    pub fn metadata_bytes(self) -> u64 {
        self.build().storage_overhead_bits() / 8
    }
}

/// Simulation length parameters for one experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunLength {
    /// Dynamic basic blocks simulated after warm-up.
    pub trace_blocks: usize,
    /// Dynamic basic blocks used to warm caches, BTB and predictors before
    /// statistics are collected.
    pub warmup_blocks: usize,
}

impl RunLength {
    /// The default used by the figure reproductions: roughly 0.8 M
    /// instructions of measurement after 0.15 M instructions of warm-up per
    /// workload (scaled-down SMARTS-style sampling).
    pub const fn paper_default() -> Self {
        RunLength {
            trace_blocks: 150_000,
            warmup_blocks: 25_000,
        }
    }

    /// A short run for unit tests and doc examples.
    pub const fn smoke_test() -> Self {
        RunLength {
            trace_blocks: 12_000,
            warmup_blocks: 2_000,
        }
    }
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength::paper_default()
    }
}

/// A generated workload: its layout and a dynamic trace of the requested
/// length.
pub struct WorkloadData {
    /// Which paper workload this is.
    pub kind: WorkloadKind,
    /// The static code layout.
    pub layout: CodeLayout,
    /// The dynamic trace (warm-up plus measurement blocks).
    pub trace: Trace,
    /// Precomputed back-end latency classes, one per trace instruction (see
    /// [`workloads::BackendProfile::latency_classes`]): generated once here
    /// and shared by every (mechanism, config, engine) run over this
    /// workload instead of re-drawn per instruction inside each run.
    latency_classes: Vec<u8>,
    length: RunLength,
}

impl WorkloadData {
    /// Generates the workload with the given run length.
    pub fn generate(kind: WorkloadKind, length: RunLength) -> Self {
        Self::generate_from_profile(&kind.profile(), length)
    }

    /// Generates a workload from an explicit profile (e.g. one with a
    /// re-derived seed or adjusted footprint), with the given run length.
    ///
    /// This is the entry point the campaign engine uses for its workload
    /// axis: custom `[[workload]]` spec entries resolve to profiles that
    /// share a `kind` with a paper preset but differ in footprint, service
    /// roots, branch mix, etc. — so [`WorkloadData::kind`] names the *base*
    /// workload, not a unique identity. Campaign code identifies workloads
    /// by axis index and label instead.
    pub fn generate_from_profile(profile: &workloads::WorkloadProfile, length: RunLength) -> Self {
        let layout = CodeLayout::generate(profile);
        let trace = Trace::generate_blocks(&layout, length.trace_blocks + length.warmup_blocks);
        let latency_classes = profile
            .backend
            .latency_classes(profile.seed, trace.instructions() as usize);
        WorkloadData {
            kind: profile.kind,
            layout,
            trace,
            latency_classes,
            length,
        }
    }

    /// Reassembles a workload from a layout and trace decoded from the
    /// artifact cache (see [`workloads::codec`]), recomputing the derived
    /// latency classes exactly as [`WorkloadData::generate_from_profile`]
    /// does — the classes are a cheap pure-RNG pass over the profile's
    /// backend parameters, so they are rebuilt rather than stored.
    ///
    /// `length` must be the run length the trace was generated with.
    pub fn from_parts(layout: CodeLayout, trace: Trace, length: RunLength) -> Self {
        let profile = layout.profile();
        let latency_classes = profile
            .backend
            .latency_classes(profile.seed, trace.instructions() as usize);
        WorkloadData {
            kind: layout.profile().kind,
            layout,
            trace,
            latency_classes,
            length,
        }
    }

    /// Generates all six paper workloads (in paper order).
    pub fn generate_all(length: RunLength) -> Vec<WorkloadData> {
        WorkloadKind::ALL
            .iter()
            .map(|&kind| WorkloadData::generate(kind, length))
            .collect()
    }

    /// Runs `mechanism` over this workload under `config` with the TAGE
    /// predictor.
    pub fn run(&self, mechanism: Mechanism, config: &MicroarchConfig) -> SimStats {
        self.run_with_predictor(mechanism, config, PredictorKind::Tage)
    }

    /// Runs `mechanism` with an explicit direction predictor (Figure 2).
    pub fn run_with_predictor(
        &self,
        mechanism: Mechanism,
        config: &MicroarchConfig,
        predictor: PredictorKind,
    ) -> SimStats {
        self.run_with_predictor_engine(mechanism, config, predictor, SimEngine::default())
    }

    /// Runs `mechanism` on an explicit simulation engine (the benchmark
    /// harness times the event-horizon engine against the per-cycle
    /// reference on identical work; both produce bit-identical stats).
    pub fn run_with_predictor_engine(
        &self,
        mechanism: Mechanism,
        config: &MicroarchConfig,
        predictor: PredictorKind,
        engine: SimEngine,
    ) -> SimStats {
        // Statically dispatched mechanism: the simulator's hot-path hook
        // calls compile to direct calls instead of vtable indirections (see
        // `crate::dispatch`); statistics are identical either way.
        let mut sim = Simulator::with_predictor(
            config.clone(),
            &self.layout,
            self.trace.blocks(),
            Box::new(mechanism.build_any()),
            predictor,
        );
        sim.use_backend_latency_classes(&self.latency_classes);
        sim.run_with_warmup_engine(self.length.warmup_blocks, engine)
    }

    /// Runs a whole campaign group — N (mechanism, config) rows over this
    /// one workload — lane-batched: one [`LaneSimulator`] packs a complete
    /// per-row simulator per lane and round-robins the lanes over the shared
    /// decoded trace, line predecode and latency-class stream, so the
    /// memory-bound trace footprint is replayed once per chunk for the group
    /// instead of once per row. Returns per-row statistics in `rows` order,
    /// bit-identical to calling
    /// [`run_with_predictor_engine`](Self::run_with_predictor_engine) per
    /// row (enforced by `tests/lane_differential.rs`).
    ///
    /// `max_lanes` caps how many rows share one lane slab (`0` = the whole
    /// group in one slab); larger groups run as consecutive slabs. The
    /// per-cycle reference engine has no resumable split and always runs
    /// per-row, as does a `max_lanes` of 1.
    pub fn run_group_with_predictor_engine(
        &self,
        rows: &[(Mechanism, &MicroarchConfig)],
        predictor: PredictorKind,
        engine: SimEngine,
        max_lanes: usize,
    ) -> Vec<SimStats> {
        let lane_batched = engine == SimEngine::EventHorizon && max_lanes != 1 && rows.len() > 1;
        if !lane_batched {
            return rows
                .iter()
                .map(|&(mechanism, config)| {
                    self.run_with_predictor_engine(mechanism, config, predictor, engine)
                })
                .collect();
        }
        let lane_cap = if max_lanes == 0 {
            rows.len()
        } else {
            max_lanes
        };
        let mut out = Vec::with_capacity(rows.len());
        for batch in rows.chunks(lane_cap) {
            if batch.len() == 1 {
                let (mechanism, config) = batch[0];
                out.push(self.run_with_predictor_engine(mechanism, config, predictor, engine));
                continue;
            }
            let sims: Vec<Simulator<'_, AnyMechanism>> = batch
                .iter()
                .map(|&(mechanism, config)| {
                    let mut sim = Simulator::with_predictor(
                        config.clone(),
                        &self.layout,
                        self.trace.blocks(),
                        Box::new(mechanism.build_any()),
                        predictor,
                    );
                    sim.use_backend_latency_classes(&self.latency_classes);
                    sim
                })
                .collect();
            out.extend(LaneSimulator::new(sims).run(self.length.warmup_blocks));
        }
        out
    }
}

/// Result of one (workload, mechanism) cell of a figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Workload name.
    pub workload: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Raw simulation statistics.
    pub stats: SimStats,
    /// Baseline (no-prefetch) statistics for the same workload and config.
    pub baseline: SimStats,
}

impl CellResult {
    /// Speedup over the no-prefetch baseline.
    pub fn speedup(&self) -> f64 {
        self.stats.speedup_vs(&self.baseline)
    }

    /// Front-end stall-cycle coverage over the no-prefetch baseline.
    pub fn coverage(&self) -> f64 {
        self.stats.stall_coverage_vs(&self.baseline)
    }
}

/// Runs `mechanisms` over every workload in `workloads` under `config`,
/// returning one [`CellResult`] per (workload, mechanism) pair. Execution is
/// sharded across the [`sim_core::pool`] work-stealing pool, one task per
/// workload, so heavyweight workloads re-balance across idle cores instead of
/// serialising the sweep.
pub fn run_matrix(
    workloads: &[WorkloadData],
    mechanisms: &[Mechanism],
    config: &MicroarchConfig,
) -> Vec<CellResult> {
    let per_workload =
        sim_core::pool::run_indexed(sim_core::pool::default_workers(), workloads, |_, data| {
            let baseline = data.run(Mechanism::Baseline, config);
            mechanisms
                .iter()
                .map(|&m| CellResult {
                    workload: data.kind.name().to_string(),
                    mechanism: m.label().to_string(),
                    stats: data.run(m, config),
                    baseline,
                })
                .collect::<Vec<_>>()
        });
    per_workload.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_catalog() {
        assert_eq!(Mechanism::FIGURE7.len(), 6);
        assert_eq!(Mechanism::FIGURE11.len(), 5);
        assert_eq!(
            Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT).label(),
            "Boomerang"
        );
        // The §VI-D headline: Boomerang needs ~540 bytes, Confluence ~240 KB.
        assert_eq!(
            Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT).metadata_bytes(),
            540
        );
        assert!(Mechanism::Confluence.metadata_bytes() >= 200 * 1024);
        assert_eq!(Mechanism::Baseline.metadata_bytes(), 0);
    }

    #[test]
    fn run_lengths() {
        let paper = RunLength::paper_default();
        let smoke = RunLength::smoke_test();
        assert!(paper.trace_blocks > smoke.trace_blocks);
        assert_eq!(RunLength::default(), paper);
    }

    #[test]
    fn cell_result_derived_metrics() {
        let baseline = SimStats {
            instructions: 1000,
            cycles: 2000,
            fetch_stall_cycles: 500,
            ..SimStats::default()
        };
        let stats = SimStats {
            instructions: 1000,
            cycles: 1600,
            fetch_stall_cycles: 100,
            ..SimStats::default()
        };
        let cell = CellResult {
            workload: "Nutch".into(),
            mechanism: "Boomerang".into(),
            stats,
            baseline,
        };
        assert!((cell.speedup() - 1.25).abs() < 1e-12);
        assert!((cell.coverage() - 0.8).abs() < 1e-12);
    }
}
