//! End-to-end tests of the campaign service layer: checkpointed
//! interruption + resume (in-process and through the binary), the
//! content-addressed artifact cache across processes, the spec-hash
//! directory guard, and the spool-directory serve mode.
//!
//! The invariant under test everywhere: reports are a pure function of the
//! spec. However a campaign is cut up — killed and resumed, sharded over
//! worker processes, replayed from journals — the merged JSON and CSV bytes
//! must equal an uninterrupted run's.

use boomerang::RunLength;
use campaign::checkpoint::{spec_hash, Journal, JournalReplay};
use campaign::{
    assemble_report, expand, fnv1a64, presets, run_campaign, run_generated_partial, to_csv,
    to_json, CampaignSpec, EngineOptions, RunPlan,
};
use frontend::SimStats;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;

const GOLDEN: &str = include_str!("golden/figure9-smoke.json");
const BIN: &str = env!("CARGO_BIN_EXE_boomerang-sim");

const MINI_SPEC: &str = "name = \"service-mini\"
workloads = [\"nutch\", \"zeus\"]
mechanisms = [\"fdip\", \"boomerang\"]
seeds = [0, 1]

[run]
trace_blocks = 2000
warmup_blocks = 400
";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boomerang-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a campaign the way the binary does under repeated kills: each
/// "process life" replays the journal, executes at most `chunk` missing
/// rows while checkpointing them, and dies. The last life assembles the
/// report. Returns the rendered (JSON, CSV).
fn run_interrupted(
    spec: &CampaignSpec,
    options: &EngineOptions,
    chunk: usize,
    dir: &Path,
) -> (String, String) {
    let run = if options.smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let hash = spec_hash(spec, run, options.smoke);
    let jobs = expand(spec);
    let mut lives = 0;
    loop {
        lives += 1;
        assert!(lives < 100, "resume loop did not converge");
        // A fresh "process": everything below rebuilds from disk state only.
        let done: HashMap<usize, SimStats> = JournalReplay::load(dir, &spec.name, &hash, &jobs)
            .expect("journal replays")
            .rows;
        if done.len() == jobs.len() {
            let stats: Vec<SimStats> = (0..jobs.len()).map(|i| done[&i]).collect();
            let report = assemble_report(spec, &jobs, run, options.smoke, stats);
            return (to_json(&report), to_csv(&report));
        }
        let journal = if Journal::path_for(dir, &spec.name, None).exists() {
            Journal::append(dir, &spec.name, None)
        } else {
            Journal::create(dir, &spec.name, &hash, jobs.len(), None)
        }
        .expect("journal opens");
        let generated = campaign::generate_workloads(spec, options).expect("generation");
        let on_row = |job: &campaign::Job, stats: &SimStats| {
            journal.record(job, stats).expect("checkpoint write");
        };
        run_generated_partial(
            spec,
            options,
            &generated,
            &done,
            RunPlan {
                shard: None,
                limit: Some(chunk),
            },
            Some(&on_row),
        );
    }
}

#[test]
fn killed_and_resumed_campaigns_render_identical_bytes_for_any_worker_count() {
    let spec = CampaignSpec::from_toml_str(MINI_SPEC).unwrap();
    let reference = run_campaign(&spec, &EngineOptions::default()).unwrap();
    let (ref_json, ref_csv) = (to_json(&reference), to_csv(&reference));

    for jobs in [1usize, 2, 5] {
        let dir = temp_dir(&format!("kill-{jobs}"));
        let options = EngineOptions {
            jobs,
            ..EngineOptions::default()
        };
        // Chunk of 3: the 24-job campaign dies and resumes 8 times.
        let (json, csv) = run_interrupted(&spec, &options, 3, &dir);
        assert_eq!(json, ref_json, "JSON drifted at --jobs {jobs}");
        assert_eq!(csv, ref_csv, "CSV drifted at --jobs {jobs}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn figure9_smoke_golden_bytes_survive_kill_and_resume() {
    let spec = presets::find("figure9").unwrap();
    let dir = temp_dir("golden-resume");
    let options = EngineOptions {
        jobs: 3,
        smoke: true,
        ..EngineOptions::default()
    };
    let (json, _) = run_interrupted(&spec, &options, 10, &dir);
    assert_eq!(
        json, GOLDEN,
        "figure9 --smoke bytes drifted through the checkpoint/resume path"
    );
    // The smoke digest the bench baseline pins, reproduced through the new
    // path (the full-length digest fnv1a64:64a84925f89018ba is pinned the
    // same way by the committed BENCH_PR6.json entries).
    assert_eq!(
        format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes())),
        "fnv1a64:12d5c5644373b35b"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn binary_interrupts_and_resumes_to_identical_reports() {
    let spec_file = temp_dir("bin-kill").join("mini.toml");
    std::fs::write(&spec_file, MINI_SPEC).unwrap();
    let oneshot = temp_dir("bin-kill-oneshot");
    let resumed = temp_dir("bin-kill-resumed");

    let status = Command::new(BIN)
        .args([
            "run",
            spec_file.to_str().unwrap(),
            "--jobs",
            "2",
            "--quiet",
            "--out",
        ])
        .arg(&oneshot)
        .status()
        .unwrap();
    assert!(status.success());

    // Three interrupted lives, then a resume that finishes the campaign.
    for _ in 0..3 {
        let status = Command::new(BIN)
            .args([
                "run",
                spec_file.to_str().unwrap(),
                "--jobs",
                "2",
                "--quiet",
                "--resume",
                "--max-rows",
                "5",
                "--out",
            ])
            .arg(&resumed)
            .status()
            .unwrap();
        assert!(status.success());
    }
    let status = Command::new(BIN)
        .args([
            "resume",
            spec_file.to_str().unwrap(),
            "--jobs",
            "3",
            "--quiet",
            "--out",
        ])
        .arg(&resumed)
        .status()
        .unwrap();
    assert!(status.success());

    for name in ["service-mini.json", "service-mini.csv"] {
        let a = std::fs::read(oneshot.join(name)).unwrap();
        let b = std::fs::read(resumed.join(name)).unwrap();
        assert_eq!(a, b, "{name} differs between one-shot and resumed runs");
    }
    // The streamed rows cover the whole campaign (order-insensitive check).
    let stream = std::fs::read_to_string(resumed.join("service-mini.rows.csv")).unwrap();
    let report = std::fs::read_to_string(resumed.join("service-mini.csv")).unwrap();
    let mut streamed: Vec<&str> = stream.lines().collect();
    let mut canonical: Vec<&str> = report.lines().collect();
    streamed.sort_unstable();
    canonical.sort_unstable();
    assert_eq!(streamed, canonical);

    for dir in [spec_file.parent().unwrap().to_path_buf(), oneshot, resumed] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn artifact_cache_is_warm_across_processes() {
    let spec_file = temp_dir("bin-cache").join("mini.toml");
    std::fs::write(&spec_file, MINI_SPEC).unwrap();
    let cache = temp_dir("bin-cache-store");
    let out_a = temp_dir("bin-cache-a");
    let out_b = temp_dir("bin-cache-b");

    let run_with = |out: &Path| {
        let output = Command::new(BIN)
            .args([
                "run",
                spec_file.to_str().unwrap(),
                "--jobs",
                "2",
                "--artifact-cache",
            ])
            .arg(&cache)
            .arg("--out")
            .arg(out)
            .output()
            .unwrap();
        assert!(output.status.success());
        String::from_utf8_lossy(&output.stderr).into_owned()
    };

    let cold = run_with(&out_a);
    assert!(
        cold.contains("0 cache hits, 4 generated"),
        "first run must generate everything: {cold}"
    );
    let warm = run_with(&out_b);
    assert!(
        warm.contains("4 cache hits, 0 generated"),
        "second run must be served entirely from the cache: {warm}"
    );
    assert_eq!(
        std::fs::read(out_a.join("service-mini.json")).unwrap(),
        std::fs::read(out_b.join("service-mini.json")).unwrap(),
        "cached workloads must reproduce identical reports"
    );

    for dir in [
        spec_file.parent().unwrap().to_path_buf(),
        cache,
        out_a,
        out_b,
    ] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn mismatching_spec_directory_is_refused_without_force() {
    let spec_file = temp_dir("bin-guard").join("mini.toml");
    std::fs::write(&spec_file, MINI_SPEC).unwrap();
    let out = temp_dir("bin-guard-out");

    // Seed the directory with a *smoke* run of the same spec.
    let status = Command::new(BIN)
        .args([
            "run",
            spec_file.to_str().unwrap(),
            "--smoke",
            "--jobs",
            "2",
            "--quiet",
            "--out",
        ])
        .arg(&out)
        .status()
        .unwrap();
    assert!(status.success());

    // Full-length run into the same dir: different spec hash, clear error.
    let output = Command::new(BIN)
        .args([
            "run",
            spec_file.to_str().unwrap(),
            "--jobs",
            "2",
            "--quiet",
            "--out",
        ])
        .arg(&out)
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("does not match") && stderr.contains("--force"),
        "guard must name the mismatch and the override: {stderr}"
    );

    // --force clears the old campaign and succeeds.
    let status = Command::new(BIN)
        .args([
            "run",
            spec_file.to_str().unwrap(),
            "--jobs",
            "2",
            "--quiet",
            "--force",
            "--out",
        ])
        .arg(&out)
        .status()
        .unwrap();
    assert!(status.success());

    for dir in [spec_file.parent().unwrap().to_path_buf(), out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn serve_processes_a_spool_and_matches_oneshot_bytes() {
    let spool = temp_dir("serve-spool");
    let out = temp_dir("serve-out");
    let oneshot = temp_dir("serve-oneshot");
    std::fs::write(spool.join("mini.toml"), MINI_SPEC).unwrap();

    let status = Command::new(BIN)
        // No --jobs: the workers must run with the binary's own default
        // (serve omits the flag when jobs = 0, it must not pass `--jobs 0`).
        .args(["serve", "--once", "--workers", "3", "--quiet", "--spool"])
        .arg(&spool)
        .arg("--out")
        .arg(&out)
        .status()
        .unwrap();
    assert!(status.success());
    assert!(spool.join("mini.toml.done").exists());

    let spec_file = spool.join("mini.toml.done");
    let copied = spool.join("oneshot.toml");
    std::fs::copy(&spec_file, &copied).unwrap();
    let status = Command::new(BIN)
        .args([
            "run",
            copied.to_str().unwrap(),
            "--jobs",
            "2",
            "--quiet",
            "--out",
        ])
        .arg(&oneshot)
        .status()
        .unwrap();
    assert!(status.success());

    assert_eq!(
        std::fs::read(out.join("mini").join("service-mini.json")).unwrap(),
        std::fs::read(oneshot.join("service-mini.json")).unwrap(),
        "serve's merged report must equal a one-shot run's bytes"
    );
    assert_eq!(
        std::fs::read(out.join("mini").join("service-mini.csv")).unwrap(),
        std::fs::read(oneshot.join("service-mini.csv")).unwrap()
    );
    // Three worker shards, three journals.
    for shard in 0..3 {
        assert!(out
            .join("mini")
            .join(format!("service-mini.journal-{shard}.jsonl"))
            .exists());
    }

    for dir in [spool, out, oneshot] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
