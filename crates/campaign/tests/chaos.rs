//! Chaos suite: deterministic fault injection driving the supervised
//! campaign service through its crash paths.
//!
//! Every test arms a `--fault-inject` plan in *spawned* `boomerang-sim`
//! processes (the fault runtime is process-global, so in-process arming
//! would leak between tests) and then asserts the service-level contract:
//!
//! - crashes, torn journal tails and hangs are retried and the recovered
//!   submission renders **byte-identical** reports to an undisturbed run,
//! - exhausted retries fail loudly (`.failed` + `.error`) or — under
//!   `--allow-partial` — degrade to an explicit partial report (exit 4,
//!   `.partial`, holes marked per row),
//! - torn report writes never publish a half-written file,
//! - damaged artifact-cache entries are rejected, warned about and
//!   regenerated, never trusted,
//! - a failing spool scan skips one scan, not the serve loop.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_boomerang-sim");

/// Exit codes under test (see `EXIT CODES` in the binary's usage text).
const PARTIAL_EXIT: i32 = 4;
const FAULT_EXIT: i32 = campaign::FAULT_EXIT_CODE;

const MINI_SPEC: &str = "name = \"chaos-mini\"
workloads = [\"nutch\", \"zeus\"]
mechanisms = [\"fdip\", \"boomerang\"]
seeds = [0, 1]

[run]
trace_blocks = 2000
warmup_blocks = 400
";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boomerang-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_bin(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().unwrap()
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// An undisturbed one-shot run of [`MINI_SPEC`]; returns the canonical
/// (JSON, CSV) report bytes every recovery test must reproduce exactly.
fn clean_reference(tag: &str) -> (Vec<u8>, Vec<u8>) {
    let dir = temp_dir(&format!("{tag}-ref"));
    let spec = dir.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let output = run_bin(&[
        "run",
        spec.to_str().unwrap(),
        "--jobs",
        "2",
        "--quiet",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr_of(&output));
    let json = std::fs::read(dir.join("chaos-mini.json")).unwrap();
    let csv = std::fs::read(dir.join("chaos-mini.csv")).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (json, csv)
}

/// Serves a single [`MINI_SPEC`] submission once with the given extra flags
/// and returns (process output, spool dir, out dir).
fn serve_mini(tag: &str, extra: &[&str]) -> (Output, PathBuf, PathBuf) {
    let spool = temp_dir(&format!("{tag}-spool"));
    let out = temp_dir(&format!("{tag}-out"));
    std::fs::write(spool.join("mini.toml"), MINI_SPEC).unwrap();
    let mut args = vec![
        "serve",
        "--once",
        "--workers",
        "2",
        "--quiet",
        "--backoff-ms",
        "10",
        "--spool",
        spool.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let output = Command::new(BIN).args(&args).output().unwrap();
    (output, spool, out)
}

fn assert_matches_reference(tag: &str, out: &Path) {
    let (ref_json, ref_csv) = clean_reference(tag);
    assert_eq!(
        std::fs::read(out.join("mini").join("chaos-mini.json")).unwrap(),
        ref_json,
        "recovered JSON drifted from the undisturbed run"
    );
    assert_eq!(
        std::fs::read(out.join("mini").join("chaos-mini.csv")).unwrap(),
        ref_csv,
        "recovered CSV drifted from the undisturbed run"
    );
}

#[test]
fn crashed_worker_is_restarted_and_bytes_match_a_clean_run() {
    let (output, spool, out) = serve_mini(
        "exit",
        &["--fault-inject", "worker-exit:shard=0:after-rows=2"],
    );
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(spool.join("mini.toml.done").exists(), "{stderr}");
    assert!(
        stderr.contains(&format!("exit status: {FAULT_EXIT}")) && stderr.contains("retrying"),
        "supervisor must log the injected crash and the retry: {stderr}"
    );
    assert_matches_reference("exit", &out);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn torn_journal_tail_is_truncated_on_resume_and_bytes_match() {
    let (output, spool, out) = serve_mini(
        "torn",
        &["--fault-inject", "journal-torn-tail:shard=1:after-rows=2"],
    );
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(spool.join("mini.toml.done").exists(), "{stderr}");
    assert!(stderr.contains("retrying"), "{stderr}");
    assert_matches_reference("torn", &out);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn hung_worker_is_killed_retried_and_bytes_match() {
    let (output, spool, out) = serve_mini(
        "hang",
        &[
            "--fault-inject",
            "worker-hang:shard=0:after-rows=1",
            "--worker-timeout-secs",
            "3",
        ],
    );
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(spool.join("mini.toml.done").exists(), "{stderr}");
    assert!(
        stderr.contains("hung"),
        "supervisor must label the stalled shard as hung: {stderr}"
    );
    assert_matches_reference("hang", &out);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn exhausted_retries_fail_the_submission_loudly() {
    let (output, spool, _out) = serve_mini(
        "exhaust",
        &[
            "--fault-inject",
            "worker-exit:shard=0:after-rows=1:lives=all",
            "--max-retries",
            "1",
        ],
    );
    let stderr = stderr_of(&output);
    assert_eq!(output.status.code(), Some(1), "{stderr}");
    assert!(spool.join("mini.toml.failed").exists(), "{stderr}");
    let note = std::fs::read_to_string(spool.join("mini.toml.error")).unwrap();
    assert!(
        note.contains("shard 0") && note.contains("attempt"),
        "the .error note must name the dead shard and the attempts: {note}"
    );
    std::fs::remove_dir_all(spool).unwrap();
}

#[test]
fn allow_partial_degrades_to_an_explicit_holes_marked_report() {
    // Persistent crash on shard 0 after every first row, sequential worker
    // (--jobs 1) for a deterministic row order: 3 lives (--max-retries 2)
    // checkpoint exactly 3 of shard 0's 6 rows before the budget runs out.
    let (output, spool, out) = serve_mini(
        "partial",
        &[
            "--fault-inject",
            "worker-exit:shard=0:after-rows=1:lives=all",
            "--max-retries",
            "2",
            "--jobs",
            "1",
            "--allow-partial",
        ],
    );
    let stderr = stderr_of(&output);
    assert_eq!(output.status.code(), Some(PARTIAL_EXIT), "{stderr}");
    assert!(spool.join("mini.toml.partial").exists(), "{stderr}");
    assert!(stderr.contains("PARTIAL"), "{stderr}");

    let json = std::fs::read_to_string(out.join("mini").join("chaos-mini.json")).unwrap();
    assert!(json.contains("\"partial\""), "{json}");
    assert!(json.contains("\"missing\""), "{json}");
    assert!(
        json.contains("worker shard 0 failed"),
        "the degradation cause must be recorded in the report: {json}"
    );

    let csv = std::fs::read_to_string(out.join("mini").join("chaos-mini.csv")).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 13, "header + 12 rows, holes included:\n{csv}");
    let commas = lines[0].matches(',').count();
    for line in &lines {
        assert_eq!(
            line.matches(',').count(),
            commas,
            "ragged partial CSV row: {line}"
        );
    }
    let missing = lines.iter().filter(|l| l.ends_with(",missing")).count();
    assert_eq!(missing, 3, "3 lives checkpoint 3 of 6 shard-0 rows:\n{csv}");

    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn torn_report_write_publishes_nothing_and_resume_completes() {
    let dir = temp_dir("report-torn");
    let spec = dir.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let args = |fault: bool| {
        let mut v = vec![
            "run".to_string(),
            spec.to_str().unwrap().to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--quiet".to_string(),
            "--out".to_string(),
            dir.to_str().unwrap().to_string(),
        ];
        if fault {
            v.extend(["--fault-inject".to_string(), "report-torn".to_string()]);
        } else {
            v.push("--resume".to_string());
        }
        v
    };

    let output = Command::new(BIN).args(args(true)).output().unwrap();
    assert_eq!(
        output.status.code(),
        Some(FAULT_EXIT),
        "{}",
        stderr_of(&output)
    );
    assert!(
        !dir.join("chaos-mini.json").exists(),
        "a report file must never exist half-written"
    );

    let output = Command::new(BIN).args(args(false)).output().unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let (ref_json, _) = clean_reference("report-torn");
    assert_eq!(
        std::fs::read(dir.join("chaos-mini.json")).unwrap(),
        ref_json
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Runs [`MINI_SPEC`] with `--artifact-cache cache` into `out`, with
/// optional extra flags; returns the process output.
fn run_cached(spec: &Path, cache: &Path, out: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "run",
        spec.to_str().unwrap(),
        "--jobs",
        "2",
        "--artifact-cache",
        cache.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    Command::new(BIN).args(&args).output().unwrap()
}

#[test]
fn corrupted_artifact_store_is_rejected_and_regenerated_next_run() {
    let base = temp_dir("art-corrupt");
    let spec = base.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let cache = base.join("cache");
    std::fs::create_dir_all(&cache).unwrap();

    // First run stores all 4 artifacts, one with an injected flipped payload
    // byte (after checksumming, so only a later load can notice).
    let output = run_cached(
        &spec,
        &cache,
        &base.join("a"),
        &["--fault-inject", "artifact-corrupt:nth=1"],
    );
    assert!(output.status.success(), "{}", stderr_of(&output));

    // Second process must reject exactly that artifact, warn, regenerate —
    // and still render the same bytes.
    let output = run_cached(&spec, &cache, &base.join("b"), &[]);
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(
        stderr.contains("rejected") && stderr.contains("regenerating"),
        "cache damage must be warned about, not trusted or fatal: {stderr}"
    );
    assert!(stderr.contains("3 cache hits, 1 generated"), "{stderr}");
    assert_eq!(
        std::fs::read(base.join("a").join("chaos-mini.json")).unwrap(),
        std::fs::read(base.join("b").join("chaos-mini.json")).unwrap(),
        "a regenerated artifact must reproduce identical reports"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn truncated_cache_file_warns_and_regenerates() {
    let base = temp_dir("art-trunc");
    let spec = base.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let cache = base.join("cache");
    std::fs::create_dir_all(&cache).unwrap();

    let output = run_cached(&spec, &cache, &base.join("a"), &[]);
    assert!(output.status.success(), "{}", stderr_of(&output));

    // Truncate one stored artifact below its header, mid-header another.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "wla"))
        .collect();
    files.sort();
    assert_eq!(files.len(), 4);
    std::fs::write(&files[0], b"wl").unwrap();
    let bytes = std::fs::read(&files[1]).unwrap();
    std::fs::write(&files[1], &bytes[..bytes.len() / 2]).unwrap();

    let output = run_cached(&spec, &cache, &base.join("b"), &[]);
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(
        stderr.contains("rejected") && stderr.contains("regenerating"),
        "{stderr}"
    );
    assert!(stderr.contains("2 cache hits, 2 generated"), "{stderr}");
    assert_eq!(
        std::fs::read(base.join("a").join("chaos-mini.json")).unwrap(),
        std::fs::read(base.join("b").join("chaos-mini.json")).unwrap()
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn concurrent_cache_writers_leave_a_fully_loadable_cache() {
    let base = temp_dir("art-race");
    let spec = base.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let cache = base.join("cache");
    std::fs::create_dir_all(&cache).unwrap();

    // Two cold runs race to populate the same cache (tmp + rename stores).
    let spawn = |out: &Path| {
        Command::new(BIN)
            .args([
                "run",
                spec.to_str().unwrap(),
                "--jobs",
                "2",
                "--quiet",
                "--artifact-cache",
            ])
            .arg(&cache)
            .arg("--out")
            .arg(out)
            .spawn()
            .unwrap()
    };
    let mut a = spawn(&base.join("a"));
    let mut b = spawn(&base.join("b"));
    assert!(a.wait().unwrap().success());
    assert!(b.wait().unwrap().success());

    // A third run must be served entirely from the survivors.
    let output = run_cached(&spec, &cache, &base.join("c"), &[]);
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(stderr.contains("4 cache hits, 0 generated"), "{stderr}");
    assert_eq!(
        std::fs::read(base.join("a").join("chaos-mini.json")).unwrap(),
        std::fs::read(base.join("c").join("chaos-mini.json")).unwrap()
    );
    std::fs::remove_dir_all(&base).unwrap();
}

/// Journal bitrot: a fault point flips one byte of a row line *after* its
/// `row_fnv` was computed — the writer cannot notice. The run itself
/// completes (its in-memory stats are true), but every later consumer of
/// the journal must reject the damaged row: `verify` fails the audit, and
/// `--resume` refuses with an error naming the file, line and checksums.
/// `--force` starts over and reproduces the reference bytes, after which
/// the audit passes again.
#[test]
fn journal_bitrot_is_caught_by_verify_and_resume_and_force_recovers() {
    let dir = temp_dir("bitrot");
    let spec = dir.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let out = dir.join("out");
    let run = |extra: &[&str]| {
        let mut args = vec![
            "run",
            spec.to_str().unwrap(),
            "--jobs",
            "1",
            "--quiet",
            "--out",
            out.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        run_bin(&args)
    };

    let output = run(&["--fault-inject", "journal-bitrot:after-rows=2"]);
    assert!(
        output.status.success(),
        "bitrot is silent at write time: {}",
        stderr_of(&output)
    );

    // The offline audit catches the damage and names it.
    let audit = run_bin(&[
        "verify",
        out.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
    ]);
    let table = String::from_utf8_lossy(&audit.stdout).into_owned();
    assert_eq!(audit.status.code(), Some(1), "{table}");
    assert!(
        table.contains("row_fnv") && table.contains("journal-rows  FAIL"),
        "the audit must fail on the damaged row: {table}"
    );

    // Resume refuses the damaged journal rather than trusting it.
    let resumed = run(&["--resume"]);
    let stderr = stderr_of(&resumed);
    assert_eq!(resumed.status.code(), Some(1), "{stderr}");
    assert!(
        stderr.contains("row_fnv") && stderr.contains(".journal.jsonl:3"),
        "the replay error must name the file, line and checksum: {stderr}"
    );

    // --force starts over; the rerun is byte-identical and audits clean.
    let forced = run(&["--force"]);
    assert!(forced.status.success(), "{}", stderr_of(&forced));
    let (ref_json, ref_csv) = {
        // The reference runs with the same --jobs for identical bytes.
        let ref_dir = temp_dir("bitrot-ref");
        let ref_spec = ref_dir.join("mini.toml");
        std::fs::write(&ref_spec, MINI_SPEC).unwrap();
        let output = run_bin(&[
            "run",
            ref_spec.to_str().unwrap(),
            "--jobs",
            "1",
            "--quiet",
            "--out",
            ref_dir.to_str().unwrap(),
        ]);
        assert!(output.status.success(), "{}", stderr_of(&output));
        let json = std::fs::read(ref_dir.join("chaos-mini.json")).unwrap();
        let csv = std::fs::read(ref_dir.join("chaos-mini.csv")).unwrap();
        std::fs::remove_dir_all(&ref_dir).unwrap();
        (json, csv)
    };
    assert_eq!(
        std::fs::read(out.join("chaos-mini.json")).unwrap(),
        ref_json,
        "a forced rerun must reproduce the reference bytes"
    );
    assert_eq!(std::fs::read(out.join("chaos-mini.csv")).unwrap(), ref_csv);
    let audit = run_bin(&[
        "verify",
        out.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
        "--recompute",
        "2",
    ]);
    assert!(
        audit.status.success(),
        "{}",
        String::from_utf8_lossy(&audit.stdout)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The audit CLI end-to-end: a clean campaign directory passes with exit 0;
/// flipping a single byte anywhere (here: the CSV report) fails it with
/// exit 1 and a named check.
#[test]
fn verify_passes_a_golden_dir_and_fails_any_single_bit_flip() {
    let dir = temp_dir("verify-cli");
    let spec = dir.join("mini.toml");
    std::fs::write(&spec, MINI_SPEC).unwrap();
    let out = dir.join("out");
    let output = run_bin(&[
        "run",
        spec.to_str().unwrap(),
        "--jobs",
        "2",
        "--quiet",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr_of(&output));

    let audit = run_bin(&[
        "verify",
        out.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
        "--recompute",
        "1",
    ]);
    let table = String::from_utf8_lossy(&audit.stdout).into_owned();
    assert!(audit.status.success(), "{table}");
    assert!(table.contains("verify: PASS"), "{table}");

    let csv = out.join("chaos-mini.csv");
    let mut bytes = std::fs::read(&csv).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&csv, bytes).unwrap();

    let audit = run_bin(&[
        "verify",
        out.to_str().unwrap(),
        "--spec",
        spec.to_str().unwrap(),
    ]);
    let table = String::from_utf8_lossy(&audit.stdout).into_owned();
    assert_eq!(audit.status.code(), Some(1), "{table}");
    assert!(
        table.contains("report-bytes  FAIL") && table.contains("verify: FAIL"),
        "{table}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn failed_spool_scan_skips_one_scan_not_the_serve_loop() {
    let spool = temp_dir("scanfail-spool");
    let out = temp_dir("scanfail-out");
    std::fs::write(spool.join("mini.toml"), MINI_SPEC).unwrap();

    // Scan 1 fails by injection; scan 2 finds and processes the submission;
    // scan 3 (the --max-scans bound) finds an empty spool and exits cleanly.
    let output = run_bin(&[
        "serve",
        "--workers",
        "2",
        "--quiet",
        "--max-scans",
        "3",
        "--poll-ms",
        "50",
        "--fault-inject",
        "spool-scan-error:nth=1",
        "--spool",
        spool.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    let stderr = stderr_of(&output);
    assert!(output.status.success(), "{stderr}");
    assert!(
        stderr.contains("spool scan failed"),
        "the skipped scan must be logged: {stderr}"
    );
    assert!(spool.join("mini.toml.done").exists(), "{stderr}");
    assert!(out.join("mini").join("chaos-mini.json").exists());
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
