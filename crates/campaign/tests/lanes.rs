//! Lane-batched scheduling fallback tests.
//!
//! The campaign engine runs whole (workload, seed) groups as lane-batched
//! units only when every row of the group is pending in the pass; resume
//! holes (rows already journaled), `--shard` splits and row limits must fall
//! back to per-row execution — and however a campaign is cut up, the merged
//! report must stay byte-identical to an uninterrupted one-shot run.

use campaign::{
    assemble_report, generate_workloads, presets, run_generated_partial, to_json, EngineOptions,
    RunPlan,
};
use frontend::SimStats;
use std::collections::HashMap;

fn options(jobs: usize) -> EngineOptions {
    EngineOptions {
        jobs,
        smoke: true,
        ..EngineOptions::default()
    }
}

#[test]
fn interrupted_group_resumes_per_row_to_identical_bytes() {
    let spec = presets::find("figure9").expect("figure9 preset exists");
    let opts = options(2);
    let generated = generate_workloads(&spec, &opts).expect("generation succeeds");

    // One-shot run: every 7-row (workload, seed) group lane-batches whole.
    let oneshot = run_generated_partial(
        &spec,
        &opts,
        &generated,
        &HashMap::new(),
        RunPlan::default(),
        None,
    );
    assert!(oneshot.is_complete());

    // Interrupted run: a 5-row limit cuts the first group mid-way, so the
    // first pass runs its rows per-row (the group is not fully pending).
    let first = run_generated_partial(
        &spec,
        &opts,
        &generated,
        &HashMap::new(),
        RunPlan {
            limit: Some(5),
            ..RunPlan::default()
        },
        None,
    );
    assert_eq!(first.executed, 5);

    // Resume: the journaled rows become `done` holes, so the first group
    // must fall back to per-row execution while untouched groups still
    // lane-batch whole.
    let done: HashMap<usize, SimStats> = first
        .stats
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|s| (i, s)))
        .collect();
    assert_eq!(done.len(), 5);
    let resumed = run_generated_partial(&spec, &opts, &generated, &done, RunPlan::default(), None);
    assert!(resumed.is_complete());

    let report = |stats: Vec<Option<SimStats>>| {
        let stats: Vec<SimStats> = stats.into_iter().map(Option::unwrap).collect();
        to_json(&assemble_report(
            &spec,
            generated.jobs(),
            generated.effective_run(),
            true,
            stats,
        ))
    };
    assert_eq!(
        report(resumed.stats),
        report(oneshot.stats),
        "interrupt/resume with a partially-journaled group must render \
         byte-identical reports"
    );
}

#[test]
fn sharded_passes_fall_back_per_row_to_identical_bytes() {
    let spec = presets::find("figure9").expect("figure9 preset exists");
    let opts = options(2);
    let generated = generate_workloads(&spec, &opts).expect("generation succeeds");

    let oneshot = run_generated_partial(
        &spec,
        &opts,
        &generated,
        &HashMap::new(),
        RunPlan::default(),
        None,
    );

    // The canonical round-robin scatters every group across shards, so the
    // sharded passes never lane-batch; their merge must still be identical.
    let mut merged: Vec<Option<SimStats>> = vec![None; generated.job_count()];
    for shard in 0..3 {
        let pass = run_generated_partial(
            &spec,
            &opts,
            &generated,
            &HashMap::new(),
            RunPlan {
                shard: Some((shard, 3)),
                ..RunPlan::default()
            },
            None,
        );
        for (slot, s) in merged.iter_mut().zip(pass.stats) {
            if let Some(s) = s {
                assert!(slot.is_none(), "shards must not overlap");
                *slot = Some(s);
            }
        }
    }
    assert_eq!(
        merged, oneshot.stats,
        "sharded per-row passes must merge to the lane-batched one-shot stats"
    );
}
