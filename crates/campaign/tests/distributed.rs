//! Distributed-mode chaos suite: the TCP work queue under network faults.
//!
//! Every test drives a real `boomerang-sim serve --listen` broker and real
//! `boomerang-sim worker --connect` processes over loopback, injects
//! deterministic network faults (`conn-drop`, `heartbeat-stall`,
//! `row-duplicate`, `frame-torn`, worker and broker crashes) into one end
//! or the other, and asserts the contract that makes distribution safe to
//! use at all: the merged report is **byte-identical** to an undisturbed
//! single-process run, no matter how the campaign was cut up or disturbed.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_boomerang-sim");
const FAULT_EXIT: i32 = campaign::FAULT_EXIT_CODE;

const MINI_SPEC: &str = "name = \"dist-mini\"
workloads = [\"nutch\", \"zeus\"]
mechanisms = [\"fdip\", \"boomerang\"]
seeds = [0, 1]

[run]
trace_blocks = 2000
warmup_blocks = 400
";

/// Rows in [`MINI_SPEC`]'s canonical expansion (2 workloads x 2 seeds x
/// (2 mechanisms + implicit baseline)).
const MINI_ROWS: usize = 12;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boomerang-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// An undisturbed one-shot run of `spec_text`; returns the canonical
/// (JSON, CSV) report bytes every distributed run must reproduce exactly.
fn clean_reference(tag: &str, spec_text: &str, name: &str) -> (Vec<u8>, Vec<u8>) {
    let dir = temp_dir(&format!("{tag}-ref"));
    let spec = dir.join("spec.toml");
    std::fs::write(&spec, spec_text).unwrap();
    let output = Command::new(BIN)
        .args(["run", spec.to_str().unwrap(), "--smoke", "--quiet", "--out"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let json = std::fs::read(dir.join(format!("{name}.json"))).unwrap();
    let csv = std::fs::read(dir.join(format!("{name}.csv"))).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (json, csv)
}

/// Spawns `serve --listen 127.0.0.1:0 --once --smoke` on a one-submission
/// spool and returns (child, spool, out, bound address).
fn spawn_broker(tag: &str, spec_text: &str, extra: &[&str]) -> (Child, PathBuf, PathBuf, String) {
    let spool = temp_dir(&format!("{tag}-spool"));
    let out = temp_dir(&format!("{tag}-out"));
    std::fs::write(spool.join("job.toml"), spec_text).unwrap();
    let addr_file = spool.join("addr");
    let mut args = vec![
        "serve",
        "--once",
        "--smoke",
        "--quiet",
        "--listen",
        "127.0.0.1:0",
        "--lease-timeout-secs",
        "2",
        "--backoff-ms",
        "10",
        "--spool",
        spool.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--listen-addr-file",
        addr_file.to_str().unwrap(),
    ];
    args.extend_from_slice(extra);
    let child = Command::new(BIN)
        .args(&args)
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&addr_file);
    (child, spool, out, addr)
}

/// Polls the `--listen-addr-file` until the broker has written its bound
/// address.
fn wait_for_addr(addr_file: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(text) = std::fs::read_to_string(addr_file) {
            let addr = text.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "broker never wrote its listen address"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Spawns a `worker --connect` with the given extra flags.
fn spawn_worker(addr: &str, index: usize, extra: &[&str]) -> Child {
    let index = index.to_string();
    let mut args = vec![
        "worker",
        "--connect",
        addr,
        "--worker-index",
        &index,
        "--heartbeat-ms",
        "200",
    ];
    args.extend_from_slice(extra);
    Command::new(BIN)
        .args(&args)
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

fn assert_report_matches(out: &Path, name: &str, reference: &(Vec<u8>, Vec<u8>)) {
    assert_eq!(
        std::fs::read(out.join("job").join(format!("{name}.json"))).unwrap(),
        reference.0,
        "distributed JSON drifted from the undisturbed single-process run"
    );
    assert_eq!(
        std::fs::read(out.join("job").join(format!("{name}.csv"))).unwrap(),
        reference.1,
        "distributed CSV drifted from the undisturbed single-process run"
    );
}

/// The acceptance test: a figure9 smoke campaign leased to three TCP
/// workers while one drops its connection mid-row, one crashes outright,
/// and one goes silent until its lease expires and is reassigned — and the
/// merged report is still byte-identical to a clean one-shot run.
#[test]
fn figure9_smoke_under_network_chaos_matches_a_single_process_run() {
    let spec_text = campaign::presets::find("figure9").unwrap().to_toml_string();
    let reference = clean_reference("f9", &spec_text, "figure9");
    let (broker, spool, out, addr) = spawn_broker("f9", &spec_text, &["--workers", "0"]);

    // Worker 0 drops its connection after its 3rd row (before reading the
    // ack) and reconnects; worker 1 crashes after 2 rows; worker 2 stops
    // heartbeating on its 4th lease and hangs until we kill it.
    let dropper = spawn_worker(&addr, 0, &["--fault-inject", "conn-drop:after-rows=3"]);
    let crasher = spawn_worker(&addr, 1, &["--fault-inject", "worker-exit:after-rows=2"]);
    let mut staller = spawn_worker(
        &addr,
        2,
        &["--fault-inject", "heartbeat-stall:after-rows=4"],
    );

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert!(output.status.success(), "{serve_log}");
    let _ = staller.kill();
    let _ = staller.wait();

    let dropper = dropper.wait_with_output().unwrap();
    assert!(
        dropper.status.success(),
        "the disconnecting worker must recover and drain: {}",
        stderr_of(&dropper)
    );
    let crasher = crasher.wait_with_output().unwrap();
    assert_eq!(
        crasher.status.code(),
        Some(FAULT_EXIT),
        "{}",
        stderr_of(&crasher)
    );

    assert!(
        serve_log.contains("expired"),
        "the stalled worker's lease must expire and be reassigned: {serve_log}"
    );
    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "figure9", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Mixed dispatch: a local supervised worker (which crashes once and is
/// restarted) and a remote worker drain the same queue.
#[test]
fn mixed_local_and_remote_workers_merge_byte_identically() {
    let reference = clean_reference("mixed", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker(
        "mixed",
        MINI_SPEC,
        &[
            "--workers",
            "1",
            "--fault-inject",
            "worker-exit:shard=0:after-rows=2",
        ],
    );
    let remote = spawn_worker(&addr, 1, &[]);

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert!(output.status.success(), "{serve_log}");
    assert!(
        serve_log.contains(&format!("exit status: {FAULT_EXIT}")),
        "the local worker's injected crash must be supervised: {serve_log}"
    );
    let remote = remote.wait_with_output().unwrap();
    assert!(remote.status.success(), "{}", stderr_of(&remote));

    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Idempotent submission: a worker that transmits one row twice must not
/// double-append it — the journal holds exactly one line per job.
#[test]
fn duplicated_row_submissions_are_deduped_by_the_broker() {
    let reference = clean_reference("dup", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker("dup", MINI_SPEC, &["--workers", "0"]);
    let worker = spawn_worker(&addr, 0, &["--fault-inject", "row-duplicate:after-rows=2"]);

    let output = broker.wait_with_output().unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let worker = worker.wait_with_output().unwrap();
    assert!(worker.status.success(), "{}", stderr_of(&worker));

    let journal = std::fs::read_to_string(out.join("job").join("dist-mini.journal.jsonl")).unwrap();
    assert_eq!(
        journal.lines().count(),
        1 + MINI_ROWS,
        "header + one line per job; a duplicate row leaked into the journal:\n{journal}"
    );
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Broker crash and restart: the first broker kills itself mid-campaign
/// (fault point in its own journal append), the worker rides the outage on
/// reconnect backoff, and a second broker on the same address resumes from
/// the journal — byte-identical.
#[test]
fn broker_crash_and_restart_resumes_from_the_journal() {
    let reference = clean_reference("restart", MINI_SPEC, "dist-mini");
    // A fixed port the worker can find again across broker lives.
    let port = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let spool = temp_dir("restart-spool");
    let out = temp_dir("restart-out");
    std::fs::write(spool.join("job.toml"), MINI_SPEC).unwrap();

    let serve_args = |fault: bool| {
        let mut args: Vec<String> = [
            "serve",
            "--once",
            "--smoke",
            "--quiet",
            "--workers",
            "0",
            "--lease-timeout-secs",
            "2",
            "--listen",
            &addr,
            "--spool",
            spool.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]
        .map(String::from)
        .to_vec();
        if fault {
            // The broker journals every row, so `after-rows` armed here
            // counts *broker* appends; no `shard=` filter means it is not
            // scoped to a worker process.
            args.extend(["--fault-inject".into(), "worker-exit:after-rows=3".into()]);
        }
        args
    };

    // The worker outlives both broker lives on a generous reconnect budget.
    let worker = spawn_worker(
        &addr,
        0,
        &["--reconnect-ms", "50", "--reconnect-tries", "400"],
    );

    let first = Command::new(BIN).args(serve_args(true)).output().unwrap();
    assert_eq!(
        first.status.code(),
        Some(FAULT_EXIT),
        "{}",
        stderr_of(&first)
    );
    assert!(
        spool.join("job.toml").exists(),
        "a crashed broker must leave the submission in the spool"
    );

    let second = Command::new(BIN).args(serve_args(false)).output().unwrap();
    let serve_log = stderr_of(&second);
    assert!(second.status.success(), "{serve_log}");
    assert!(
        serve_log.contains("resuming") && serve_log.contains("3 of 12"),
        "the second broker must resume the 3 journaled rows: {serve_log}"
    );
    let worker = worker.wait_with_output().unwrap();
    assert!(
        worker.status.success(),
        "the worker must ride out the broker restart: {}",
        stderr_of(&worker)
    );

    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Frame-level damage: a worker whose 4th frame write is torn mid-frame
/// reconnects and finishes, and a connection speaking garbage is dropped by
/// the broker without disturbing the campaign.
#[test]
fn torn_frames_and_garbage_connections_do_not_disturb_the_campaign() {
    let reference = clean_reference("torn", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker("torn", MINI_SPEC, &["--workers", "0"]);

    // Not-a-frame bytes: the broker must reject the header and drop us.
    {
        let mut garbage = std::net::TcpStream::connect(&addr).unwrap();
        garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let _ = garbage.shutdown(std::net::Shutdown::Write);
    }
    // A connection that opens and immediately dies.
    drop(std::net::TcpStream::connect(&addr).unwrap());

    let worker = spawn_worker(&addr, 0, &["--fault-inject", "frame-torn:nth=4"]);
    let output = broker.wait_with_output().unwrap();
    assert!(output.status.success(), "{}", stderr_of(&output));
    let worker = worker.wait_with_output().unwrap();
    let worker_log = stderr_of(&worker);
    assert!(
        worker.status.success(),
        "the torn-frame worker must reconnect and drain: {worker_log}"
    );

    assert!(spool.join("job.toml.done").exists());
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Bit-level frame damage (not a tear): a worker whose 4th frame has one
/// payload byte flipped *after* the FNV trailer was computed. The broker's
/// trailer check must reject the frame and drop the connection; the worker
/// reconnects and the campaign still renders byte-identically.
#[test]
fn corrupt_frame_is_rejected_by_the_trailer_check_and_recovered() {
    let reference = clean_reference("framecorrupt", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker("framecorrupt", MINI_SPEC, &["--workers", "0"]);
    let worker = spawn_worker(&addr, 0, &["--fault-inject", "frame-corrupt:nth=4"]);

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert!(output.status.success(), "{serve_log}");
    let worker = worker.wait_with_output().unwrap();
    assert!(
        worker.status.success(),
        "the corrupt-frame worker must reconnect and drain: {}",
        stderr_of(&worker)
    );

    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// Row-payload corruption: a worker flips one stat value after checksumming
/// the true row. The broker's `row_fnv` gate must reject the row, quarantine
/// the offending session, requeue the job — and the recovered report is
/// byte-identical. The worker reconnects as a fresh (clean) session.
#[test]
fn corrupt_row_is_quarantined_requeued_and_recovered_byte_identically() {
    let reference = clean_reference("rowcorrupt", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker("rowcorrupt", MINI_SPEC, &["--workers", "0"]);
    let liar = spawn_worker(&addr, 0, &["--fault-inject", "row-corrupt:after-rows=2"]);
    let honest = spawn_worker(&addr, 1, &[]);

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert!(output.status.success(), "{serve_log}");
    for (name, child) in [("liar", liar), ("honest", honest)] {
        let w = child.wait_with_output().unwrap();
        assert!(
            w.status.success(),
            "the {name} worker must drain (the liar reconnects as a clean session): {}",
            stderr_of(&w)
        );
    }

    assert!(
        serve_log.contains("quarantining session") && serve_log.contains("row_fnv"),
        "the checksum reject and the quarantine must be logged: {serve_log}"
    );
    assert!(
        serve_log.contains("integrity summary") && serve_log.contains("1 checksum rejects"),
        "the integrity summary must count the reject: {serve_log}"
    );
    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// `--max-quarantined 0`: the first quarantined session breaches the bound,
/// the submission fails rather than grind on, and the serve process exits
/// with the dedicated quarantine code (5).
#[test]
fn quarantine_bound_fails_the_run_with_exit_code_five() {
    let (broker, spool, out, addr) = spawn_broker(
        "qbound",
        MINI_SPEC,
        &["--workers", "0", "--max-quarantined", "0"],
    );
    let mut liar = spawn_worker(&addr, 0, &["--fault-inject", "row-corrupt:after-rows=1"]);

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert_eq!(
        output.status.code(),
        Some(5),
        "the quarantine bound needs its own exit code: {serve_log}"
    );
    assert!(
        serve_log.contains("exceeding --max-quarantined"),
        "{serve_log}"
    );
    assert!(
        spool.join("job.toml.failed").exists(),
        "a quarantine-bound breach must fail the submission: {serve_log}"
    );
    let _ = liar.kill();
    let _ = liar.wait();
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// `--verify-fraction 1.0` with two workers: every row is re-leased to the
/// session that did not produce it, every re-run matches, nobody is
/// quarantined, and the report is byte-identical.
#[test]
fn sampled_reverification_passes_on_an_honest_fleet() {
    let reference = clean_reference("verifyok", MINI_SPEC, "dist-mini");
    let (broker, spool, out, addr) = spawn_broker(
        "verifyok",
        MINI_SPEC,
        &["--workers", "0", "--verify-fraction", "1.0"],
    );
    let a = spawn_worker(&addr, 0, &[]);
    let b = spawn_worker(&addr, 1, &[]);

    let output = broker.wait_with_output().unwrap();
    let serve_log = stderr_of(&output);
    assert!(output.status.success(), "{serve_log}");
    for child in [a, b] {
        let w = child.wait_with_output().unwrap();
        assert!(w.status.success(), "{}", stderr_of(&w));
    }

    let summary = serve_log
        .lines()
        .find(|l| l.contains("integrity summary"))
        .unwrap_or_else(|| panic!("no integrity summary in: {serve_log}"));
    assert!(
        !summary.contains("0 rows re-verified"),
        "a 1.0 fraction must actually re-verify rows: {summary}"
    );
    assert!(
        summary.contains("0 verification mismatches") && summary.contains("0 sessions quarantined"),
        "an honest fleet must come out clean: {summary}"
    );
    assert!(spool.join("job.toml.done").exists(), "{serve_log}");
    assert_report_matches(&out, "dist-mini", &reference);
    for dir in [spool, out] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}
