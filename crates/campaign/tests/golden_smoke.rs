//! Golden test pinning the `boomerang-sim run --preset figure9 --smoke` JSON
//! report byte-for-byte.
//!
//! The committed golden file was produced by the *seed* (pre-event-horizon)
//! per-cycle simulator, so this test is the standing proof of the
//! acceptance contract: the optimized engine and allocation-free memory
//! hierarchy must not change a single byte of the campaign report, for any
//! worker count. If an intentional modelling change ever breaks this,
//! regenerate the file with
//! `boomerang-sim run --preset figure9 --smoke --quiet --out <dir>` and
//! say so loudly in the PR.

use campaign::{fnv1a64, presets, run_campaign, to_json, EngineOptions};
use frontend::SimEngine;

const GOLDEN: &str = include_str!("golden/figure9-smoke.json");

fn smoke_report_lanes(jobs: usize, engine: SimEngine, lanes: usize) -> String {
    let spec = presets::find("figure9").expect("figure9 preset exists");
    let report = run_campaign(
        &spec,
        &EngineOptions {
            jobs,
            smoke: true,
            engine,
            lanes,
            ..EngineOptions::default()
        },
    )
    .expect("smoke campaign runs");
    to_json(&report)
}

fn smoke_report(jobs: usize, engine: SimEngine) -> String {
    // lanes: 0 — the default lane-batched schedule (whole groups as slabs).
    smoke_report_lanes(jobs, engine, 0)
}

#[test]
fn figure9_smoke_report_bytes_are_pinned() {
    assert_eq!(
        smoke_report(2, SimEngine::EventHorizon),
        GOLDEN,
        "figure9 --smoke JSON drifted from the committed golden bytes"
    );
}

#[test]
fn report_bytes_do_not_depend_on_worker_count() {
    assert_eq!(smoke_report(1, SimEngine::EventHorizon), GOLDEN);
    assert_eq!(smoke_report(5, SimEngine::EventHorizon), GOLDEN);
}

#[test]
fn reference_engine_renders_the_same_bytes() {
    assert_eq!(smoke_report(2, SimEngine::PerCycleReference), GOLDEN);
}

#[test]
fn report_bytes_do_not_depend_on_lane_schedule() {
    // Lane batching is a schedule, not an engine: per-row (lanes = 1), a
    // lane cap that splits each 7-row figure9 group into slabs (lanes = 2)
    // and whole-group slabs (lanes = 0, the default, covered above) must all
    // render the committed golden bytes.
    assert_eq!(smoke_report_lanes(2, SimEngine::EventHorizon, 1), GOLDEN);
    assert_eq!(smoke_report_lanes(2, SimEngine::EventHorizon, 2), GOLDEN);
}

#[test]
fn lane_batched_golden_digest_is_pinned() {
    // The ISSUE-8 acceptance digest of the figure9-smoke report, produced
    // through the lane path.
    let json = smoke_report(2, SimEngine::EventHorizon);
    assert_eq!(
        format!("fnv1a64:{:016x}", fnv1a64(json.as_bytes())),
        "fnv1a64:12d5c5644373b35b",
    );
}
