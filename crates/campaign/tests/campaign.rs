//! Integration tests of the campaign subsystem: spec round-trips, cartesian
//! expansion, and sharding determinism.

use campaign::{expand, run_campaign, to_csv, to_json, CampaignSpec, EngineOptions, PRESETS};

/// A deliberately mixed spec: 2 configs x 2 workloads x 2 seeds x 3
/// mechanisms, short enough to simulate in a test.
const SPEC: &str = r#"
name = "integration"
description = "integration test sweep"
workloads = ["nutch", "streaming"]
mechanisms = ["next-line", "fdip", "boomerang"]
predictor = "tage"
seeds = [0, 11]

[run]
trace_blocks = 2500
warmup_blocks = 500

[[config]]
label = "table1"

[[config]]
label = "crossbar"
noc = "crossbar"
"#;

#[test]
fn spec_toml_round_trip() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let text = spec.to_toml_string();
    let again = CampaignSpec::from_toml_str(&text).unwrap();
    assert_eq!(spec, again);
    // And a second generation is a fixed point byte-wise.
    assert_eq!(text, again.to_toml_string());
}

#[test]
fn preset_specs_round_trip() {
    for preset in PRESETS {
        let spec = preset.spec();
        let again = CampaignSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, again, "preset {}", preset.name);
    }
}

#[test]
fn cartesian_expansion_counts() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    assert_eq!(spec.cell_count(), 2 * 2 * 2 * 3);
    let jobs = expand(&spec);
    // Every (config, workload, seed) group gains one implicit baseline.
    assert_eq!(jobs.len(), 2 * 2 * 2 * (3 + 1));
    assert_eq!(jobs.iter().filter(|j| j.implicit_baseline).count(), 8);

    // With baseline swept explicitly, no implicit jobs are added.
    let with_baseline = CampaignSpec::from_toml_str(&SPEC.replace(
        "[\"next-line\", \"fdip\", \"boomerang\"]",
        "[\"baseline\", \"fdip\"]",
    ))
    .unwrap();
    let jobs = expand(&with_baseline);
    assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
    assert!(jobs.iter().all(|j| !j.implicit_baseline));
}

/// A spec exercising the whole `[[workload]]` surface: override lists,
/// scalar overrides, and all three sub-tables.
const WORKLOAD_AXIS_SPEC: &str = r#"
name = "axis"
mechanisms = ["fdip"]

[run]
trace_blocks = 2500
warmup_blocks = 500

[[workload]]
label = "fp"
base = "apache"
footprint_bytes = [262144, 524288]
service_roots = [16, 48]
hot_callee_fraction = 0.4

[workload.terminators]
call = 0.09

[workload.conditionals]
bias_mean = 0.85

[workload.backend]
l1d_miss_rate = 0.055
base_latency = 2
"#;

#[test]
fn workload_axis_spec_round_trips() {
    let spec = CampaignSpec::from_toml_str(WORKLOAD_AXIS_SPEC).unwrap();
    assert_eq!(spec.workloads.len(), 4);
    let text = spec.to_toml_string();
    let again = CampaignSpec::from_toml_str(&text).unwrap();
    assert_eq!(spec, again);
    assert_eq!(text, again.to_toml_string());
    // The sub-table overrides survive the trip on every expanded point.
    for point in &again.workloads {
        assert_eq!(point.profile.terminators.call, 0.09);
        assert_eq!(point.profile.conditionals.bias_mean, 0.85);
        assert_eq!(point.profile.backend.l1d_miss_rate, 0.055);
        assert_eq!(point.profile.backend.base_latency, 2);
    }
}

#[test]
fn duplicate_workload_labels_rejected_across_sources() {
    let dup = WORKLOAD_AXIS_SPEC.replace(
        "label = \"fp\"\nbase = \"apache\"",
        "label = \"Apache\"\nbase = \"apache\"",
    );
    // "Apache-..." expanded labels are fine on their own...
    assert!(CampaignSpec::from_toml_str(&dup).is_ok());
    // ...but naming the preset under the same label must be rejected.
    let with_named = dup.replace(
        "mechanisms = [\"fdip\"]",
        "workloads = [\"apache\"]\nmechanisms = [\"fdip\"]",
    );
    let clash = with_named.replace(
        "footprint_bytes = [262144, 524288]\nservice_roots = [16, 48]\n",
        "",
    );
    let err = CampaignSpec::from_toml_str(&clash).unwrap_err().to_string();
    assert!(err.contains("duplicate"), "{err}");
}

/// The differential guarantee of the workload-identity refactor: an explicit
/// `[[workload]]` clone of a paper workload is the *same axis point* as
/// naming the workload, and the whole campaign report is byte-identical.
#[test]
fn explicit_workload_clone_matches_named_workload() {
    let named = CampaignSpec::from_toml_str(
        "name = \"diff\"\nworkloads = [\"streaming\"]\nmechanisms = [\"fdip\", \"boomerang\"]\n\n[run]\ntrace_blocks = 2500\nwarmup_blocks = 500\n",
    )
    .unwrap();
    let cloned = CampaignSpec::from_toml_str(
        "name = \"diff\"\nmechanisms = [\"fdip\", \"boomerang\"]\n\n[run]\ntrace_blocks = 2500\nwarmup_blocks = 500\n\n[[workload]]\nlabel = \"Streaming\"\nbase = \"streaming\"\n",
    )
    .unwrap();
    assert_eq!(named, cloned);
    let options = EngineOptions {
        jobs: 2,
        ..EngineOptions::default()
    };
    let report_named = run_campaign(&named, &options).unwrap();
    let report_cloned = run_campaign(&cloned, &options).unwrap();
    assert_eq!(
        to_json(&report_named),
        to_json(&report_cloned),
        "a [[workload]] clone of a paper workload must report identical stats"
    );
    assert_eq!(to_csv(&report_named), to_csv(&report_cloned));
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();

    let serial = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 1,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let sharded = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 8,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();

    let (json_1, json_8) = (to_json(&serial), to_json(&sharded));
    assert_eq!(json_1, json_8, "JSON report must not depend on --jobs");
    assert_eq!(
        to_csv(&serial),
        to_csv(&sharded),
        "CSV report must not depend on --jobs"
    );

    // Sanity on the content: every row simulated work and the baseline rows
    // are their own reference.
    assert_eq!(serial.rows.len(), expand(&spec).len());
    for row in &serial.rows {
        assert!(row.stats.instructions > 0);
        if row.job.implicit_baseline {
            assert_eq!(row.stats, row.baseline);
        }
    }
}

#[test]
fn smoke_overrides_the_run_length() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let report = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 4,
            smoke: true,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert!(report.smoke);
    assert_eq!(report.effective_run, boomerang::RunLength::smoke_test());
    let json = to_json(&report);
    assert!(json.contains("\"smoke\": true"));
}

#[test]
fn distinct_seed_offsets_simulate_distinct_traces() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let report = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 4,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let cycles_of = |seed: u64| {
        report
            .rows
            .iter()
            .find(|r| {
                r.job.seed == seed
                    && r.config_label == "table1"
                    && r.workload_label == "Nutch"
                    && r.job.implicit_baseline
            })
            .map(|r| r.stats.cycles)
            .unwrap()
    };
    assert_ne!(
        cycles_of(0),
        cycles_of(11),
        "seed offsets must produce independent workload samples"
    );
}
