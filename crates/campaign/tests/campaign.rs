//! Integration tests of the campaign subsystem: spec round-trips, cartesian
//! expansion, and sharding determinism.

use campaign::{expand, run_campaign, to_csv, to_json, CampaignSpec, EngineOptions, PRESETS};

/// A deliberately mixed spec: 2 configs x 2 workloads x 2 seeds x 3
/// mechanisms, short enough to simulate in a test.
const SPEC: &str = r#"
name = "integration"
description = "integration test sweep"
workloads = ["nutch", "streaming"]
mechanisms = ["next-line", "fdip", "boomerang"]
predictor = "tage"
seeds = [0, 11]

[run]
trace_blocks = 2500
warmup_blocks = 500

[[config]]
label = "table1"

[[config]]
label = "crossbar"
noc = "crossbar"
"#;

#[test]
fn spec_toml_round_trip() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let text = spec.to_toml_string();
    let again = CampaignSpec::from_toml_str(&text).unwrap();
    assert_eq!(spec, again);
    // And a second generation is a fixed point byte-wise.
    assert_eq!(text, again.to_toml_string());
}

#[test]
fn preset_specs_round_trip() {
    for preset in PRESETS {
        let spec = preset.spec();
        let again = CampaignSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, again, "preset {}", preset.name);
    }
}

#[test]
fn cartesian_expansion_counts() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    assert_eq!(spec.cell_count(), 2 * 2 * 2 * 3);
    let jobs = expand(&spec);
    // Every (config, workload, seed) group gains one implicit baseline.
    assert_eq!(jobs.len(), 2 * 2 * 2 * (3 + 1));
    assert_eq!(jobs.iter().filter(|j| j.implicit_baseline).count(), 8);

    // With baseline swept explicitly, no implicit jobs are added.
    let with_baseline = CampaignSpec::from_toml_str(&SPEC.replace(
        "[\"next-line\", \"fdip\", \"boomerang\"]",
        "[\"baseline\", \"fdip\"]",
    ))
    .unwrap();
    let jobs = expand(&with_baseline);
    assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
    assert!(jobs.iter().all(|j| !j.implicit_baseline));
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();

    let serial = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 1,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let sharded = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 8,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();

    let (json_1, json_8) = (to_json(&serial), to_json(&sharded));
    assert_eq!(json_1, json_8, "JSON report must not depend on --jobs");
    assert_eq!(
        to_csv(&serial),
        to_csv(&sharded),
        "CSV report must not depend on --jobs"
    );

    // Sanity on the content: every row simulated work and the baseline rows
    // are their own reference.
    assert_eq!(serial.rows.len(), expand(&spec).len());
    for row in &serial.rows {
        assert!(row.stats.instructions > 0);
        if row.job.implicit_baseline {
            assert_eq!(row.stats, row.baseline);
        }
    }
}

#[test]
fn smoke_overrides_the_run_length() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let report = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 4,
            smoke: true,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert!(report.smoke);
    assert_eq!(report.effective_run, boomerang::RunLength::smoke_test());
    let json = to_json(&report);
    assert!(json.contains("\"smoke\": true"));
}

#[test]
fn distinct_seed_offsets_simulate_distinct_traces() {
    let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
    let report = run_campaign(
        &spec,
        &EngineOptions {
            jobs: 4,
            smoke: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let cycles_of = |seed: u64| {
        report
            .rows
            .iter()
            .find(|r| {
                r.job.seed == seed
                    && r.config_label == "table1"
                    && r.job.workload.name() == "Nutch"
                    && r.job.implicit_baseline
            })
            .map(|r| r.stats.cycles)
            .unwrap()
    };
    assert_ne!(
        cycles_of(0),
        cycles_of(11),
        "seed offsets must produce independent workload samples"
    );
}
