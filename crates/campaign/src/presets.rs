//! Named campaign presets for the paper's figures.
//!
//! Presets are ordinary spec TOML embedded in the binary, so
//! `boomerang-sim run --preset figure9` works without any files on disk and
//! the figure binaries in `crates/bench` can share the exact same matrices.

use crate::spec::{CampaignSpec, SpecError};

/// A named, embedded campaign spec.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    /// Preset name (the `--preset` argument).
    pub name: &'static str,
    /// One-line description shown by `list-presets`.
    pub description: &'static str,
    /// The spec TOML.
    pub toml: &'static str,
}

impl Preset {
    /// Parses the embedded TOML.
    pub fn spec(&self) -> CampaignSpec {
        CampaignSpec::from_toml_str(self.toml)
            .unwrap_or_else(|e| panic!("embedded preset `{}` is invalid: {e}", self.name))
    }
}

/// The Figure 7 matrix: squashes per kilo-instruction for the six mechanisms
/// on all six workloads at the Table I configuration.
const FIGURE7: Preset = Preset {
    name: "figure7",
    description: "Fig. 7 — squash causes, six mechanisms, Table I config",
    toml: r#"
name = "figure7"
description = "Pipeline squashes per kilo-instruction by cause (2K-entry BTB)"
workloads = ["all"]
mechanisms = ["next-line", "dip", "fdip", "shift", "confluence", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 150000
warmup_blocks = 25000

[[config]]
label = "table1"
"#,
};

/// The Figure 9 matrix: speedup over the no-prefetch baseline.
const FIGURE9: Preset = Preset {
    name: "figure9",
    description: "Fig. 9 — speedup over no-prefetch baseline, Table I config",
    toml: r#"
name = "figure9"
description = "Speedup over the no-prefetch baseline (2K-entry BTB)"
workloads = ["all"]
mechanisms = ["next-line", "dip", "fdip", "shift", "confluence", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 150000
warmup_blocks = 25000

[[config]]
label = "table1"
"#,
};

/// The Figure 11 matrix: the crossbar (18-cycle LLC round trip) study.
const FIGURE11: Preset = Preset {
    name: "figure11",
    description: "Fig. 11 — speedup at the crossbar LLC latency",
    toml: r#"
name = "figure11"
description = "Speedup over the no-prefetch baseline at the 18-cycle crossbar LLC"
workloads = ["all"]
mechanisms = ["next-line", "fdip", "shift", "confluence", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 150000
warmup_blocks = 25000

[[config]]
label = "crossbar"
noc = "crossbar"
"#,
};

/// The LLC-latency sensitivity sweep (the Figure 2/5/11 axis) on Apache.
const LLC_SWEEP: Preset = Preset {
    name: "llc-sweep",
    description: "LLC round-trip latency sweep, FDIP vs Boomerang on Apache",
    toml: r#"
name = "llc-sweep"
description = "Stall-cycle coverage of FDIP and Boomerang across LLC round-trip latencies"
workloads = ["apache"]
mechanisms = ["fdip", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 50000
warmup_blocks = 10000

[[config]]
label = "llc-1"
noc = 1

[[config]]
label = "llc-10"
noc = 10

[[config]]
label = "llc-20"
noc = 20

[[config]]
label = "llc-30"
noc = 30

[[config]]
label = "llc-40"
noc = 40

[[config]]
label = "llc-50"
noc = 50

[[config]]
label = "llc-60"
noc = 60

[[config]]
label = "llc-70"
noc = 70
"#,
};

/// The instruction-footprint sensitivity sweep: a single `[[workload]]`
/// table expanding into a 3 footprints x 2 service-root-count family of
/// Nutch-based profiles, from comfortably L1-I/BTB-resident (256 KB) to the
/// multi-megabyte regime the paper's server workloads live in.
const FOOTPRINT_SWEEP: Preset = Preset {
    name: "footprint-sweep",
    description: "Footprint x service-roots profile sweep, FDIP vs Boomerang",
    toml: r#"
name = "footprint-sweep"
description = "Speedup across instruction footprints and service-root counts (Nutch-based profiles)"
mechanisms = ["fdip", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 50000
warmup_blocks = 10000

[[config]]
label = "table1"

[[workload]]
label = "nutch"
base = "nutch"
footprint_bytes = [262144, 1048576, 4194304]
service_roots = [32, 96]
"#,
};

/// The interpreter/JIT dispatch scenario: a branch-mix sweep whose
/// `[[workload]]` tables crank the indirect-jump and indirect-call weights
/// far beyond the server profiles, emulating bytecode-interpreter dispatch
/// loops (computed-goto handler tables) and JIT-compiled polymorphic call
/// sites. Indirect branches carry no predecodable target, so this scenario
/// stresses the BTB and TAGE in exactly the way the figure9 workloads do
/// not: Boomerang's predecode-based prefill cannot resolve the dominant
/// discontinuities, and prediction leans on history alone.
const INTERPRETER_DISPATCH: Preset = Preset {
    name: "interpreter-dispatch",
    description: "Indirect-heavy interpreter/JIT dispatch branch-mix sweep",
    toml: r#"
name = "interpreter-dispatch"
description = "Speedup under interpreter/JIT-style indirect-heavy dispatch branch mixes"
mechanisms = ["fdip", "confluence", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 50000
warmup_blocks = 10000

[[config]]
label = "table1"

# Bytecode interpreter: short handler blocks, each dispatch ending in an
# indirect jump through the handler table, with pattern-heavy conditionals
# (operand checks repeat per opcode sequence).
[[workload]]
label = "interp"
base = "oracle"
footprint_bytes = [1048576, 4194304]
mean_block_instructions = 4.5
mean_function_blocks = 9.0

[workload.terminators]
call = 0.05
indirect_call = 0.03
jump = 0.05
indirect_jump = 0.09
early_return = 0.03

[workload.conditionals]
loop_backedge = 0.1
pattern = 0.2
data_dependent = 0.06
bias_mean = 0.74
mean_trip_count = 4.0

# JIT-compiled dispatch: polymorphic inline caches and vtable calls make
# indirect *calls* dominate instead, with slightly longer compiled blocks.
[[workload]]
label = "jit"
base = "oracle"
footprint_bytes = [1048576, 4194304]
mean_block_instructions = 5.5

[workload.terminators]
call = 0.08
indirect_call = 0.07
jump = 0.06
indirect_jump = 0.03
early_return = 0.04
"#,
};

/// All presets, in presentation order.
pub const PRESETS: [Preset; 6] = [
    FIGURE7,
    FIGURE9,
    FIGURE11,
    LLC_SWEEP,
    FOOTPRINT_SWEEP,
    INTERPRETER_DISPATCH,
];

/// Looks a preset up by name.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the available presets if `name` is unknown.
pub fn find(name: &str) -> Result<CampaignSpec, SpecError> {
    PRESETS
        .iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .map(|p| p.spec())
        .ok_or_else(|| {
            SpecError::Invalid(format!(
                "unknown preset `{name}` (available: {})",
                PRESETS.map(|p| p.name).join(", ")
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use boomerang::Mechanism;

    #[test]
    fn every_preset_parses_and_round_trips() {
        for preset in PRESETS {
            let spec = preset.spec();
            assert_eq!(spec.name, preset.name.replace('_', "-"));
            let again = CampaignSpec::from_toml_str(&spec.to_toml_string()).unwrap();
            assert_eq!(spec, again, "preset {}", preset.name);
        }
    }

    #[test]
    fn figure_presets_match_the_paper_matrices() {
        let fig9 = find("figure9").unwrap();
        assert_eq!(fig9.workloads.len(), 6);
        assert_eq!(fig9.mechanisms.as_slice(), Mechanism::FIGURE7.as_slice());
        let fig11 = find("figure11").unwrap();
        assert_eq!(fig11.mechanisms.as_slice(), Mechanism::FIGURE11.as_slice());
        assert_eq!(fig11.configs[0].build().llc_round_trip(), 18);
        let sweep = find("llc-sweep").unwrap();
        assert_eq!(sweep.configs.len(), 8);
        assert_eq!(sweep.configs[7].build().llc_round_trip(), 70);
    }

    #[test]
    fn footprint_sweep_expands_the_workload_axis() {
        let sweep = find("footprint-sweep").unwrap();
        assert_eq!(sweep.workloads.len(), 6);
        assert!(sweep.workloads.iter().all(|w| !w.is_preset()));
        assert_eq!(sweep.workloads[0].label, "nutch-262144-32");
        assert_eq!(sweep.workloads[0].profile.footprint_bytes, 262_144);
        assert_eq!(sweep.workloads[5].label, "nutch-4194304-96");
        assert_eq!(sweep.workloads[5].profile.service_roots, 96);
        // 6 workloads x (2 mechanisms + implicit baseline).
        assert_eq!(crate::expand::expand(&sweep).len(), 18);
    }

    #[test]
    fn interpreter_dispatch_is_indirect_heavy() {
        let spec = find("interpreter-dispatch").unwrap();
        // 2 branch mixes x 2 footprints.
        assert_eq!(spec.workloads.len(), 4);
        assert_eq!(spec.workloads[0].label, "interp-1048576");
        assert_eq!(spec.workloads[3].label, "jit-4194304");
        let oracle = workloads::WorkloadKind::Oracle.profile();
        let interp = &spec.workloads[0].profile;
        let jit = &spec.workloads[2].profile;
        assert!(interp.terminators.indirect_jump >= 10.0 * oracle.terminators.indirect_jump);
        assert!(jit.terminators.indirect_call > 3.0 * oracle.terminators.indirect_call);
        // 4 workloads x (3 mechanisms + implicit baseline).
        assert_eq!(crate::expand::expand(&spec).len(), 16);
        // The on-disk spec stays in sync with the embedded preset.
        let disk = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../specs/interpreter_dispatch.toml"),
        )
        .expect("specs/interpreter_dispatch.toml must exist");
        let disk_spec = CampaignSpec::from_toml_str(&disk).unwrap();
        assert_eq!(disk_spec, spec);
    }

    #[test]
    fn unknown_preset_is_a_helpful_error() {
        let err = find("figure99").unwrap_err().to_string();
        assert!(err.contains("figure9"), "{err}");
    }
}
