//! A tiny, deterministic JSON writer for campaign reports.
//!
//! The offline environment has no `serde_json`, and the campaign engine's
//! contract is stronger than serde's anyway: reports must be **byte
//! identical** for a given spec regardless of `--jobs`, so field order is the
//! insertion order of the builder and float formatting is Rust's shortest
//! round-trip `Display` (deterministic across runs and thread counts).

use std::fmt::Write as _;

/// A JSON value with ordered object fields.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (the only integer kind the reports need).
    UInt(u64),
    /// A float; non-finite values serialise as `null` per JSON's rules.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with fields in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises on a single line with no whitespace — the form used for
    /// JSONL streams (journals, row streams) where one record is one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                    // Keep round floats visibly floats (1 -> 1.0); very large
                    // magnitudes print so many digits that the suffix would
                    // only add noise.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_layout() {
        let doc = Json::object()
            .field("name", "demo")
            .field("count", 2u64)
            .field("ratio", 1.25)
            .field("whole", 2.0)
            .field("rows", vec![Json::object().field("ok", true), Json::Null]);
        let text = doc.pretty();
        assert!(text.starts_with("{\n  \"name\": \"demo\""));
        assert!(text.contains("\"ratio\": 1.25"));
        assert!(text.contains("\"whole\": 2.0"));
        assert!(text.contains("\"ok\": true"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn strings_are_escaped() {
        let doc = Json::object().field("k", "a\"b\\c\nd\u{1}");
        assert_eq!(doc.pretty(), "{\n  \"k\": \"a\\\"b\\\\c\\nd\\u0001\"\n}\n");
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            Json::object()
                .field("speedup", 1.2345678901234567)
                .field("x", 0.1 + 0.2)
                .pretty()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn compact_is_single_line() {
        let doc = Json::object()
            .field("job", 3u64)
            .field("ok", true)
            .field("name", "a\"b")
            .field("xs", vec![Json::UInt(1), Json::UInt(2)]);
        assert_eq!(
            doc.compact(),
            "{\"job\":3,\"ok\":true,\"name\":\"a\\\"b\",\"xs\":[1,2]}"
        );
        assert_eq!(Json::object().compact(), "{}");
        assert_eq!(Json::Array(vec![]).compact(), "[]");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Array(vec![]).pretty(), "[]\n");
        assert_eq!(Json::object().pretty(), "{}\n");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null\n");
    }
}
