//! Deterministic fault injection for the campaign service.
//!
//! FIPAC-style fault injection treats faults as a first-class adversary; this
//! module treats them as a first-class *test harness* for the service that
//! runs the campaigns. A **fault plan** — parsed from the [`FAULT_ENV`]
//! environment variable or the `--fault-inject` CLI flag — arms named fault
//! points compiled into the worker row loop, the checkpoint-journal append,
//! the artifact store, the report write and the spool scan. With no plan the
//! points are inert (one relaxed atomic load), so the exact crash paths the
//! supervisor must survive can be exercised deterministically in CI without
//! a separate chaos build.
//!
//! # Plan syntax
//!
//! A plan is a comma-separated list of faults, each a kind plus optional
//! `key=value` filters separated by `:`
//!
//! ```text
//! worker-exit:shard=1:after-rows=3
//! worker-hang:shard=0:after-rows=5
//! journal-torn-tail:shard=0:after-rows=2
//! artifact-corrupt:nth=2
//! report-torn
//! spool-scan-error:nth=1,worker-exit:shard=1:after-rows=3:lives=2
//! conn-drop:shard=0:after-rows=2,heartbeat-stall:shard=1:after-rows=3
//! ```
//!
//! | kind                | fires at                            | effect |
//! |---------------------|-------------------------------------|--------|
//! | `worker-exit`       | the `after-rows`-th checkpointed row | `exit(113)` after the row is durably journaled |
//! | `worker-hang`       | the `after-rows`-th checkpointed row | sleeps forever (journal progress stalls) |
//! | `journal-torn-tail` | the `after-rows`-th journal append  | writes a prefix of the row line, then `exit(113)` |
//! | `conn-drop`         | the `after-rows`-th completed row   | a TCP worker drops its broker socket before the ack, then reconnects |
//! | `heartbeat-stall`   | the `after-rows`-th *granted lease* | a TCP worker stops heartbeating and stalls forever (the broker revokes and reassigns) |
//! | `row-duplicate`     | the `after-rows`-th completed row   | a TCP worker transmits the row's `RowDone` frame twice (the broker must dedup) |
//! | `artifact-corrupt`  | the `nth` artifact store            | flips a payload byte after checksumming (load rejects) |
//! | `report-torn`       | the `nth` report-file write         | writes half the bytes, then `exit(113)` |
//! | `spool-scan-error`  | the `nth` spool scan                | the scan returns an injected I/O error |
//! | `frame-torn`        | the `nth` protocol frame sent       | writes half the frame bytes, then fails the send (either end of the socket) |
//! | `row-corrupt`       | the `after-rows`-th completed row   | a TCP worker flips one stat value *after* checksumming the true row (the broker's `row_fnv` verification must quarantine it) |
//! | `journal-bitrot`    | the `after-rows`-th journal append  | flips one byte of the row line after its checksum was computed (replay rejects the row) |
//! | `frame-corrupt`     | the `nth` protocol frame sent       | flips one payload byte after the frame's FNV trailer was computed (`read_message` rejects the frame) |
//!
//! Filters: `shard=N` restricts a row fault to the worker process running
//! that shard of the canonical expansion — for TCP workers, the
//! `--worker-index` the process registered (default: any); `after-rows=N`
//! fires when this process's checkpointed/completed-row count reaches
//! exactly `N` (default 1; for `heartbeat-stall` it counts granted leases —
//! the stall happens before any row runs); `nth=N` fires on the `N`-th
//! event of a counter fault (default 1); `lives=K` (or `lives=all`) arms
//! the fault only while the worker's supervised life number —
//! [`FAULT_LIFE_ENV`], set by the supervisor on every (re)spawn, default 1
//! — is at most `K` (default 1). The life filter is what makes
//! crash-recovery tests deterministic: a restarted worker inherits the same
//! plan but runs at life 2, so a `lives=1` fault fires once and the retry
//! recovers, while `lives=all` models a persistent failure that exhausts
//! the retry budget.
//!
//! Row counts are per process life: `after-rows` compares against rows
//! *checkpointed by this process*, not rows replayed from the journal, so a
//! resumed worker's counter starts at zero again — which is exactly what a
//! `lives` bound needs to reason about.
//!
//! [`FaultPlan`] implements `Display` with a canonical rendering (default
//! filters omitted) that round-trips through [`FaultPlan::parse`]; `serve`
//! forwards exactly that canonical form to its workers through
//! [`FAULT_ENV`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the fault plan. Worker processes inherit it
/// from the `serve` supervisor, so one plan arms the whole process tree.
pub const FAULT_ENV: &str = "BOOMERANG_FAULT";

/// Environment variable carrying a worker's supervised life number
/// (1-based). The supervisor sets it on every spawn; unset means life 1.
pub const FAULT_LIFE_ENV: &str = "BOOMERANG_FAULT_LIFE";

/// Exit code of every injected crash (`worker-exit`, `journal-torn-tail`,
/// `report-torn`). Distinct from real failure codes so supervisor logs can
/// label injected deaths.
pub const FAULT_EXIT_CODE: i32 = 113;

/// The named fault points a plan can arm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit the process right after a row is durably checkpointed.
    WorkerExit,
    /// Stop making progress forever after a checkpointed row (the journal
    /// stops growing, which is what hang detection watches).
    WorkerHang,
    /// Write only a prefix of a journal row line, then exit — the
    /// mid-`write` kill signature.
    JournalTornTail,
    /// Corrupt one byte of an artifact payload after its checksum was
    /// computed, so a later load fails verification.
    ArtifactCorrupt,
    /// Exit midway through writing a report file (before the atomic
    /// rename).
    ReportTorn,
    /// Make one spool scan return an I/O error.
    SpoolScanError,
    /// A TCP worker abruptly drops its broker connection right after sending
    /// a row (before reading the ack), then reconnects with backoff.
    ConnDrop,
    /// A TCP worker accepts a lease, then stops heartbeating and stalls
    /// forever — the revocation/reassignment signature.
    HeartbeatStall,
    /// A TCP worker transmits one row's `RowDone` frame twice; the broker's
    /// journal dedup must absorb the retransmission.
    RowDuplicate,
    /// Write only half of one protocol frame, then fail the send — the torn
    /// TCP write signature, armed on either end of the socket.
    FrameTorn,
    /// A TCP worker flips one stat value of a completed row *after* the
    /// row's `row_fnv` checksum was computed over the true values — the
    /// corrupted-result signature the broker's verification must catch
    /// (and quarantine the session for).
    RowCorrupt,
    /// Flip one byte of a journal row line after its `row_fnv` was
    /// computed — silent at-rest bitrot that replay must reject.
    JournalBitrot,
    /// Flip one payload byte of a protocol frame after its whole-payload
    /// FNV trailer was computed — in-flight bit damage `read_message`
    /// must reject instead of decoding plausibly.
    FrameCorrupt,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerExit => "worker-exit",
            FaultKind::WorkerHang => "worker-hang",
            FaultKind::JournalTornTail => "journal-torn-tail",
            FaultKind::ArtifactCorrupt => "artifact-corrupt",
            FaultKind::ReportTorn => "report-torn",
            FaultKind::SpoolScanError => "spool-scan-error",
            FaultKind::ConnDrop => "conn-drop",
            FaultKind::HeartbeatStall => "heartbeat-stall",
            FaultKind::RowDuplicate => "row-duplicate",
            FaultKind::FrameTorn => "frame-torn",
            FaultKind::RowCorrupt => "row-corrupt",
            FaultKind::JournalBitrot => "journal-bitrot",
            FaultKind::FrameCorrupt => "frame-corrupt",
        }
    }

    /// Row faults count checkpointed rows and accept the `shard`/`after-rows`
    /// filters; counter faults count their own events and accept `nth`.
    fn is_row_fault(self) -> bool {
        matches!(
            self,
            FaultKind::WorkerExit
                | FaultKind::WorkerHang
                | FaultKind::JournalTornTail
                | FaultKind::ConnDrop
                | FaultKind::HeartbeatStall
                | FaultKind::RowDuplicate
                | FaultKind::RowCorrupt
                | FaultKind::JournalBitrot
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One armed fault: a kind plus its firing filters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which fault point this arms.
    pub kind: FaultKind,
    /// Row faults only: fire only in the worker running this shard of the
    /// canonical expansion (`None` = any shard).
    pub shard: Option<usize>,
    /// Row faults: fire when the process's checkpointed-row count reaches
    /// exactly this (1-based).
    pub after_rows: u64,
    /// Counter faults: fire on this event ordinal (1-based).
    pub nth: u64,
    /// Fire only while the worker's life number is at most this.
    pub lives: u64,
}

impl FaultSpec {
    fn new(kind: FaultKind) -> FaultSpec {
        FaultSpec {
            kind,
            shard: None,
            after_rows: 1,
            nth: 1,
            lives: 1,
        }
    }
}

impl fmt::Display for FaultSpec {
    /// Canonical plan syntax: the kind, then only the non-default filters.
    /// Round-trips through [`FaultPlan::parse`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(shard) = self.shard {
            write!(f, ":shard={shard}")?;
        }
        if self.after_rows != 1 {
            write!(f, ":after-rows={}", self.after_rows)?;
        }
        if self.nth != 1 {
            write!(f, ":nth={}", self.nth)?;
        }
        if self.lives == u64::MAX {
            write!(f, ":lives=all")?;
        } else if self.lives != 1 {
            write!(f, ":lives={}", self.lives)?;
        }
        Ok(())
    }
}

/// A parsed fault plan: the list of armed faults, in plan order. The first
/// matching fault acts on any given event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed faults.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Parses the `--fault-inject` / [`FAULT_ENV`] syntax. An empty string
    /// is the empty (inert) plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry on unknown kinds,
    /// unknown or misapplied filter keys, and unparseable values.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for entry in text.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let mut parts = entry.split(':');
            let kind_name = parts.next().expect("split yields at least one part");
            let kind = match kind_name {
                "worker-exit" => FaultKind::WorkerExit,
                "worker-hang" => FaultKind::WorkerHang,
                "journal-torn-tail" => FaultKind::JournalTornTail,
                "artifact-corrupt" => FaultKind::ArtifactCorrupt,
                "report-torn" => FaultKind::ReportTorn,
                "spool-scan-error" => FaultKind::SpoolScanError,
                "conn-drop" => FaultKind::ConnDrop,
                "heartbeat-stall" => FaultKind::HeartbeatStall,
                "row-duplicate" => FaultKind::RowDuplicate,
                "frame-torn" => FaultKind::FrameTorn,
                "row-corrupt" => FaultKind::RowCorrupt,
                "journal-bitrot" => FaultKind::JournalBitrot,
                "frame-corrupt" => FaultKind::FrameCorrupt,
                other => {
                    return Err(format!(
                        "fault plan entry `{entry}`: unknown fault kind `{other}`"
                    ))
                }
            };
            let mut spec = FaultSpec::new(kind);
            let mut seen: Vec<&str> = Vec::new();
            for filter in parts {
                let (key, value) = filter.split_once('=').ok_or_else(|| {
                    format!("fault plan entry `{entry}`: filter `{filter}` is not key=value")
                })?;
                if seen.contains(&key) {
                    return Err(format!(
                        "fault plan entry `{entry}`: duplicate `{key}` filter"
                    ));
                }
                seen.push(key);
                let number = |value: &str| {
                    value.parse::<u64>().map_err(|_| {
                        format!("fault plan entry `{entry}`: bad `{key}` value `{value}`")
                    })
                };
                match key {
                    "shard" if kind.is_row_fault() => {
                        spec.shard = Some(number(value)? as usize);
                    }
                    "after-rows" if kind.is_row_fault() => {
                        let n = number(value)?;
                        if n == 0 {
                            return Err(format!(
                                "fault plan entry `{entry}`: `after-rows` must be at least 1"
                            ));
                        }
                        spec.after_rows = n;
                    }
                    "nth" if !kind.is_row_fault() => {
                        let n = number(value)?;
                        if n == 0 {
                            return Err(format!(
                                "fault plan entry `{entry}`: `nth` must be at least 1"
                            ));
                        }
                        spec.nth = n;
                    }
                    "lives" => {
                        spec.lives = if value == "all" {
                            u64::MAX
                        } else {
                            let n = number(value)?;
                            if n == 0 {
                                return Err(format!(
                                    "fault plan entry `{entry}`: `lives` must be at least 1 \
                                     (or `all`)"
                                ));
                            }
                            n
                        };
                    }
                    _ => {
                        return Err(format!(
                            "fault plan entry `{entry}`: filter `{key}` does not apply to \
                             `{}`",
                            kind.name()
                        ))
                    }
                }
            }
            faults.push(spec);
        }
        Ok(FaultPlan { faults })
    }

    /// `true` when no fault is armed.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    /// Canonical plan syntax (entries joined with `,`, default filters
    /// omitted); `FaultPlan::parse(&plan.to_string())` yields `plan` back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

/// The process-wide fault runtime: the plan plus the event counters the
/// filters compare against.
struct FaultState {
    plan: FaultPlan,
    /// This process's supervised life number (1-based).
    life: u64,
    /// The shard of the canonical expansion this process executes
    /// ([`set_worker_shard`]); `u64::MAX` until registered.
    shard: AtomicU64,
    rows: AtomicU64,
    artifact_stores: AtomicU64,
    report_writes: AtomicU64,
    spool_scans: AtomicU64,
    /// Leases granted to this process (a TCP worker), for `heartbeat-stall`.
    leases: AtomicU64,
    /// Protocol frames sent by this process, for `frame-torn`.
    frames: AtomicU64,
}

static STATE: OnceLock<Result<FaultState, String>> = OnceLock::new();

fn build_state(plan_text: Option<&str>) -> Result<FaultState, String> {
    let text = match plan_text {
        Some(text) => text.to_string(),
        None => std::env::var(FAULT_ENV).unwrap_or_default(),
    };
    let plan = FaultPlan::parse(&text)?;
    let life = match std::env::var(FAULT_LIFE_ENV) {
        Ok(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad {FAULT_LIFE_ENV} value `{v}`"))?
            .max(1),
        Err(_) => 1,
    };
    Ok(FaultState {
        plan,
        life,
        shard: AtomicU64::new(u64::MAX),
        rows: AtomicU64::new(0),
        artifact_stores: AtomicU64::new(0),
        report_writes: AtomicU64::new(0),
        spool_scans: AtomicU64::new(0),
        leases: AtomicU64::new(0),
        frames: AtomicU64::new(0),
    })
}

/// Installs the process's fault plan from an explicit `--fault-inject`
/// string, or — when `None` — from [`FAULT_ENV`]. Idempotent for the same
/// plan; call before any fault point runs (the points self-initialise from
/// the environment otherwise).
///
/// # Errors
///
/// Returns the parse error of a malformed plan, or a conflict message if a
/// different plan was already installed in this process.
pub fn install(plan_text: Option<&str>) -> Result<(), String> {
    let state = STATE.get_or_init(|| build_state(plan_text));
    match state {
        Err(e) => Err(e.clone()),
        Ok(installed) => {
            if let Some(text) = plan_text {
                let wanted = FaultPlan::parse(text)?;
                if installed.plan != wanted {
                    return Err(
                        "a different fault plan is already active in this process".to_string()
                    );
                }
            }
            Ok(())
        }
    }
}

/// The live state, or `None` when the plan is empty (the fast path).
fn active() -> Option<&'static FaultState> {
    let state = STATE.get_or_init(|| build_state(None));
    match state {
        Ok(state) if !state.plan.is_empty() => Some(state),
        Ok(_) => None,
        // `install` surfaces parse errors cleanly at startup; a fault point
        // reached with a plan that never parsed must not run unprotected.
        Err(e) => panic!("{FAULT_ENV} did not parse: {e}"),
    }
}

/// Registers which shard of the canonical expansion this process executes
/// (the `--shard I/N` index; unsharded runs register 0), so `shard=` filters
/// can address one worker of a supervised fleet.
pub fn set_worker_shard(shard: usize) {
    if let Some(state) = active() {
        state.shard.store(shard as u64, Ordering::Relaxed);
    }
}

/// The row faults due at one checkpointed row, in effect order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowFaults {
    /// Write a torn row line and exit instead of the full line.
    pub torn_tail: bool,
    /// Exit (with [`FAULT_EXIT_CODE`]) after the row is durably written.
    pub exit: bool,
    /// Stop making progress forever after the row is written.
    pub hang: bool,
    /// TCP workers: drop the broker socket right after sending this row,
    /// before reading the ack, then reconnect.
    pub conn_drop: bool,
    /// TCP workers: transmit this row's `RowDone` frame twice.
    pub duplicate: bool,
    /// TCP workers: flip one stat value after the row checksum was computed
    /// over the true values, so the broker's verification rejects the row.
    pub corrupt: bool,
    /// Journal writers: flip one byte of the row line after its checksum was
    /// computed, so replay rejects the row.
    pub bitrot: bool,
}

impl RowFaults {
    /// `true` when no row fault fires.
    pub fn is_inert(&self) -> bool {
        *self == RowFaults::default()
    }
}

/// Advances the completed-row counter and collects the row faults firing at
/// this row (`heartbeat-stall` excluded — it counts granted leases, not
/// rows, and is read by [`stall_this_lease`]).
fn row_faults(state: &FaultState) -> RowFaults {
    let row = state.rows.fetch_add(1, Ordering::Relaxed) + 1;
    let shard = state.shard.load(Ordering::Relaxed);
    let mut faults = RowFaults::default();
    for spec in &state.plan.faults {
        if !spec.kind.is_row_fault()
            || spec.kind == FaultKind::HeartbeatStall
            || state.life > spec.lives
            || row != spec.after_rows
            || spec.shard.is_some_and(|s| s as u64 != shard)
        {
            continue;
        }
        match spec.kind {
            FaultKind::JournalTornTail => faults.torn_tail = true,
            FaultKind::WorkerExit => faults.exit = true,
            FaultKind::WorkerHang => faults.hang = true,
            FaultKind::ConnDrop => faults.conn_drop = true,
            FaultKind::RowDuplicate => faults.duplicate = true,
            FaultKind::RowCorrupt => faults.corrupt = true,
            FaultKind::JournalBitrot => faults.bitrot = true,
            _ => unreachable!("row faults only"),
        }
    }
    faults
}

/// Journal-append fault point: advances the checkpointed-row counter and
/// reports which row faults fire at this row. Called by
/// [`crate::checkpoint::Journal::record`] once per appended row.
pub fn on_row_append() -> RowFaults {
    let Some(state) = active() else {
        return RowFaults::default();
    };
    row_faults(state)
}

/// TCP-worker row fault point: advances the completed-row counter and
/// reports which row faults fire at this row. Called by
/// [`crate::worker`] once per row it is about to transmit — the worker-side
/// analogue of [`on_row_append`] (a TCP worker appends no journal of its
/// own; the broker journals on its behalf).
pub fn on_worker_row() -> RowFaults {
    let Some(state) = active() else {
        return RowFaults::default();
    };
    row_faults(state)
}

/// Lease-grant fault point: advances the granted-lease counter and reports
/// whether a `heartbeat-stall` fault fires on this lease — the worker must
/// stop heartbeating and stall forever, leaving the lease to expire.
pub fn stall_this_lease() -> bool {
    let Some(state) = active() else {
        return false;
    };
    if !state
        .plan
        .faults
        .iter()
        .any(|spec| spec.kind == FaultKind::HeartbeatStall)
    {
        return false;
    }
    let lease = state.leases.fetch_add(1, Ordering::Relaxed) + 1;
    let shard = state.shard.load(Ordering::Relaxed);
    state.plan.faults.iter().any(|spec| {
        spec.kind == FaultKind::HeartbeatStall
            && state.life <= spec.lives
            && lease == spec.after_rows
            && spec.shard.is_none_or(|s| s as u64 == shard)
    })
}

/// The fault (if any) due at one sent protocol frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Send the frame intact.
    None,
    /// Write half the frame bytes, then fail the send.
    Torn,
    /// Flip one payload byte after the frame's FNV trailer was computed.
    Corrupt,
}

/// Frame-send fault point: advances the process-wide frame-send ordinal and
/// reports whether this frame must be torn mid-write or bit-flipped after
/// checksumming. One counter serves both kinds, so `frame-torn:nth=N` and
/// `frame-corrupt:nth=M` in one plan address the same send sequence.
pub fn on_frame_send() -> FrameFault {
    let Some(state) = active() else {
        return FrameFault::None;
    };
    if !state
        .plan
        .faults
        .iter()
        .any(|spec| matches!(spec.kind, FaultKind::FrameTorn | FaultKind::FrameCorrupt))
    {
        return FrameFault::None;
    }
    let event = state.frames.fetch_add(1, Ordering::Relaxed) + 1;
    for spec in &state.plan.faults {
        if state.life <= spec.lives && event == spec.nth {
            match spec.kind {
                FaultKind::FrameTorn => return FrameFault::Torn,
                FaultKind::FrameCorrupt => return FrameFault::Corrupt,
                _ => {}
            }
        }
    }
    FrameFault::None
}

fn counter_fault(kind: FaultKind, counter: &AtomicU64) -> bool {
    let Some(state) = active() else {
        return false;
    };
    let event = counter.fetch_add(1, Ordering::Relaxed) + 1;
    state
        .plan
        .faults
        .iter()
        .any(|spec| spec.kind == kind && state.life <= spec.lives && event == spec.nth)
}

/// Artifact-store fault point: `true` when this store (process-wide ordinal)
/// must corrupt one payload byte after checksumming.
pub fn corrupt_this_artifact_store() -> bool {
    let Some(state) = active() else {
        return false;
    };
    counter_fault(FaultKind::ArtifactCorrupt, &state.artifact_stores)
}

/// Report-write fault point: `true` when this report-file write must stop
/// halfway and exit.
pub fn tear_this_report_write() -> bool {
    let Some(state) = active() else {
        return false;
    };
    counter_fault(FaultKind::ReportTorn, &state.report_writes)
}

/// Spool-scan fault point: `true` when this scan must fail with an injected
/// I/O error.
pub fn fail_this_spool_scan() -> bool {
    let Some(state) = active() else {
        return false;
    };
    counter_fault(FaultKind::SpoolScanError, &state.spool_scans)
}

/// Terminates the process with [`FAULT_EXIT_CODE`] — the injected-crash
/// exit. Callers flush what a real kill would have left on disk first.
pub fn exit_now() -> ! {
    std::process::exit(FAULT_EXIT_CODE)
}

/// Never returns: the injected-hang behaviour (the process stays alive but
/// its journal stops growing, which is the signature hang detection reads).
pub fn hang_now() -> ! {
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_parses_to_inert() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ").unwrap().is_empty());
    }

    #[test]
    fn full_plan_round_trips_fields() {
        let plan = FaultPlan::parse(
            "worker-exit:shard=1:after-rows=3:lives=2, journal-torn-tail, \
             artifact-corrupt:nth=2, worker-hang:shard=0:after-rows=5:lives=all",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0].kind, FaultKind::WorkerExit);
        assert_eq!(plan.faults[0].shard, Some(1));
        assert_eq!(plan.faults[0].after_rows, 3);
        assert_eq!(plan.faults[0].lives, 2);
        assert_eq!(plan.faults[1].kind, FaultKind::JournalTornTail);
        assert_eq!(plan.faults[1].after_rows, 1);
        assert_eq!(plan.faults[2].kind, FaultKind::ArtifactCorrupt);
        assert_eq!(plan.faults[2].nth, 2);
        assert_eq!(plan.faults[3].lives, u64::MAX);
    }

    #[test]
    fn bad_plans_are_named_errors() {
        let unknown = FaultPlan::parse("meteor-strike").unwrap_err();
        assert!(unknown.contains("unknown fault kind"), "{unknown}");
        let misapplied = FaultPlan::parse("artifact-corrupt:shard=1").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
        let misapplied = FaultPlan::parse("worker-exit:nth=1").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
        let bad_value = FaultPlan::parse("worker-exit:after-rows=soon").unwrap_err();
        assert!(bad_value.contains("bad `after-rows`"), "{bad_value}");
        let zero = FaultPlan::parse("worker-exit:after-rows=0").unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        let no_eq = FaultPlan::parse("worker-exit:after-rows").unwrap_err();
        assert!(no_eq.contains("not key=value"), "{no_eq}");
    }

    #[test]
    fn network_kinds_parse_with_row_filters() {
        let plan = FaultPlan::parse(
            "conn-drop:shard=0:after-rows=2,heartbeat-stall:shard=1:after-rows=3,\
             row-duplicate:lives=all,frame-torn:nth=4",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(plan.faults[0].kind, FaultKind::ConnDrop);
        assert_eq!(plan.faults[0].shard, Some(0));
        assert_eq!(plan.faults[1].kind, FaultKind::HeartbeatStall);
        assert_eq!(plan.faults[1].after_rows, 3);
        assert_eq!(plan.faults[2].kind, FaultKind::RowDuplicate);
        assert_eq!(plan.faults[2].lives, u64::MAX);
        assert_eq!(plan.faults[3].kind, FaultKind::FrameTorn);
        assert_eq!(plan.faults[3].nth, 4);
        // frame-torn is a counter fault: row filters must be rejected.
        let misapplied = FaultPlan::parse("frame-torn:after-rows=2").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
    }

    #[test]
    fn integrity_kinds_parse_and_classify() {
        let plan = FaultPlan::parse(
            "row-corrupt:shard=1:after-rows=2,journal-bitrot:after-rows=3:lives=all,\
             frame-corrupt:nth=5",
        )
        .unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.faults[0].kind, FaultKind::RowCorrupt);
        assert_eq!(plan.faults[0].shard, Some(1));
        assert_eq!(plan.faults[0].after_rows, 2);
        assert_eq!(plan.faults[1].kind, FaultKind::JournalBitrot);
        assert_eq!(plan.faults[1].lives, u64::MAX);
        assert_eq!(plan.faults[2].kind, FaultKind::FrameCorrupt);
        assert_eq!(plan.faults[2].nth, 5);
        // row-corrupt/journal-bitrot are row faults; frame-corrupt counts
        // frame sends — each rejects the other class's filters.
        let misapplied = FaultPlan::parse("row-corrupt:nth=2").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
        let misapplied = FaultPlan::parse("frame-corrupt:after-rows=2").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
        let misapplied = FaultPlan::parse("frame-corrupt:shard=0").unwrap_err();
        assert!(misapplied.contains("does not apply"), "{misapplied}");
    }

    #[test]
    fn display_is_canonical_and_round_trips() {
        let texts = [
            "worker-exit:shard=1:after-rows=3:lives=2",
            "journal-torn-tail",
            "artifact-corrupt:nth=2",
            "worker-hang:shard=0:after-rows=5:lives=all",
            "conn-drop:shard=0:after-rows=2,heartbeat-stall:after-rows=3",
            "row-duplicate,frame-torn:nth=7:lives=3",
            "row-corrupt:after-rows=2,journal-bitrot:shard=1,frame-corrupt:nth=3",
            "",
        ];
        for text in texts {
            let plan = FaultPlan::parse(text).unwrap();
            let rendered = plan.to_string();
            assert_eq!(
                FaultPlan::parse(&rendered).unwrap(),
                plan,
                "via `{rendered}`"
            );
        }
        // Canonical form drops defaults and normalises whitespace.
        let plan = FaultPlan::parse(" worker-exit:after-rows=1:lives=1 , conn-drop:nth-free=1")
            .map(|p| p.to_string());
        assert!(plan.is_err(), "nth-free must be rejected");
        let plan = FaultPlan::parse(" worker-exit:after-rows=1:lives=1 , conn-drop ").unwrap();
        assert_eq!(plan.to_string(), "worker-exit,conn-drop");
    }

    #[test]
    fn duplicate_and_malformed_filters_are_rejected() {
        let dup = FaultPlan::parse("worker-exit:lives=1:lives=2").unwrap_err();
        assert!(dup.contains("duplicate `lives`"), "{dup}");
        let dup = FaultPlan::parse("conn-drop:after-rows=2:after-rows=3").unwrap_err();
        assert!(dup.contains("duplicate `after-rows`"), "{dup}");
        let bad_shard = FaultPlan::parse("conn-drop:shard=first").unwrap_err();
        assert!(bad_shard.contains("bad `shard`"), "{bad_shard}");
        let unknown = FaultPlan::parse("packet-eater:shard=0").unwrap_err();
        assert!(unknown.contains("unknown fault kind"), "{unknown}");
    }

    // Behavioural coverage of the fault points lives in the chaos suite
    // (`tests/chaos.rs`), which arms plans in *spawned* binary processes —
    // the runtime state is process-global, so in-process tests stick to the
    // pure parser.
}
