//! The declarative campaign spec: what to sweep, expressed as data.
//!
//! A campaign is the cartesian product of workloads × mechanisms ×
//! configuration points × seeds, at one run length, evaluated with one
//! direction predictor. Specs are written in a TOML subset (see
//! [`crate::toml`]) and round-trip losslessly through
//! [`CampaignSpec::from_toml_str`] / [`CampaignSpec::to_toml_string`]:
//!
//! ```toml
//! name = "figure9"
//! description = "Speedup over the no-prefetch baseline"
//! workloads = ["all"]
//! mechanisms = ["next-line", "dip", "fdip", "shift", "confluence", "boomerang"]
//! predictor = "tage"
//! seeds = [0]
//!
//! [run]
//! trace_blocks = 150000
//! warmup_blocks = 25000
//!
//! [[config]]
//! label = "table1"
//! ```
//!
//! Configuration points start from the paper's Table I
//! ([`MicroarchConfig::hpca17`]) and apply named overrides, so a spec states
//! only what it changes.

use crate::toml::{self, Document, Table, TomlError, Value};
use boomerang::{Mechanism, RunLength, ThrottlePolicy};
use branch_pred::PredictorKind;
use sim_core::{MicroarchConfig, NocModel, PerfectComponents};
use std::fmt;
use workloads::WorkloadKind;

/// Interconnect selection in a spec (`noc = "mesh" | "crossbar" | <cycles>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NocSel {
    /// The paper's 4x4 mesh (30-cycle LLC round trip).
    Mesh,
    /// The §VI-E2 crossbar (18-cycle LLC round trip).
    Crossbar,
    /// A fixed LLC round-trip latency, for sweeps.
    Fixed(u64),
}

impl NocSel {
    fn to_model(self) -> NocModel {
        match self {
            NocSel::Mesh => NocModel::Mesh4x4,
            NocSel::Crossbar => NocModel::Crossbar,
            NocSel::Fixed(lat) => NocModel::Fixed(lat),
        }
    }
}

/// One named override of the Table I configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigOverride {
    /// `btb_entries = N`
    BtbEntries(u64),
    /// `btb_ways = N`
    BtbWays(u64),
    /// `ftq_entries = N`
    FtqEntries(usize),
    /// `l1i_bytes = N`
    L1iBytes(u64),
    /// `fetch_width = N`
    FetchWidth(u64),
    /// `rob_entries = N`
    RobEntries(u64),
    /// `memory_latency_ns = X`
    MemoryLatencyNs(f64),
    /// `prefetch_probes_per_cycle = N`
    PrefetchProbesPerCycle(u64),
    /// `noc = "mesh" | "crossbar" | N`
    Noc(NocSel),
    /// `perfect_l1i = true|false`
    PerfectL1i(bool),
    /// `perfect_btb = true|false`
    PerfectBtb(bool),
}

impl ConfigOverride {
    fn apply(self, cfg: &mut MicroarchConfig) {
        match self {
            ConfigOverride::BtbEntries(v) => cfg.btb_entries = v,
            ConfigOverride::BtbWays(v) => cfg.btb_ways = v,
            ConfigOverride::FtqEntries(v) => cfg.ftq_entries = v,
            ConfigOverride::L1iBytes(v) => cfg.l1i_bytes = v,
            ConfigOverride::FetchWidth(v) => cfg.fetch_width = v,
            ConfigOverride::RobEntries(v) => cfg.rob_entries = v,
            ConfigOverride::MemoryLatencyNs(v) => cfg.memory_latency_ns = v,
            ConfigOverride::PrefetchProbesPerCycle(v) => cfg.prefetch_probes_per_cycle = v,
            ConfigOverride::Noc(sel) => cfg.noc = sel.to_model(),
            ConfigOverride::PerfectL1i(v) => cfg.perfect.perfect_l1i = v,
            ConfigOverride::PerfectBtb(v) => cfg.perfect.perfect_btb = v,
        }
    }

    fn write(self, table: &mut Table) {
        match self {
            ConfigOverride::BtbEntries(v) => table.insert("btb_entries", Value::Int(v as i64)),
            ConfigOverride::BtbWays(v) => table.insert("btb_ways", Value::Int(v as i64)),
            ConfigOverride::FtqEntries(v) => table.insert("ftq_entries", Value::Int(v as i64)),
            ConfigOverride::L1iBytes(v) => table.insert("l1i_bytes", Value::Int(v as i64)),
            ConfigOverride::FetchWidth(v) => table.insert("fetch_width", Value::Int(v as i64)),
            ConfigOverride::RobEntries(v) => table.insert("rob_entries", Value::Int(v as i64)),
            ConfigOverride::MemoryLatencyNs(v) => {
                table.insert("memory_latency_ns", Value::Float(v))
            }
            ConfigOverride::PrefetchProbesPerCycle(v) => {
                table.insert("prefetch_probes_per_cycle", Value::Int(v as i64))
            }
            ConfigOverride::Noc(NocSel::Mesh) => table.insert("noc", Value::Str("mesh".into())),
            ConfigOverride::Noc(NocSel::Crossbar) => {
                table.insert("noc", Value::Str("crossbar".into()))
            }
            ConfigOverride::Noc(NocSel::Fixed(lat)) => table.insert("noc", Value::Int(lat as i64)),
            ConfigOverride::PerfectL1i(v) => table.insert("perfect_l1i", Value::Bool(v)),
            ConfigOverride::PerfectBtb(v) => table.insert("perfect_btb", Value::Bool(v)),
        }
    }
}

/// One configuration point of the sweep: a label plus Table I overrides.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Label used in reports (e.g. `"table1"`, `"llc-18"`).
    pub label: String,
    /// Overrides applied on top of [`MicroarchConfig::hpca17`], in order.
    pub overrides: Vec<ConfigOverride>,
}

impl ConfigPoint {
    /// The baseline Table I point with no overrides.
    pub fn table1(label: impl Into<String>) -> Self {
        ConfigPoint {
            label: label.into(),
            overrides: Vec::new(),
        }
    }

    /// Materialises the [`MicroarchConfig`] this point describes.
    pub fn build(&self) -> MicroarchConfig {
        let mut cfg = MicroarchConfig::hpca17();
        cfg.perfect = PerfectComponents::none();
        for o in &self.overrides {
            o.apply(&mut cfg);
        }
        cfg
    }
}

/// A fully parsed campaign description.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name; also the stem of the report files.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Workloads to sweep.
    pub workloads: Vec<WorkloadKind>,
    /// Mechanisms to sweep.
    pub mechanisms: Vec<Mechanism>,
    /// Direction predictor for every job.
    pub predictor: PredictorKind,
    /// Seed offsets; `0` keeps each workload's paper seed, other values
    /// re-derive layout and trace deterministically (see
    /// [`crate::engine::derive_seed`]).
    pub seeds: Vec<u64>,
    /// Simulation length for every job.
    pub run: RunLength,
    /// Configuration points.
    pub configs: Vec<ConfigPoint>,
}

/// Error produced while interpreting a spec.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The TOML layer rejected the document.
    Toml(TomlError),
    /// The document parsed but does not describe a valid campaign.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "{e}"),
            SpecError::Invalid(msg) => write!(f, "invalid campaign spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError::Toml(e)
    }
}

fn invalid(msg: impl Into<String>) -> SpecError {
    SpecError::Invalid(msg.into())
}

/// Parses a workload token (paper name, case-insensitive).
pub fn parse_workload(token: &str) -> Result<WorkloadKind, SpecError> {
    let t = token.to_ascii_lowercase();
    WorkloadKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().to_ascii_lowercase() == t)
        .ok_or_else(|| {
            invalid(format!(
                "unknown workload `{token}` (expected one of {}, or \"all\")",
                WorkloadKind::ALL.map(|k| k.name()).join(", ")
            ))
        })
}

/// Parses a mechanism token: `baseline`, `next-line`, `dip`, `fdip`, `pif`,
/// `shift`, `confluence`, `boomerang`, `boomerang:none`, or `boomerang:N`
/// (next-N-blocks throttle).
pub fn parse_mechanism(token: &str) -> Result<Mechanism, SpecError> {
    let t = token.to_ascii_lowercase();
    Ok(match t.as_str() {
        "baseline" => Mechanism::Baseline,
        "next-line" | "nextline" => Mechanism::NextLine,
        "dip" => Mechanism::Dip,
        "fdip" => Mechanism::Fdip,
        "pif" => Mechanism::Pif,
        "shift" => Mechanism::Shift,
        "confluence" => Mechanism::Confluence,
        "boomerang" => Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
        _ => {
            if let Some(policy) = t.strip_prefix("boomerang:") {
                let policy = match policy {
                    "none" => ThrottlePolicy::None,
                    n => ThrottlePolicy::NextN(n.parse::<u64>().map_err(|_| {
                        invalid(format!(
                            "bad boomerang throttle `{token}` (use boomerang:none or boomerang:N)"
                        ))
                    })?),
                };
                Mechanism::Boomerang(policy)
            } else {
                return Err(invalid(format!("unknown mechanism `{token}`")));
            }
        }
    })
}

/// The canonical spec token for a mechanism (inverse of [`parse_mechanism`]).
pub fn mechanism_token(m: Mechanism) -> String {
    match m {
        Mechanism::Baseline => "baseline".into(),
        Mechanism::NextLine => "next-line".into(),
        Mechanism::Dip => "dip".into(),
        Mechanism::Fdip => "fdip".into(),
        Mechanism::Pif => "pif".into(),
        Mechanism::Shift => "shift".into(),
        Mechanism::Confluence => "confluence".into(),
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT) => "boomerang".into(),
        Mechanism::Boomerang(ThrottlePolicy::None) => "boomerang:none".into(),
        Mechanism::Boomerang(ThrottlePolicy::NextN(n)) => format!("boomerang:{n}"),
    }
}

/// Parses a predictor token (`tage`, `gshare`, `bimodal`, `never-taken`).
pub fn parse_predictor(token: &str) -> Result<PredictorKind, SpecError> {
    Ok(match token.to_ascii_lowercase().as_str() {
        "tage" => PredictorKind::Tage,
        "gshare" => PredictorKind::Gshare,
        "bimodal" => PredictorKind::Bimodal,
        "never-taken" | "nevertaken" => PredictorKind::NeverTaken,
        _ => return Err(invalid(format!("unknown predictor `{token}`"))),
    })
}

fn predictor_token(p: PredictorKind) -> &'static str {
    match p {
        PredictorKind::Tage => "tage",
        PredictorKind::Gshare => "gshare",
        PredictorKind::Bimodal => "bimodal",
        PredictorKind::NeverTaken => "never-taken",
    }
}

impl CampaignSpec {
    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed TOML or an invalid campaign
    /// (unknown workloads/mechanisms/keys, empty axes, bad config values).
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let doc = toml::parse(text)?;
        for key in doc.root.keys() {
            match key {
                "name" | "description" | "workloads" | "mechanisms" | "predictor" | "seeds" => {}
                other => return Err(invalid(format!("unknown top-level key `{other}`"))),
            }
        }
        for (name, _) in &doc.tables {
            if name != "run" {
                return Err(invalid(format!("unknown table [{name}]")));
            }
        }
        for (name, _) in &doc.arrays {
            if name != "config" {
                return Err(invalid(format!("unknown array of tables [[{name}]]")));
            }
        }

        let name = req_str(&doc.root, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(invalid(format!(
                "campaign name `{name}` must be a non-empty [A-Za-z0-9_-]+ file stem"
            )));
        }
        let description = opt_str(&doc.root, "description")?.unwrap_or_default();

        let workload_tokens = req_str_array(&doc.root, "workloads")?;
        let workloads = if workload_tokens
            .iter()
            .any(|t| t.eq_ignore_ascii_case("all"))
        {
            if workload_tokens.len() != 1 {
                return Err(invalid(
                    "\"all\" stands for every workload and cannot be mixed with named workloads",
                ));
            }
            WorkloadKind::ALL.to_vec()
        } else {
            workload_tokens
                .iter()
                .map(|t| parse_workload(t))
                .collect::<Result<Vec<_>, _>>()?
        };
        if workloads.is_empty() {
            return Err(invalid("workloads must not be empty"));
        }
        reject_duplicates(&workloads, "workloads", |w| w.name().to_string())?;

        let mechanisms = req_str_array(&doc.root, "mechanisms")?
            .iter()
            .map(|t| parse_mechanism(t))
            .collect::<Result<Vec<_>, _>>()?;
        if mechanisms.is_empty() {
            return Err(invalid("mechanisms must not be empty"));
        }
        // Compare parsed values, not tokens: `boomerang` and `boomerang:2`
        // normalise to the same mechanism.
        reject_duplicates(&mechanisms, "mechanisms", |&m| mechanism_token(m))?;

        let predictor = match opt_str(&doc.root, "predictor")? {
            Some(tok) => parse_predictor(&tok)?,
            None => PredictorKind::Tage,
        };

        let seeds = match doc.root.get("seeds") {
            None => vec![0],
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| invalid("`seeds` must be an array of integers"))?;
                let seeds = items
                    .iter()
                    .map(|i| {
                        i.as_u64()
                            .ok_or_else(|| invalid("`seeds` must be non-negative integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if seeds.is_empty() {
                    return Err(invalid("seeds must not be empty"));
                }
                reject_duplicates(&seeds, "seeds", |s| s.to_string())?;
                seeds
            }
        };

        let run = match doc.table("run") {
            None => RunLength::paper_default(),
            Some(table) => {
                for key in table.keys() {
                    if key != "trace_blocks" && key != "warmup_blocks" {
                        return Err(invalid(format!("unknown [run] key `{key}`")));
                    }
                }
                let default = RunLength::paper_default();
                RunLength {
                    trace_blocks: opt_usize(table, "trace_blocks")?.unwrap_or(default.trace_blocks),
                    warmup_blocks: opt_usize(table, "warmup_blocks")?
                        .unwrap_or(default.warmup_blocks),
                }
            }
        };
        if run.trace_blocks == 0 {
            return Err(invalid("run.trace_blocks must be positive"));
        }

        let config_tables = doc.array("config");
        let configs = if config_tables.is_empty() {
            vec![ConfigPoint::table1("table1")]
        } else {
            config_tables
                .iter()
                .map(parse_config_point)
                .collect::<Result<Vec<_>, _>>()?
        };
        let labels: Vec<&str> = configs.iter().map(|c| c.label.as_str()).collect();
        reject_duplicates(&labels, "config label", |l| l.to_string())?;
        for point in &configs {
            point
                .build()
                .validate()
                .map_err(|e| invalid(format!("config `{}`: {e}", point.label)))?;
        }

        Ok(CampaignSpec {
            name,
            description,
            workloads,
            mechanisms,
            predictor,
            seeds,
            run,
            configs,
        })
    }

    /// Serialises the spec as TOML; `from_toml_str(to_toml_string(s)) == s`.
    pub fn to_toml_string(&self) -> String {
        let mut doc = Document::default();
        doc.root.insert("name", Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            doc.root
                .insert("description", Value::Str(self.description.clone()));
        }
        doc.root.insert(
            "workloads",
            Value::Array(
                self.workloads
                    .iter()
                    .map(|w| Value::Str(w.name().to_ascii_lowercase()))
                    .collect(),
            ),
        );
        doc.root.insert(
            "mechanisms",
            Value::Array(
                self.mechanisms
                    .iter()
                    .map(|&m| Value::Str(mechanism_token(m)))
                    .collect(),
            ),
        );
        doc.root.insert(
            "predictor",
            Value::Str(predictor_token(self.predictor).into()),
        );
        doc.root.insert(
            "seeds",
            Value::Array(self.seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
        );

        let mut run = Table::default();
        run.insert("trace_blocks", Value::Int(self.run.trace_blocks as i64));
        run.insert("warmup_blocks", Value::Int(self.run.warmup_blocks as i64));
        doc.tables.push(("run".into(), run));

        let mut configs = Vec::new();
        for point in &self.configs {
            let mut table = Table::default();
            table.insert("label", Value::Str(point.label.clone()));
            for o in &point.overrides {
                o.write(&mut table);
            }
            configs.push(table);
        }
        doc.arrays.push(("config".into(), configs));
        toml::write(&doc)
    }

    /// Total number of explicitly requested cells (before the engine adds
    /// implicit baseline reference jobs).
    pub fn cell_count(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.seeds.len() * self.mechanisms.len()
    }
}

fn parse_config_point(table: &Table) -> Result<ConfigPoint, SpecError> {
    let label = req_str(table, "label")?;
    if label.is_empty() {
        return Err(invalid("config label must not be empty"));
    }
    let mut overrides = Vec::new();
    for (key, value) in &table.entries {
        let o = match key.as_str() {
            "label" => continue,
            "btb_entries" => ConfigOverride::BtbEntries(as_u64(value, key)?),
            "btb_ways" => ConfigOverride::BtbWays(as_u64(value, key)?),
            "ftq_entries" => ConfigOverride::FtqEntries(as_u64(value, key)? as usize),
            "l1i_bytes" => ConfigOverride::L1iBytes(as_u64(value, key)?),
            "fetch_width" => ConfigOverride::FetchWidth(as_u64(value, key)?),
            "rob_entries" => ConfigOverride::RobEntries(as_u64(value, key)?),
            "memory_latency_ns" => ConfigOverride::MemoryLatencyNs(
                value
                    .as_f64()
                    .ok_or_else(|| invalid("memory_latency_ns must be a number"))?,
            ),
            "prefetch_probes_per_cycle" => {
                ConfigOverride::PrefetchProbesPerCycle(as_u64(value, key)?)
            }
            "noc" => ConfigOverride::Noc(match value {
                Value::Str(s) if s.eq_ignore_ascii_case("mesh") => NocSel::Mesh,
                Value::Str(s) if s.eq_ignore_ascii_case("crossbar") => NocSel::Crossbar,
                Value::Int(i) if *i >= 0 => NocSel::Fixed(*i as u64),
                _ => {
                    return Err(invalid(
                        "noc must be \"mesh\", \"crossbar\", or a fixed cycle count",
                    ))
                }
            }),
            "perfect_l1i" => ConfigOverride::PerfectL1i(
                value
                    .as_bool()
                    .ok_or_else(|| invalid("perfect_l1i must be a boolean"))?,
            ),
            "perfect_btb" => ConfigOverride::PerfectBtb(
                value
                    .as_bool()
                    .ok_or_else(|| invalid("perfect_btb must be a boolean"))?,
            ),
            other => {
                return Err(invalid(format!(
                    "unknown [[config]] key `{other}` for config `{label}`"
                )))
            }
        };
        overrides.push(o);
    }
    Ok(ConfigPoint { label, overrides })
}

fn as_u64(value: &Value, key: &str) -> Result<u64, SpecError> {
    value
        .as_u64()
        .ok_or_else(|| invalid(format!("`{key}` must be a non-negative integer")))
}

fn req_str(table: &Table, key: &str) -> Result<String, SpecError> {
    opt_str(table, key)?.ok_or_else(|| invalid(format!("missing required key `{key}`")))
}

fn opt_str(table: &Table, key: &str) -> Result<Option<String>, SpecError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("`{key}` must be a string"))),
    }
}

/// Rejects repeated entries in a sweep axis: each duplicate would become a
/// full redundant simulation job per matrix cell.
fn reject_duplicates<T: PartialEq>(
    items: &[T],
    axis: &str,
    describe: impl Fn(&T) -> String,
) -> Result<(), SpecError> {
    for (i, item) in items.iter().enumerate() {
        if items[..i].contains(item) {
            return Err(invalid(format!(
                "duplicate `{axis}` entry `{}`",
                describe(item)
            )));
        }
    }
    Ok(())
}

fn req_str_array(table: &Table, key: &str) -> Result<Vec<String>, SpecError> {
    let value = table
        .get(key)
        .ok_or_else(|| invalid(format!("missing required key `{key}`")))?;
    let items = value
        .as_array()
        .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("`{key}` must contain only strings")))
        })
        .collect()
}

fn opt_usize(table: &Table, key: &str) -> Result<Option<usize>, SpecError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|u| Some(u as usize))
            .ok_or_else(|| invalid(format!("`{key}` must be a non-negative integer"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "demo"
description = "two-point sweep"
workloads = ["nutch", "db2"]
mechanisms = ["fdip", "boomerang", "boomerang:none"]
predictor = "tage"
seeds = [0, 7]

[run]
trace_blocks = 4000
warmup_blocks = 800

[[config]]
label = "table1"

[[config]]
label = "llc-18"
noc = 18
btb_entries = 4096
"#;

    #[test]
    fn parses_a_full_spec() {
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.workloads, vec![WorkloadKind::Nutch, WorkloadKind::Db2]);
        assert_eq!(spec.mechanisms.len(), 3);
        assert_eq!(spec.seeds, vec![0, 7]);
        assert_eq!(spec.run.trace_blocks, 4000);
        assert_eq!(spec.configs.len(), 2);
        assert_eq!(spec.cell_count(), 2 * 2 * 2 * 3);
        let cfg = spec.configs[1].build();
        assert_eq!(cfg.btb_entries, 4096);
        assert_eq!(cfg.llc_round_trip(), 18);
    }

    #[test]
    fn round_trips_losslessly() {
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        let text = spec.to_toml_string();
        let again = CampaignSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn defaults_are_filled_in() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"d\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n",
        )
        .unwrap();
        assert_eq!(spec.workloads.len(), 6);
        assert_eq!(spec.predictor, PredictorKind::Tage);
        assert_eq!(spec.seeds, vec![0]);
        assert_eq!(spec.run, RunLength::paper_default());
        assert_eq!(spec.configs, vec![ConfigPoint::table1("table1")]);
    }

    #[test]
    fn mechanism_tokens_round_trip() {
        for token in [
            "baseline",
            "next-line",
            "dip",
            "fdip",
            "pif",
            "shift",
            "confluence",
            "boomerang",
            "boomerang:none",
            "boomerang:8",
        ] {
            let m = parse_mechanism(token).unwrap();
            assert_eq!(mechanism_token(m), token, "token {token}");
        }
        assert!(parse_mechanism("warp-drive").is_err());
        assert!(parse_mechanism("boomerang:x").is_err());
        // boomerang:2 normalises to the paper-default token.
        assert_eq!(
            mechanism_token(parse_mechanism("boomerang:2").unwrap()),
            "boomerang"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        let no_name = "workloads = [\"all\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(no_name).is_err());
        let bad_workload = "name = \"x\"\nworkloads = [\"excel\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(bad_workload).is_err());
        let unknown_key =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\nfrobs = 1\n";
        assert!(CampaignSpec::from_toml_str(unknown_key).is_err());
        let bad_cfg = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\nbtb_entries = 3000\n";
        assert!(
            CampaignSpec::from_toml_str(bad_cfg).is_err(),
            "non-power-of-two BTB must fail validation"
        );
        let dup_label = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\n\n[[config]]\nlabel = \"a\"\n";
        assert!(CampaignSpec::from_toml_str(dup_label).is_err());
    }

    #[test]
    fn rejects_duplicate_axis_entries() {
        let dup_workload =
            "name = \"x\"\nworkloads = [\"nutch\", \"nutch\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(dup_workload).is_err());
        let mixed_all = "name = \"x\"\nworkloads = [\"all\", \"nutch\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(mixed_all).is_err());
        let dup_seed =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\nseeds = [3, 3]\n";
        assert!(CampaignSpec::from_toml_str(dup_seed).is_err());
        // boomerang and boomerang:2 normalise to the same mechanism value.
        let dup_mech =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"boomerang\", \"boomerang:2\"]\n";
        let err = CampaignSpec::from_toml_str(dup_mech)
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate"), "{err}");
    }
}
