//! The declarative campaign spec: what to sweep, expressed as data.
//!
//! A campaign is the cartesian product of workloads × mechanisms ×
//! configuration points × seeds, at one run length, evaluated with one
//! direction predictor. Specs are written in a TOML subset (see
//! [`crate::toml`]) and round-trip losslessly through
//! [`CampaignSpec::from_toml_str`] / [`CampaignSpec::to_toml_string`]:
//!
//! ```toml
//! name = "figure9"
//! description = "Speedup over the no-prefetch baseline"
//! workloads = ["all"]
//! mechanisms = ["next-line", "dip", "fdip", "shift", "confluence", "boomerang"]
//! predictor = "tage"
//! seeds = [0]
//!
//! [run]
//! trace_blocks = 150000
//! warmup_blocks = 25000
//!
//! [[config]]
//! label = "table1"
//! ```
//!
//! Configuration points start from the paper's Table I
//! ([`MicroarchConfig::hpca17`]) and apply named overrides, so a spec states
//! only what it changes.
//!
//! The workload axis is not limited to the six paper presets: `[[workload]]`
//! tables define *custom* workloads that start from a `base` preset and
//! override [`WorkloadProfile`] fields, with list values sweeping the field
//! cartesianly into a family of profiles — in the
//! `[workload.terminators]`/`[workload.conditionals]`/`[workload.backend]`
//! sub-tables just like at the top level:
//!
//! ```toml
//! [[workload]]
//! label = "nutch-fp"
//! base = "nutch"
//! footprint_bytes = [262144, 1048576, 4194304]
//! service_roots = [32, 96]
//!
//! [workload.backend]
//! l1d_miss_rate = [0.02, 0.08]
//! ```
//!
//! expands into twelve workload points (`nutch-fp-262144-32-0.02`, ...),
//! each a full profile validated field-by-field at parse time.

use crate::toml::{self, Document, Table, TomlError, Value};
use boomerang::{Mechanism, RunLength, ThrottlePolicy};
use branch_pred::PredictorKind;
use sim_core::{MicroarchConfig, NocModel, PerfectComponents};
use std::fmt;
use workloads::{WorkloadKind, WorkloadProfile};

/// Interconnect selection in a spec (`noc = "mesh" | "crossbar" | <cycles>`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NocSel {
    /// The paper's 4x4 mesh (30-cycle LLC round trip).
    Mesh,
    /// The §VI-E2 crossbar (18-cycle LLC round trip).
    Crossbar,
    /// A fixed LLC round-trip latency, for sweeps.
    Fixed(u64),
}

impl NocSel {
    fn to_model(self) -> NocModel {
        match self {
            NocSel::Mesh => NocModel::Mesh4x4,
            NocSel::Crossbar => NocModel::Crossbar,
            NocSel::Fixed(lat) => NocModel::Fixed(lat),
        }
    }
}

/// One named override of the Table I configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigOverride {
    /// `btb_entries = N`
    BtbEntries(u64),
    /// `btb_ways = N`
    BtbWays(u64),
    /// `ftq_entries = N`
    FtqEntries(usize),
    /// `l1i_bytes = N`
    L1iBytes(u64),
    /// `fetch_width = N`
    FetchWidth(u64),
    /// `rob_entries = N`
    RobEntries(u64),
    /// `memory_latency_ns = X`
    MemoryLatencyNs(f64),
    /// `prefetch_probes_per_cycle = N`
    PrefetchProbesPerCycle(u64),
    /// `noc = "mesh" | "crossbar" | N`
    Noc(NocSel),
    /// `perfect_l1i = true|false`
    PerfectL1i(bool),
    /// `perfect_btb = true|false`
    PerfectBtb(bool),
}

impl ConfigOverride {
    fn apply(self, cfg: &mut MicroarchConfig) {
        match self {
            ConfigOverride::BtbEntries(v) => cfg.btb_entries = v,
            ConfigOverride::BtbWays(v) => cfg.btb_ways = v,
            ConfigOverride::FtqEntries(v) => cfg.ftq_entries = v,
            ConfigOverride::L1iBytes(v) => cfg.l1i_bytes = v,
            ConfigOverride::FetchWidth(v) => cfg.fetch_width = v,
            ConfigOverride::RobEntries(v) => cfg.rob_entries = v,
            ConfigOverride::MemoryLatencyNs(v) => cfg.memory_latency_ns = v,
            ConfigOverride::PrefetchProbesPerCycle(v) => cfg.prefetch_probes_per_cycle = v,
            ConfigOverride::Noc(sel) => cfg.noc = sel.to_model(),
            ConfigOverride::PerfectL1i(v) => cfg.perfect.perfect_l1i = v,
            ConfigOverride::PerfectBtb(v) => cfg.perfect.perfect_btb = v,
        }
    }

    fn write(self, table: &mut Table) {
        match self {
            ConfigOverride::BtbEntries(v) => table.insert("btb_entries", int_value(v)),
            ConfigOverride::BtbWays(v) => table.insert("btb_ways", int_value(v)),
            ConfigOverride::FtqEntries(v) => table.insert("ftq_entries", int_value(v as u64)),
            ConfigOverride::L1iBytes(v) => table.insert("l1i_bytes", int_value(v)),
            ConfigOverride::FetchWidth(v) => table.insert("fetch_width", int_value(v)),
            ConfigOverride::RobEntries(v) => table.insert("rob_entries", int_value(v)),
            ConfigOverride::MemoryLatencyNs(v) => {
                table.insert("memory_latency_ns", Value::Float(v))
            }
            ConfigOverride::PrefetchProbesPerCycle(v) => {
                table.insert("prefetch_probes_per_cycle", int_value(v))
            }
            ConfigOverride::Noc(NocSel::Mesh) => table.insert("noc", Value::Str("mesh".into())),
            ConfigOverride::Noc(NocSel::Crossbar) => {
                table.insert("noc", Value::Str("crossbar".into()))
            }
            ConfigOverride::Noc(NocSel::Fixed(lat)) => table.insert("noc", int_value(lat)),
            ConfigOverride::PerfectL1i(v) => table.insert("perfect_l1i", Value::Bool(v)),
            ConfigOverride::PerfectBtb(v) => table.insert("perfect_btb", Value::Bool(v)),
        }
    }
}

/// One configuration point of the sweep: a label plus Table I overrides.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigPoint {
    /// Label used in reports (e.g. `"table1"`, `"llc-18"`).
    pub label: String,
    /// Overrides applied on top of [`MicroarchConfig::hpca17`], in order.
    pub overrides: Vec<ConfigOverride>,
}

impl ConfigPoint {
    /// The baseline Table I point with no overrides.
    pub fn table1(label: impl Into<String>) -> Self {
        ConfigPoint {
            label: label.into(),
            overrides: Vec::new(),
        }
    }

    /// Materialises the [`MicroarchConfig`] this point describes.
    pub fn build(&self) -> MicroarchConfig {
        let mut cfg = MicroarchConfig::hpca17();
        cfg.perfect = PerfectComponents::none();
        for o in &self.overrides {
            o.apply(&mut cfg);
        }
        cfg
    }
}

/// One resolved point of the workload axis: a report label plus the full
/// profile the engine generates for it.
///
/// Points come from two spec surfaces: the classic `workloads = [...]` name
/// array (each name resolves to its paper preset with the paper label) and
/// `[[workload]]` tables, which start from a `base` preset, apply profile
/// overrides, and may expand into several points when an override value is a
/// list (see [`CampaignSpec::from_toml_str`]).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadPoint {
    /// Label used in reports. Paper presets use the paper name ("Nutch");
    /// list-expanded custom entries get one `-<value>` suffix per listed
    /// override, in document order.
    pub label: String,
    /// The fully resolved profile.
    pub profile: WorkloadProfile,
}

impl WorkloadPoint {
    /// The unmodified paper preset for `kind`, labelled with the paper name.
    pub fn preset(kind: WorkloadKind) -> Self {
        WorkloadPoint {
            label: kind.name().to_string(),
            profile: kind.profile(),
        }
    }

    /// Whether this point is byte-for-byte a paper preset (label and
    /// profile). Such points serialise back into the `workloads` name array.
    pub fn is_preset(&self) -> bool {
        self.label == self.profile.kind.name() && self.profile == self.profile.kind.profile()
    }
}

/// Upper bound on resolved workload-axis points, so a typo'd override list
/// cannot expand into an accidental multi-gigabyte generation phase.
pub const MAX_WORKLOAD_POINTS: usize = 512;

/// A fully parsed campaign description.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name; also the stem of the report files.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The resolved workload axis, in canonical order: named paper presets
    /// first, then `[[workload]]` points in document (and list-expansion)
    /// order.
    pub workloads: Vec<WorkloadPoint>,
    /// Mechanisms to sweep.
    pub mechanisms: Vec<Mechanism>,
    /// Direction predictor for every job.
    pub predictor: PredictorKind,
    /// Seed offsets; `0` keeps each workload's paper seed, other values
    /// re-derive layout and trace deterministically (see
    /// [`crate::engine::derive_seed`]).
    pub seeds: Vec<u64>,
    /// Simulation length for every job.
    pub run: RunLength,
    /// Configuration points.
    pub configs: Vec<ConfigPoint>,
}

/// Error produced while interpreting a spec.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The TOML layer rejected the document.
    Toml(TomlError),
    /// The document parsed but does not describe a valid campaign.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Toml(e) => write!(f, "{e}"),
            SpecError::Invalid(msg) => write!(f, "invalid campaign spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError::Toml(e)
    }
}

fn invalid(msg: impl Into<String>) -> SpecError {
    SpecError::Invalid(msg.into())
}

/// Parses a workload token (paper name, case-insensitive).
pub fn parse_workload(token: &str) -> Result<WorkloadKind, SpecError> {
    let t = token.to_ascii_lowercase();
    WorkloadKind::ALL
        .iter()
        .copied()
        .find(|k| k.name().to_ascii_lowercase() == t)
        .ok_or_else(|| {
            invalid(format!(
                "unknown workload `{token}` (expected one of {}, or \"all\")",
                WorkloadKind::ALL.map(|k| k.name()).join(", ")
            ))
        })
}

/// Parses a mechanism token: `baseline`, `next-line`, `dip`, `fdip`, `pif`,
/// `shift`, `confluence`, `boomerang`, `boomerang:none`, or `boomerang:N`
/// (next-N-blocks throttle).
pub fn parse_mechanism(token: &str) -> Result<Mechanism, SpecError> {
    let t = token.to_ascii_lowercase();
    Ok(match t.as_str() {
        "baseline" => Mechanism::Baseline,
        "next-line" | "nextline" => Mechanism::NextLine,
        "dip" => Mechanism::Dip,
        "fdip" => Mechanism::Fdip,
        "pif" => Mechanism::Pif,
        "shift" => Mechanism::Shift,
        "confluence" => Mechanism::Confluence,
        "boomerang" => Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT),
        _ => {
            if let Some(policy) = t.strip_prefix("boomerang:") {
                let policy = match policy {
                    "none" => ThrottlePolicy::None,
                    n => ThrottlePolicy::NextN(n.parse::<u64>().map_err(|_| {
                        invalid(format!(
                            "bad boomerang throttle `{token}` (use boomerang:none or boomerang:N)"
                        ))
                    })?),
                };
                Mechanism::Boomerang(policy)
            } else {
                return Err(invalid(format!("unknown mechanism `{token}`")));
            }
        }
    })
}

/// The canonical spec token for a mechanism (inverse of [`parse_mechanism`]).
pub fn mechanism_token(m: Mechanism) -> String {
    match m {
        Mechanism::Baseline => "baseline".into(),
        Mechanism::NextLine => "next-line".into(),
        Mechanism::Dip => "dip".into(),
        Mechanism::Fdip => "fdip".into(),
        Mechanism::Pif => "pif".into(),
        Mechanism::Shift => "shift".into(),
        Mechanism::Confluence => "confluence".into(),
        Mechanism::Boomerang(ThrottlePolicy::PAPER_DEFAULT) => "boomerang".into(),
        Mechanism::Boomerang(ThrottlePolicy::None) => "boomerang:none".into(),
        Mechanism::Boomerang(ThrottlePolicy::NextN(n)) => format!("boomerang:{n}"),
    }
}

/// Parses a predictor token (`tage`, `gshare`, `bimodal`, `never-taken`).
pub fn parse_predictor(token: &str) -> Result<PredictorKind, SpecError> {
    Ok(match token.to_ascii_lowercase().as_str() {
        "tage" => PredictorKind::Tage,
        "gshare" => PredictorKind::Gshare,
        "bimodal" => PredictorKind::Bimodal,
        "never-taken" | "nevertaken" => PredictorKind::NeverTaken,
        _ => return Err(invalid(format!("unknown predictor `{token}`"))),
    })
}

fn predictor_token(p: PredictorKind) -> &'static str {
    match p {
        PredictorKind::Tage => "tage",
        PredictorKind::Gshare => "gshare",
        PredictorKind::Bimodal => "bimodal",
        PredictorKind::NeverTaken => "never-taken",
    }
}

impl CampaignSpec {
    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed TOML or an invalid campaign
    /// (unknown workloads/mechanisms/keys, empty axes, bad config values).
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let doc = toml::parse(text)?;
        for key in doc.root.keys() {
            match key {
                "name" | "description" | "workloads" | "mechanisms" | "predictor" | "seeds" => {}
                other => return Err(invalid(format!("unknown top-level key `{other}`"))),
            }
        }
        for (name, _) in &doc.tables {
            if name != "run" {
                return Err(invalid(format!("unknown table [{name}]")));
            }
        }
        for (name, _) in &doc.arrays {
            if name != "config" && name != "workload" {
                return Err(invalid(format!("unknown array of tables [[{name}]]")));
            }
        }

        let name = req_str(&doc.root, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(invalid(format!(
                "campaign name `{name}` must be a non-empty [A-Za-z0-9_-]+ file stem"
            )));
        }
        let description = opt_str(&doc.root, "description")?.unwrap_or_default();

        let workload_tables = doc.array("workload");
        let workload_tokens = match doc.root.get("workloads") {
            Some(_) => req_str_array(&doc.root, "workloads")?,
            // The name array may be omitted when the spec defines its own
            // `[[workload]]` axis.
            None if !workload_tables.is_empty() => Vec::new(),
            None => return Err(invalid("missing required key `workloads`")),
        };
        let named = if workload_tokens
            .iter()
            .any(|t| t.eq_ignore_ascii_case("all"))
        {
            if workload_tokens.len() != 1 {
                return Err(invalid(
                    "\"all\" stands for every workload and cannot be mixed with named workloads",
                ));
            }
            WorkloadKind::ALL.to_vec()
        } else {
            workload_tokens
                .iter()
                .map(|t| parse_workload(t))
                .collect::<Result<Vec<_>, _>>()?
        };
        reject_duplicates(&named, "workloads", |w| w.name().to_string())?;
        let mut workloads: Vec<WorkloadPoint> =
            named.into_iter().map(WorkloadPoint::preset).collect();
        for table in workload_tables {
            workloads.extend(parse_workload_points(table)?);
        }
        if workloads.is_empty() {
            return Err(invalid("workloads must not be empty"));
        }
        if workloads.len() > MAX_WORKLOAD_POINTS {
            return Err(invalid(format!(
                "workload axis expands to {} points (max {MAX_WORKLOAD_POINTS})",
                workloads.len()
            )));
        }
        reject_duplicates(
            &workloads
                .iter()
                .map(|w| w.label.to_ascii_lowercase())
                .collect::<Vec<_>>(),
            "workload label",
            |l| l.clone(),
        )?;
        for point in &workloads {
            point
                .profile
                .validate()
                .map_err(|e| invalid(format!("workload `{}`: {e}", point.label)))?;
        }

        let mechanisms = req_str_array(&doc.root, "mechanisms")?
            .iter()
            .map(|t| parse_mechanism(t))
            .collect::<Result<Vec<_>, _>>()?;
        if mechanisms.is_empty() {
            return Err(invalid("mechanisms must not be empty"));
        }
        // Compare parsed values, not tokens: `boomerang` and `boomerang:2`
        // normalise to the same mechanism.
        reject_duplicates(&mechanisms, "mechanisms", |&m| mechanism_token(m))?;

        let predictor = match opt_str(&doc.root, "predictor")? {
            Some(tok) => parse_predictor(&tok)?,
            None => PredictorKind::Tage,
        };

        let seeds = match doc.root.get("seeds") {
            None => vec![0],
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| invalid("`seeds` must be an array of integers"))?;
                let seeds = items
                    .iter()
                    .map(|i| {
                        i.as_u64()
                            .ok_or_else(|| invalid("`seeds` must be non-negative integers"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if seeds.is_empty() {
                    return Err(invalid("seeds must not be empty"));
                }
                reject_duplicates(&seeds, "seeds", |s| s.to_string())?;
                seeds
            }
        };

        let run = match doc.table("run") {
            None => RunLength::paper_default(),
            Some(table) => {
                for key in table.keys() {
                    if key != "trace_blocks" && key != "warmup_blocks" {
                        return Err(invalid(format!("unknown [run] key `{key}`")));
                    }
                }
                if let Some((sub, _)) = table.subtables.first() {
                    return Err(invalid(format!("unknown sub-table [run.{sub}]")));
                }
                let default = RunLength::paper_default();
                RunLength {
                    trace_blocks: opt_usize(table, "trace_blocks")?.unwrap_or(default.trace_blocks),
                    warmup_blocks: opt_usize(table, "warmup_blocks")?
                        .unwrap_or(default.warmup_blocks),
                }
            }
        };
        if run.trace_blocks == 0 {
            return Err(invalid("run.trace_blocks must be positive"));
        }

        let config_tables = doc.array("config");
        let configs = if config_tables.is_empty() {
            vec![ConfigPoint::table1("table1")]
        } else {
            config_tables
                .iter()
                .map(parse_config_point)
                .collect::<Result<Vec<_>, _>>()?
        };
        let labels: Vec<&str> = configs.iter().map(|c| c.label.as_str()).collect();
        reject_duplicates(&labels, "config label", |l| l.to_string())?;
        for point in &configs {
            point
                .build()
                .validate()
                .map_err(|e| invalid(format!("config `{}`: {e}", point.label)))?;
        }

        Ok(CampaignSpec {
            name,
            description,
            workloads,
            mechanisms,
            predictor,
            seeds,
            run,
            configs,
        })
    }

    /// Serialises the spec as TOML; `from_toml_str(to_toml_string(s)) == s`.
    pub fn to_toml_string(&self) -> String {
        let mut doc = Document::default();
        doc.root.insert("name", Value::Str(self.name.clone()));
        if !self.description.is_empty() {
            doc.root
                .insert("description", Value::Str(self.description.clone()));
        }
        // The longest prefix of unmodified paper presets serialises as the
        // classic name array; every later point becomes an explicit
        // `[[workload]]` table (already expanded: one scalar table per
        // point). Parsing puts named workloads before `[[workload]]` points,
        // so this is the identity on parsed specs.
        let preset_prefix = self.workloads.iter().take_while(|w| w.is_preset()).count();
        if preset_prefix > 0 {
            doc.root.insert(
                "workloads",
                Value::Array(
                    self.workloads[..preset_prefix]
                        .iter()
                        .map(|w| Value::Str(w.profile.kind.name().to_ascii_lowercase()))
                        .collect(),
                ),
            );
        }
        doc.root.insert(
            "mechanisms",
            Value::Array(
                self.mechanisms
                    .iter()
                    .map(|&m| Value::Str(mechanism_token(m)))
                    .collect(),
            ),
        );
        doc.root.insert(
            "predictor",
            Value::Str(predictor_token(self.predictor).into()),
        );
        doc.root.insert(
            "seeds",
            Value::Array(self.seeds.iter().map(|&s| int_value(s)).collect()),
        );

        let mut run = Table::default();
        run.insert("trace_blocks", int_value(self.run.trace_blocks as u64));
        run.insert("warmup_blocks", int_value(self.run.warmup_blocks as u64));
        doc.tables.push(("run".into(), run));

        let mut configs = Vec::new();
        for point in &self.configs {
            let mut table = Table::default();
            table.insert("label", Value::Str(point.label.clone()));
            for o in &point.overrides {
                o.write(&mut table);
            }
            configs.push(table);
        }
        doc.arrays.push(("config".into(), configs));

        let custom: Vec<Table> = self.workloads[preset_prefix..]
            .iter()
            .map(write_workload_point)
            .collect();
        if !custom.is_empty() {
            doc.arrays.push(("workload".into(), custom));
        }
        toml::write(&doc)
    }

    /// Total number of explicitly requested cells (before the engine adds
    /// implicit baseline reference jobs).
    pub fn cell_count(&self) -> usize {
        self.configs.len() * self.workloads.len() * self.seeds.len() * self.mechanisms.len()
    }
}

fn parse_config_point(table: &Table) -> Result<ConfigPoint, SpecError> {
    let label = req_str(table, "label")?;
    if label.is_empty() {
        return Err(invalid("config label must not be empty"));
    }
    if let Some((sub, _)) = table.subtables.first() {
        return Err(invalid(format!(
            "unknown sub-table [config.{sub}] for config `{label}` (sub-tables only apply to [[workload]])"
        )));
    }
    let mut overrides = Vec::new();
    for (key, value) in &table.entries {
        let o = match key.as_str() {
            "label" => continue,
            "btb_entries" => ConfigOverride::BtbEntries(as_u64(value, key)?),
            "btb_ways" => ConfigOverride::BtbWays(as_u64(value, key)?),
            "ftq_entries" => ConfigOverride::FtqEntries(as_usize(value, key)?),
            "l1i_bytes" => ConfigOverride::L1iBytes(as_u64(value, key)?),
            "fetch_width" => ConfigOverride::FetchWidth(as_u64(value, key)?),
            "rob_entries" => ConfigOverride::RobEntries(as_u64(value, key)?),
            "memory_latency_ns" => ConfigOverride::MemoryLatencyNs(
                value
                    .as_f64()
                    .ok_or_else(|| invalid("memory_latency_ns must be a number"))?,
            ),
            "prefetch_probes_per_cycle" => {
                ConfigOverride::PrefetchProbesPerCycle(as_u64(value, key)?)
            }
            "noc" => ConfigOverride::Noc(match value {
                Value::Str(s) if s.eq_ignore_ascii_case("mesh") => NocSel::Mesh,
                Value::Str(s) if s.eq_ignore_ascii_case("crossbar") => NocSel::Crossbar,
                Value::Int(i) if *i >= 0 => NocSel::Fixed(*i as u64),
                _ => {
                    return Err(invalid(
                        "noc must be \"mesh\", \"crossbar\", or a fixed cycle count",
                    ))
                }
            }),
            "perfect_l1i" => ConfigOverride::PerfectL1i(
                value
                    .as_bool()
                    .ok_or_else(|| invalid("perfect_l1i must be a boolean"))?,
            ),
            "perfect_btb" => ConfigOverride::PerfectBtb(
                value
                    .as_bool()
                    .ok_or_else(|| invalid("perfect_btb must be a boolean"))?,
            ),
            other => {
                return Err(invalid(format!(
                    "unknown [[config]] key `{other}` for config `{label}`"
                )))
            }
        };
        overrides.push(o);
    }
    Ok(ConfigPoint { label, overrides })
}

/// Parses one `[[workload]]` table into its resolved points.
///
/// The table names a `base` preset and applies profile overrides on top of
/// it. A scalar override sets the field; a *list* override sweeps it, with
/// every listed key expanding cartesianly (in document order) into one point
/// per combination. Expanded points get a `-<value>` label suffix per listed
/// key, so `label = "fp"` with `footprint_bytes = [262144, 1048576]` and
/// `service_roots = [32, 96]` yields `fp-262144-32`, `fp-262144-96`,
/// `fp-1048576-32`, `fp-1048576-96`.
///
/// The `[workload.terminators]` / `[workload.conditionals]` /
/// `[workload.backend]` sub-table fields sweep the same way (their axes are
/// named by dotted path, e.g. `backend.l1d_miss_rate = [0.02, 0.08]`), and
/// combine cartesianly with any top-level lists — sub-table axes vary
/// fastest, matching document order. Parse-time validation errors name the
/// sub-table field (`workload `x`: `backend.l1d_miss_rate` must be a
/// number`).
fn parse_workload_points(table: &Table) -> Result<Vec<WorkloadPoint>, SpecError> {
    let label = req_str(table, "label")?;
    if label.is_empty() {
        return Err(invalid("workload label must not be empty"));
    }
    let context = |msg: String| invalid(format!("workload `{label}`: {msg}"));
    let base_names = || {
        WorkloadKind::ALL
            .map(|k| k.name().to_ascii_lowercase())
            .join(", ")
    };
    let base_token = match table.get("base") {
        None => {
            return Err(context(format!(
                "missing required key `base` (one of {})",
                base_names()
            )))
        }
        Some(v) => v
            .as_str()
            .ok_or_else(|| context("`base` must be a string naming a paper workload".into()))?,
    };
    // Not parse_workload: its error suggests "all", which `base` (one
    // concrete preset) does not accept, and lacks the label context.
    let base = WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(base_token))
        .ok_or_else(|| {
            context(format!(
                "unknown base workload `{base_token}` (expected one of {})",
                base_names()
            ))
        })?;
    let mut profile = base.profile();

    // Scalar overrides apply once; list overrides are collected as sweep
    // axes, in document order.
    let mut sweeps: Vec<(String, Vec<Value>)> = Vec::new();
    let mut seen_utility = false;
    for (key, value) in &table.entries {
        let canonical = match key.as_str() {
            "label" | "base" => continue,
            "description" => {
                profile.description = value
                    .as_str()
                    .ok_or_else(|| context("`description` must be a string".into()))?
                    .to_string();
                continue;
            }
            // Deprecated alias of `utility_fraction` (the field's old,
            // misleading name).
            "hot_function_fraction" | "utility_fraction" => {
                if seen_utility {
                    return Err(context(
                        "give either `utility_fraction` or its deprecated alias \
                         `hot_function_fraction`, not both"
                            .into(),
                    ));
                }
                seen_utility = true;
                "utility_fraction"
            }
            k if WORKLOAD_OVERRIDE_KEYS.contains(&k) => k,
            other => {
                return Err(context(format!(
                    "unknown [[workload]] key `{other}` (overridable fields: {})",
                    WORKLOAD_OVERRIDE_KEYS.join(", ")
                )))
            }
        };
        apply_or_sweep(&mut profile, &mut sweeps, key, canonical, value).map_err(context)?;
    }
    for (name, sub) in &table.subtables {
        if !matches!(name.as_str(), "terminators" | "conditionals" | "backend") {
            return Err(context(format!(
                "unknown sub-table [workload.{name}] (expected terminators, conditionals or backend)"
            )));
        }
        for (key, value) in &sub.entries {
            // Sub-table fields sweep exactly like top-level keys; the axis
            // is named by its dotted path (e.g. `backend.l1d_miss_rate`).
            let dotted = format!("{name}.{key}");
            apply_or_sweep(&mut profile, &mut sweeps, &dotted, &dotted, value).map_err(context)?;
        }
    }

    // Cap the cartesian size *before* materialising any points, so a typo'd
    // spec (six 40-value lists = 4e9 combinations) is an error, not an OOM.
    let combinations = sweeps
        .iter()
        .try_fold(1usize, |acc, (_, values)| acc.checked_mul(values.len()))
        .filter(|&n| n <= MAX_WORKLOAD_POINTS);
    if combinations.is_none() {
        return Err(context(format!(
            "override lists expand to {} points (max {MAX_WORKLOAD_POINTS})",
            sweeps
                .iter()
                .map(|(_, values)| values.len().to_string())
                .collect::<Vec<_>>()
                .join(" x ")
        )));
    }

    // Cartesian expansion of the list overrides: earlier keys vary slowest.
    let mut points = vec![WorkloadPoint {
        label: label.clone(),
        profile,
    }];
    for (key, values) in &sweeps {
        let mut expanded = Vec::with_capacity(points.len() * values.len());
        for point in &points {
            for value in values {
                let mut profile = point.profile.clone();
                apply_workload_override(&mut profile, key, value).map_err(context)?;
                expanded.push(WorkloadPoint {
                    label: format!("{}-{}", point.label, label_fragment(value)),
                    profile,
                });
            }
        }
        points = expanded;
    }
    Ok(points)
}

/// Interprets one `[[workload]]` override value — shared by the top-level
/// key loop and the sub-table loops so the list-vs-scalar rules cannot
/// drift: a *list* registers a sweep axis (non-empty, duplicate-free), a
/// scalar applies to the profile immediately. `shown` is the key as the
/// spec author wrote it (used in error messages), `canonical` the
/// normalised field/axis name (they differ only for the deprecated
/// top-level `hot_function_fraction` alias). Errors are plain messages; the
/// caller adds the workload-label context.
fn apply_or_sweep(
    profile: &mut WorkloadProfile,
    sweeps: &mut Vec<(String, Vec<Value>)>,
    shown: &str,
    canonical: &str,
    value: &Value,
) -> Result<(), String> {
    match value {
        Value::Array(items) => {
            if items.is_empty() {
                return Err(format!("override list `{shown}` must not be empty"));
            }
            reject_duplicates(items, shown, label_fragment).map_err(|e| match e {
                SpecError::Invalid(msg) => msg,
                other => other.to_string(),
            })?;
            sweeps.push((canonical.to_string(), items.clone()));
            Ok(())
        }
        scalar => apply_workload_override(profile, canonical, scalar),
    }
}

/// Top-level `[[workload]]` keys that override a scalar profile field (the
/// canonical spellings; `hot_function_fraction` is accepted as a deprecated
/// alias of `utility_fraction`).
const WORKLOAD_OVERRIDE_KEYS: [&str; 10] = [
    "footprint_bytes",
    "service_roots",
    "max_call_depth",
    "seed",
    "mean_block_instructions",
    "mean_function_blocks",
    "cond_target_mean_lines",
    "cond_backward_fraction",
    "hot_callee_fraction",
    "utility_fraction",
];

/// Applies one scalar override (canonical key) to a profile. Errors are
/// plain messages; the caller adds the workload-label context.
fn apply_workload_override(
    profile: &mut WorkloadProfile,
    key: &str,
    value: &Value,
) -> Result<(), String> {
    let integer = || {
        value
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
    };
    let index = || {
        integer().and_then(|v| {
            usize::try_from(v)
                .map_err(|_| format!("`{key}` value {v} exceeds this platform's usize range"))
        })
    };
    let number = || {
        value
            .as_f64()
            .ok_or_else(|| format!("`{key}` must be a number"))
    };
    match key {
        "footprint_bytes" => profile.footprint_bytes = integer()?,
        "service_roots" => profile.service_roots = index()?,
        "max_call_depth" => profile.max_call_depth = index()?,
        "seed" => profile.seed = integer()?,
        "mean_block_instructions" => profile.mean_block_instructions = number()?,
        "mean_function_blocks" => profile.mean_function_blocks = number()?,
        "cond_target_mean_lines" => profile.cond_target_mean_lines = number()?,
        "cond_backward_fraction" => profile.cond_backward_fraction = number()?,
        "hot_callee_fraction" => profile.hot_callee_fraction = number()?,
        "utility_fraction" => profile.utility_fraction = number()?,
        "terminators.call" => profile.terminators.call = number()?,
        "terminators.indirect_call" => profile.terminators.indirect_call = number()?,
        "terminators.jump" => profile.terminators.jump = number()?,
        "terminators.indirect_jump" => profile.terminators.indirect_jump = number()?,
        "terminators.early_return" => profile.terminators.early_return = number()?,
        "conditionals.loop_backedge" => profile.conditionals.loop_backedge = number()?,
        "conditionals.pattern" => profile.conditionals.pattern = number()?,
        "conditionals.data_dependent" => profile.conditionals.data_dependent = number()?,
        "conditionals.bias_mean" => profile.conditionals.bias_mean = number()?,
        "conditionals.mean_trip_count" => profile.conditionals.mean_trip_count = number()?,
        "backend.load_fraction" => profile.backend.load_fraction = number()?,
        "backend.l1d_miss_rate" => profile.backend.l1d_miss_rate = number()?,
        "backend.llc_miss_rate" => profile.backend.llc_miss_rate = number()?,
        "backend.base_latency" => profile.backend.base_latency = integer()?,
        other => return Err(format!("unknown workload override `{other}`")),
    }
    Ok(())
}

/// The label suffix a swept override value contributes (`262144`, `0.3`).
fn label_fragment(value: &Value) -> String {
    match value {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Array(_) => "list".to_string(),
    }
}

fn as_u64(value: &Value, key: &str) -> Result<u64, SpecError> {
    value
        .as_u64()
        .ok_or_else(|| invalid(format!("`{key}` must be a non-negative integer")))
}

fn req_str(table: &Table, key: &str) -> Result<String, SpecError> {
    opt_str(table, key)?.ok_or_else(|| invalid(format!("missing required key `{key}`")))
}

fn opt_str(table: &Table, key: &str) -> Result<Option<String>, SpecError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| invalid(format!("`{key}` must be a string"))),
    }
}

/// Rejects repeated entries in a sweep axis: each duplicate would become a
/// full redundant simulation job per matrix cell.
fn reject_duplicates<T: PartialEq>(
    items: &[T],
    axis: &str,
    describe: impl Fn(&T) -> String,
) -> Result<(), SpecError> {
    for (i, item) in items.iter().enumerate() {
        if items[..i].contains(item) {
            return Err(invalid(format!(
                "duplicate `{axis}` entry `{}`",
                describe(item)
            )));
        }
    }
    Ok(())
}

fn req_str_array(table: &Table, key: &str) -> Result<Vec<String>, SpecError> {
    let value = table
        .get(key)
        .ok_or_else(|| invalid(format!("missing required key `{key}`")))?;
    let items = value
        .as_array()
        .ok_or_else(|| invalid(format!("`{key}` must be an array of strings")))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| invalid(format!("`{key}` must contain only strings")))
        })
        .collect()
}

fn opt_usize(table: &Table, key: &str) -> Result<Option<usize>, SpecError> {
    match table.get(key) {
        None => Ok(None),
        Some(v) => as_usize(v, key).map(Some),
    }
}

/// Parses a non-negative integer that must also fit this platform's `usize`.
/// On 32-bit targets a plain `as usize` cast would silently truncate; this
/// rejects the value instead.
fn as_usize(value: &Value, key: &str) -> Result<usize, SpecError> {
    let v = as_u64(value, key)?;
    usize::try_from(v).map_err(|_| {
        invalid(format!(
            "`{key}` value {v} exceeds this platform's usize range"
        ))
    })
}

/// A TOML integer value.
///
/// # Panics
///
/// Panics if the value exceeds `i64::MAX`. Parsing rejects such values (the
/// TOML layer only produces non-negative `i64`s), so this can only trigger
/// on a hand-constructed spec — where the old silent `as i64` wrap would
/// have emitted a negative number and corrupted the round-trip guarantee.
fn int_value(v: u64) -> Value {
    Value::Int(i64::try_from(v).expect("campaign spec integer exceeds TOML's i64 range"))
}

/// Serialises one custom workload point as a scalar `[[workload]]` table:
/// `label`, `base`, and exactly the fields that differ from the base preset,
/// with sub-struct fields in their `[workload.*]` sub-tables.
fn write_workload_point(point: &WorkloadPoint) -> Table {
    let base = point.profile.kind.profile();
    let p = &point.profile;
    let mut table = Table::default();
    table.insert("label", Value::Str(point.label.clone()));
    table.insert("base", Value::Str(p.kind.name().to_ascii_lowercase()));
    if p.description != base.description {
        table.insert("description", Value::Str(p.description.clone()));
    }
    if p.seed != base.seed {
        table.insert("seed", int_value(p.seed));
    }
    if p.footprint_bytes != base.footprint_bytes {
        table.insert("footprint_bytes", int_value(p.footprint_bytes));
    }
    if p.service_roots != base.service_roots {
        table.insert("service_roots", int_value(p.service_roots as u64));
    }
    if p.max_call_depth != base.max_call_depth {
        table.insert("max_call_depth", int_value(p.max_call_depth as u64));
    }
    let floats = [
        (
            "mean_block_instructions",
            p.mean_block_instructions,
            base.mean_block_instructions,
        ),
        (
            "mean_function_blocks",
            p.mean_function_blocks,
            base.mean_function_blocks,
        ),
        (
            "cond_target_mean_lines",
            p.cond_target_mean_lines,
            base.cond_target_mean_lines,
        ),
        (
            "cond_backward_fraction",
            p.cond_backward_fraction,
            base.cond_backward_fraction,
        ),
        (
            "hot_callee_fraction",
            p.hot_callee_fraction,
            base.hot_callee_fraction,
        ),
        (
            "utility_fraction",
            p.utility_fraction,
            base.utility_fraction,
        ),
    ];
    for (key, value, base_value) in floats {
        if value != base_value {
            table.insert(key, Value::Float(value));
        }
    }

    if p.terminators != base.terminators {
        let sub = table.insert_subtable("terminators");
        let fields = [
            ("call", p.terminators.call, base.terminators.call),
            (
                "indirect_call",
                p.terminators.indirect_call,
                base.terminators.indirect_call,
            ),
            ("jump", p.terminators.jump, base.terminators.jump),
            (
                "indirect_jump",
                p.terminators.indirect_jump,
                base.terminators.indirect_jump,
            ),
            (
                "early_return",
                p.terminators.early_return,
                base.terminators.early_return,
            ),
        ];
        for (key, value, base_value) in fields {
            if value != base_value {
                sub.insert(key, Value::Float(value));
            }
        }
    }
    if p.conditionals != base.conditionals {
        let sub = table.insert_subtable("conditionals");
        let fields = [
            (
                "loop_backedge",
                p.conditionals.loop_backedge,
                base.conditionals.loop_backedge,
            ),
            ("pattern", p.conditionals.pattern, base.conditionals.pattern),
            (
                "data_dependent",
                p.conditionals.data_dependent,
                base.conditionals.data_dependent,
            ),
            (
                "bias_mean",
                p.conditionals.bias_mean,
                base.conditionals.bias_mean,
            ),
            (
                "mean_trip_count",
                p.conditionals.mean_trip_count,
                base.conditionals.mean_trip_count,
            ),
        ];
        for (key, value, base_value) in fields {
            if value != base_value {
                sub.insert(key, Value::Float(value));
            }
        }
    }
    if p.backend != base.backend {
        let sub = table.insert_subtable("backend");
        let fields = [
            (
                "load_fraction",
                p.backend.load_fraction,
                base.backend.load_fraction,
            ),
            (
                "l1d_miss_rate",
                p.backend.l1d_miss_rate,
                base.backend.l1d_miss_rate,
            ),
            (
                "llc_miss_rate",
                p.backend.llc_miss_rate,
                base.backend.llc_miss_rate,
            ),
        ];
        for (key, value, base_value) in fields {
            if value != base_value {
                sub.insert(key, Value::Float(value));
            }
        }
        if p.backend.base_latency != base.backend.base_latency {
            sub.insert("base_latency", int_value(p.backend.base_latency));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "demo"
description = "two-point sweep"
workloads = ["nutch", "db2"]
mechanisms = ["fdip", "boomerang", "boomerang:none"]
predictor = "tage"
seeds = [0, 7]

[run]
trace_blocks = 4000
warmup_blocks = 800

[[config]]
label = "table1"

[[config]]
label = "llc-18"
noc = 18
btb_entries = 4096
"#;

    #[test]
    fn parses_a_full_spec() {
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(
            spec.workloads,
            vec![
                WorkloadPoint::preset(WorkloadKind::Nutch),
                WorkloadPoint::preset(WorkloadKind::Db2)
            ]
        );
        assert_eq!(spec.mechanisms.len(), 3);
        assert_eq!(spec.seeds, vec![0, 7]);
        assert_eq!(spec.run.trace_blocks, 4000);
        assert_eq!(spec.configs.len(), 2);
        assert_eq!(spec.cell_count(), 2 * 2 * 2 * 3);
        let cfg = spec.configs[1].build();
        assert_eq!(cfg.btb_entries, 4096);
        assert_eq!(cfg.llc_round_trip(), 18);
    }

    #[test]
    fn round_trips_losslessly() {
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        let text = spec.to_toml_string();
        let again = CampaignSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn defaults_are_filled_in() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"d\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n",
        )
        .unwrap();
        assert_eq!(spec.workloads.len(), 6);
        assert_eq!(spec.predictor, PredictorKind::Tage);
        assert_eq!(spec.seeds, vec![0]);
        assert_eq!(spec.run, RunLength::paper_default());
        assert_eq!(spec.configs, vec![ConfigPoint::table1("table1")]);
    }

    #[test]
    fn mechanism_tokens_round_trip() {
        for token in [
            "baseline",
            "next-line",
            "dip",
            "fdip",
            "pif",
            "shift",
            "confluence",
            "boomerang",
            "boomerang:none",
            "boomerang:8",
        ] {
            let m = parse_mechanism(token).unwrap();
            assert_eq!(mechanism_token(m), token, "token {token}");
        }
        assert!(parse_mechanism("warp-drive").is_err());
        assert!(parse_mechanism("boomerang:x").is_err());
        // boomerang:2 normalises to the paper-default token.
        assert_eq!(
            mechanism_token(parse_mechanism("boomerang:2").unwrap()),
            "boomerang"
        );
    }

    #[test]
    fn rejects_bad_specs() {
        let no_name = "workloads = [\"all\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(no_name).is_err());
        let bad_workload = "name = \"x\"\nworkloads = [\"excel\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(bad_workload).is_err());
        let unknown_key =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\nfrobs = 1\n";
        assert!(CampaignSpec::from_toml_str(unknown_key).is_err());
        let bad_cfg = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\nbtb_entries = 3000\n";
        assert!(
            CampaignSpec::from_toml_str(bad_cfg).is_err(),
            "non-power-of-two BTB must fail validation"
        );
        let dup_label = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\n\n[[config]]\nlabel = \"a\"\n";
        assert!(CampaignSpec::from_toml_str(dup_label).is_err());
    }

    #[test]
    fn rejects_subtables_on_run_and_config() {
        // Sub-tables are a [[workload]]-only construct; attaching one to
        // [run] or a [[config]] must be an error, not silently dropped.
        let run_sub = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = 2000\n\n[run.extra]\nfoo = 1\n";
        let err = CampaignSpec::from_toml_str(run_sub)
            .unwrap_err()
            .to_string();
        assert!(err.contains("[run.extra]"), "{err}");
        let config_sub = "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\n\n[config.backend]\nl1d_miss_rate = 0.5\n";
        let err = CampaignSpec::from_toml_str(config_sub)
            .unwrap_err()
            .to_string();
        assert!(err.contains("[config.backend]"), "{err}");
    }

    const WORKLOAD_AXIS_SPEC: &str = r#"
name = "fp-sweep"
mechanisms = ["fdip"]

[run]
trace_blocks = 2000
warmup_blocks = 400

[[workload]]
label = "fp"
base = "nutch"
footprint_bytes = [262144, 1048576, 4194304]
service_roots = [32, 96]
hot_callee_fraction = 0.45

[workload.backend]
l1d_miss_rate = 0.06

[[workload]]
label = "tight"
base = "streaming"
mean_block_instructions = 9.5

[workload.terminators]
call = 0.06

[workload.conditionals]
bias_mean = 0.9
"#;

    #[test]
    fn workload_axis_expands_cartesianly() {
        let spec = CampaignSpec::from_toml_str(WORKLOAD_AXIS_SPEC).unwrap();
        // 3 footprints x 2 service-root counts + the scalar "tight" entry.
        assert_eq!(spec.workloads.len(), 7);
        let labels: Vec<&str> = spec.workloads.iter().map(|w| w.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "fp-262144-32",
                "fp-262144-96",
                "fp-1048576-32",
                "fp-1048576-96",
                "fp-4194304-32",
                "fp-4194304-96",
                "tight",
            ]
        );
        // Scalar overrides apply to every expanded point.
        for point in &spec.workloads[..6] {
            assert_eq!(point.profile.kind, WorkloadKind::Nutch);
            assert_eq!(point.profile.hot_callee_fraction, 0.45);
            assert_eq!(point.profile.backend.l1d_miss_rate, 0.06);
            assert!(!point.is_preset());
        }
        assert_eq!(spec.workloads[0].profile.footprint_bytes, 262_144);
        assert_eq!(spec.workloads[0].profile.service_roots, 32);
        assert_eq!(spec.workloads[5].profile.footprint_bytes, 4_194_304);
        assert_eq!(spec.workloads[5].profile.service_roots, 96);
        // Untouched fields keep the base preset's values.
        assert_eq!(
            spec.workloads[0].profile.max_call_depth,
            WorkloadKind::Nutch.profile().max_call_depth
        );
        let tight = &spec.workloads[6];
        assert_eq!(tight.profile.mean_block_instructions, 9.5);
        assert_eq!(tight.profile.terminators.call, 0.06);
        assert_eq!(tight.profile.conditionals.bias_mean, 0.9);
        assert_eq!(spec.cell_count(), 7);
    }

    #[test]
    fn workload_axis_round_trips() {
        let spec = CampaignSpec::from_toml_str(WORKLOAD_AXIS_SPEC).unwrap();
        let text = spec.to_toml_string();
        let again = CampaignSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, again);
        assert_eq!(text, again.to_toml_string());
        // The expanded points serialise as scalar [[workload]] tables with
        // sub-tables for the backend override.
        assert!(text.contains("[[workload]]"), "{text}");
        assert!(text.contains("[workload.backend]"), "{text}");
        assert!(!text.contains("workloads ="), "{text}");
    }

    const SUBTABLE_SWEEP_SPEC: &str = r#"
name = "mix-sweep"
mechanisms = ["fdip"]

[run]
trace_blocks = 2000
warmup_blocks = 400

[[workload]]
label = "mix"
base = "nutch"
footprint_bytes = [262144, 1048576]

[workload.terminators]
indirect_jump = [0.01, 0.05]

[workload.backend]
l1d_miss_rate = [0.02, 0.08]
load_fraction = 0.22
"#;

    #[test]
    fn subtable_fields_sweep_cartesianly() {
        let spec = CampaignSpec::from_toml_str(SUBTABLE_SWEEP_SPEC).unwrap();
        // 2 footprints x 2 indirect-jump weights x 2 l1d miss rates.
        assert_eq!(spec.workloads.len(), 8);
        let labels: Vec<&str> = spec.workloads.iter().map(|w| w.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "mix-262144-0.01-0.02",
                "mix-262144-0.01-0.08",
                "mix-262144-0.05-0.02",
                "mix-262144-0.05-0.08",
                "mix-1048576-0.01-0.02",
                "mix-1048576-0.01-0.08",
                "mix-1048576-0.05-0.02",
                "mix-1048576-0.05-0.08",
            ]
        );
        // Swept and scalar sub-table overrides land on the right fields.
        let first = &spec.workloads[0].profile;
        let last = &spec.workloads[7].profile;
        assert_eq!(first.terminators.indirect_jump, 0.01);
        assert_eq!(last.terminators.indirect_jump, 0.05);
        assert_eq!(first.backend.l1d_miss_rate, 0.02);
        assert_eq!(last.backend.l1d_miss_rate, 0.08);
        for point in &spec.workloads {
            assert_eq!(point.profile.backend.load_fraction, 0.22);
        }
    }

    #[test]
    fn subtable_sweeps_round_trip() {
        let spec = CampaignSpec::from_toml_str(SUBTABLE_SWEEP_SPEC).unwrap();
        let text = spec.to_toml_string();
        let again = CampaignSpec::from_toml_str(&text).unwrap();
        assert_eq!(spec, again);
        assert_eq!(text, again.to_toml_string());
    }

    #[test]
    fn invalid_swept_subtable_values_are_field_level_errors() {
        // A list element that produces an invalid profile fails validation
        // with the sub-table field named, at parse time.
        let e = CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"bad\"\nbase = \"nutch\"\n\n[workload.backend]\nload_fraction = [0.2, 1.4]\n",
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("workload `bad"), "{e}");
        assert!(e.contains("load_fraction"), "{e}");
    }

    #[test]
    fn named_and_custom_workloads_mix() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"mix\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"big\"\nbase = \"nutch\"\nfootprint_bytes = 4194304\n",
        )
        .unwrap();
        assert_eq!(spec.workloads.len(), 2);
        assert!(spec.workloads[0].is_preset());
        assert_eq!(spec.workloads[1].label, "big");
        let again = CampaignSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn preset_clone_normalises_to_the_name_array() {
        // A [[workload]] entry that is byte-for-byte a paper preset is the
        // same axis point as naming the workload.
        let explicit = CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"Nutch\"\nbase = \"nutch\"\n",
        )
        .unwrap();
        let named = CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\n",
        )
        .unwrap();
        assert_eq!(explicit.workloads, named.workloads);
        assert_eq!(explicit, named);
        assert!(explicit
            .to_toml_string()
            .contains("workloads = [\"nutch\"]"));
    }

    #[test]
    fn workload_axis_rejects_bad_tables() {
        let base = "name = \"x\"\nmechanisms = [\"fdip\"]\n";
        // Missing base.
        let e = CampaignSpec::from_toml_str(&format!("{base}\n[[workload]]\nlabel = \"a\"\n"))
            .unwrap_err()
            .to_string();
        assert!(e.contains("base"), "{e}");
        // Unknown override key.
        let e = CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nfrobs = 1\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(e.contains("frobs"), "{e}");
        // Unknown sub-table.
        assert!(CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\n\n[workload.frontend]\nx = 1\n"
        ))
        .is_err());
        // Empty override list inside a sub-table, named by dotted path.
        let e = CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\n\n[workload.backend]\nload_fraction = []\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(e.contains("backend.load_fraction"), "{e}");
        // Duplicate values within a sub-table override list.
        assert!(CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\n\n[workload.backend]\nload_fraction = [0.1, 0.1]\n"
        ))
        .is_err());
        // Mistyped sub-table list elements are field-level errors.
        let e = CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\n\n[workload.terminators]\ncall = [0.05, \"often\"]\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(e.contains("terminators.call"), "{e}");
        // Empty override list.
        assert!(CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nfootprint_bytes = []\n"
        ))
        .is_err());
        // Duplicate values within one override list.
        assert!(CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nfootprint_bytes = [262144, 262144]\n"
        ))
        .is_err());
        // Both the canonical key and its deprecated alias.
        assert!(CampaignSpec::from_toml_str(&format!(
            "{base}\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nutility_fraction = 0.1\nhot_function_fraction = 0.1\n"
        ))
        .is_err());
    }

    #[test]
    fn deprecated_hot_function_fraction_alias_still_parses() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nhot_function_fraction = 0.2\n",
        )
        .unwrap();
        assert_eq!(spec.workloads[0].profile.utility_fraction, 0.2);
    }

    #[test]
    fn invalid_profile_values_are_field_level_spec_errors() {
        let e = CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"bad\"\nbase = \"nutch\"\nfootprint_bytes = 0\n",
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("workload `bad`"), "{e}");
        assert!(e.contains("footprint_bytes"), "{e}");
        assert!(e.contains("got 0"), "{e}");

        let e = CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"bad\"\nbase = \"db2\"\n\n[workload.conditionals]\nmean_trip_count = 1.0\n",
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("conditionals.mean_trip_count"), "{e}");
    }

    #[test]
    fn duplicate_workload_labels_are_rejected() {
        // Across two [[workload]] tables.
        assert!(CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\n\n[[workload]]\nlabel = \"a\"\nbase = \"db2\"\n"
        )
        .is_err());
        // Against a named preset (case-insensitive).
        assert!(CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"nutch\"\nbase = \"db2\"\n"
        )
        .is_err());
        // Colliding expanded labels.
        assert!(CampaignSpec::from_toml_str(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nfootprint_bytes = [262144]\n\n[[workload]]\nlabel = \"a-262144\"\nbase = \"nutch\"\n"
        )
        .is_err());
    }

    #[test]
    fn workload_axis_expansion_is_capped() {
        // 9^4 = 6561 > MAX_WORKLOAD_POINTS.
        let list = "[131072, 262144, 393216, 524288, 655360, 786432, 917504, 1048576, 1179648]";
        let depths = "[4, 5, 6, 7, 8, 9, 10, 11, 12]";
        let roots = "[8, 9, 10, 11, 12, 13, 14, 15, 16]";
        let fractions = "[0.1, 0.11, 0.12, 0.13, 0.14, 0.15, 0.16, 0.17, 0.18]";
        let e = CampaignSpec::from_toml_str(&format!(
            "name = \"x\"\nmechanisms = [\"fdip\"]\n\n[[workload]]\nlabel = \"a\"\nbase = \"nutch\"\nfootprint_bytes = {list}\nmax_call_depth = {depths}\nservice_roots = {roots}\nhot_callee_fraction = {fractions}\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(e.contains("max 512"), "{e}");
    }

    #[test]
    fn out_of_range_integers_are_rejected_not_truncated() {
        // Beyond i64: the TOML layer rejects the literal outright.
        let e = CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[[config]]\nlabel = \"a\"\nftq_entries = 9223372036854775808\n",
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("9223372036854775808"), "{e}");
        // Negative integers never reach a cast.
        assert!(CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = -5\n"
        )
        .is_err());
        // Large-but-representable values round-trip exactly instead of
        // wrapping (pre-fix, `u64 as i64` style casts corrupted them on the
        // way out and `u64 as usize` truncated them on 32-bit targets).
        let spec = CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\nseeds = [9223372036854775807]\n",
        )
        .unwrap();
        assert_eq!(spec.seeds, vec![i64::MAX as u64]);
        let again = CampaignSpec::from_toml_str(&spec.to_toml_string()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    #[should_panic(expected = "exceeds TOML's i64 range")]
    fn hand_constructed_overflow_panics_instead_of_wrapping() {
        let mut spec = CampaignSpec::from_toml_str(
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\n",
        )
        .unwrap();
        spec.seeds = vec![u64::MAX];
        let _ = spec.to_toml_string();
    }

    #[test]
    fn rejects_duplicate_axis_entries() {
        let dup_workload =
            "name = \"x\"\nworkloads = [\"nutch\", \"nutch\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(dup_workload).is_err());
        let mixed_all = "name = \"x\"\nworkloads = [\"all\", \"nutch\"]\nmechanisms = [\"fdip\"]\n";
        assert!(CampaignSpec::from_toml_str(mixed_all).is_err());
        let dup_seed =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"fdip\"]\nseeds = [3, 3]\n";
        assert!(CampaignSpec::from_toml_str(dup_seed).is_err());
        // boomerang and boomerang:2 normalise to the same mechanism value.
        let dup_mech =
            "name = \"x\"\nworkloads = [\"all\"]\nmechanisms = [\"boomerang\", \"boomerang:2\"]\n";
        let err = CampaignSpec::from_toml_str(dup_mech)
            .unwrap_err()
            .to_string();
        assert!(err.contains("duplicate"), "{err}");
    }
}
