//! `boomerang-sim serve`: a spool-directory campaign service.
//!
//! The service watches a spool directory for campaign spec submissions
//! (`*.toml` files). Each submission is dispatched across `workers` child
//! processes of the simulator binary itself, sharded over the canonical job
//! expansion (`run --shard i/N`); every worker checkpoints its rows to its
//! own journal in the submission's output directory, so a crashed or killed
//! worker loses nothing but its in-flight job. The workers run under the
//! [`crate::supervise`] poll loop: a crashed shard is restarted with
//! exponential backoff up to the retry budget, a shard whose journal stops
//! growing is killed as hung (the kill consumes a retry), and a Ctrl-C on
//! the service kills every child — no orphans. When the fleet completes,
//! the collector replays the journals — *without* regenerating any
//! workloads — assembles the canonical report, and writes the same
//! `<name>.json` / `<name>.csv` bytes a one-shot `run` would have produced.
//!
//! If a shard exhausts its retries, the default is to fail the submission;
//! with [`ServeOptions::allow_partial`] the collector instead assembles a
//! degraded report from whatever rows are checkpointed, with the missing
//! rows explicitly marked (see [`crate::engine::PartialReport`]), and marks
//! the submission `.partial`.
//!
//! Processed submissions are renamed `<file>.done` (or `<file>.partial`, or
//! `<file>.failed` with the reason in `<file>.error`), so the spool is also
//! the service's queue state: resubmitting is just dropping the file in
//! again — stale markers from an earlier attempt are cleared first. A lock
//! file (`.boomerang-serve.lock`, holding the owner's pid) keeps two serve
//! processes from double-processing one spool; a lock whose owner is dead
//! is reclaimed, and [`ServeOptions::steal_lock_after`] adds an
//! mtime-staleness escape hatch for platforms without procfs liveness.
//!
//! # Distributed mode
//!
//! With [`ServeOptions::listen`] the service additionally runs a TCP work
//! queue (a broker): each submission's job expansion is leased row-by-row
//! to `boomerang-sim worker --connect` clients over the versioned
//! [`crate::proto`] frame protocol. Leases are kept alive by worker
//! heartbeats and row submissions; a lease silent past
//! [`ServeOptions::lease_timeout`] is revoked and its job requeued with
//! exponential backoff, so a crashed, partitioned, or hung worker only
//! delays its in-flight row. The broker is the sole journal writer and
//! dedups every submitted row against the journal-backed done set, which
//! makes submission idempotent (retransmissions, revoked-then-completed
//! leases) and lets a restarted broker resume mid-campaign from the
//! journal. `workers > 0` still spawns a local fleet — as worker clients
//! over loopback — so local and remote dispatch drain one queue through one
//! code path and the merged report stays byte-identical to a one-shot
//! `run`.
//!
//! # Result integrity
//!
//! The broker does not trust what it is handed. Every `RowDone` carries a
//! `row_fnv` checksum over the canonical `index|mechanism|seed|stats`
//! encoding; the broker recomputes it from the received fields before
//! journaling, and a mismatch **quarantines** the submitting session — no
//! further leases, the row requeued for another worker — since a payload
//! that disagrees with its own checksum proves corruption between the
//! worker's simulator and the broker's socket. On top of that,
//! [`ServeOptions::verify_fraction`] samples a deterministic (spec-hash
//! seeded, so stable across broker restarts) fraction of completed rows and
//! re-leases each to a *different* session; a re-run that disagrees with
//! the journaled stats quarantines the producing session and requeues every
//! unverified row it produced. Both kinds of quarantine are counted in the
//! per-campaign integrity summary printed at the end of each dispatch, and
//! [`ServeOptions::max_quarantined`] bounds how much of the fleet may rot
//! before the submission is failed with a distinct exit code.

use crate::bench::fnv1a64;
use crate::checkpoint::{row_checksum, spec_hash, stats_from_array, Journal, JournalReplay};
use crate::engine::{assemble_partial_report, assemble_report};
use crate::expand::{expand, Job};
use crate::fault;
use crate::proto::{read_message, write_message, Message};
use crate::sink::{write_partial_reports, write_reports};
use crate::spec::{mechanism_token, CampaignSpec};
use crate::supervise::{self, supervise, supervise_with_stop, SuperviseOptions};
use boomerang::RunLength;
use frontend::SimStats;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Name of the spool lock file (satellite: two serve processes must not
/// double-process one spool).
pub const SPOOL_LOCK_NAME: &str = ".boomerang-serve.lock";

/// How the service runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The simulator binary to spawn workers from (normally
    /// `std::env::current_exe()`; tests point it at the built binary).
    pub binary: PathBuf,
    /// Directory watched for `*.toml` spec submissions.
    pub spool: PathBuf,
    /// Root of the per-submission output directories.
    pub out: PathBuf,
    /// Worker *processes* per submission.
    pub workers: usize,
    /// Worker *threads* per process (`--jobs`; 0 = auto).
    pub jobs: usize,
    /// Run every submission at smoke length.
    pub smoke: bool,
    /// Shared content-addressed workload artifact cache for the workers.
    pub artifact_cache: Option<PathBuf>,
    /// Process the submissions present now, then exit (instead of polling).
    pub once: bool,
    /// Poll interval between spool scans in milliseconds.
    pub poll_ms: u64,
    /// Worker retry/backoff/timeout policy.
    pub supervise: SuperviseOptions,
    /// When a shard exhausts its retries, assemble a degraded report from
    /// the checkpointed rows instead of failing the submission.
    pub allow_partial: bool,
    /// Skip submissions modified within the last this-many milliseconds
    /// (still being written). 0 disables the settle window.
    pub settle_ms: u64,
    /// Stop after this many spool scans (0 = unlimited). A testing handle:
    /// lets a polling serve loop terminate deterministically.
    pub max_scans: u64,
    /// TCP listen address for the distributed work queue (`--listen`).
    /// `None` keeps the process-spawn-only dispatch; `Some` runs the broker
    /// and leases jobs to `boomerang-sim worker --connect` clients.
    pub listen: Option<String>,
    /// Write the broker's bound address (useful with `--listen 127.0.0.1:0`)
    /// to this file once listening.
    pub listen_addr_file: Option<PathBuf>,
    /// Revoke a lease with no heartbeat or row progress for this long; the
    /// job is requeued with exponential backoff on re-lease.
    pub lease_timeout: Duration,
    /// Steal the spool lock when its file's mtime is older than this, even
    /// if the owner looks alive — the escape hatch for platforms without
    /// procfs liveness (where a dead owner is indistinguishable from a live
    /// one) and for wedged owners that stopped scanning. A live serve
    /// refreshes the lock's mtime on every scan.
    pub steal_lock_after: Option<Duration>,
    /// Broker mode: fraction (0.0..=1.0) of completed rows sampled for
    /// re-execution by a *different* worker session, whose stats must match
    /// the journaled row (`--verify-fraction`). The sample is deterministic
    /// — seeded by the campaign's spec hash — so the same rows re-verify
    /// across broker restarts. 0 disables sampling; the `row_fnv` checksum
    /// on every submission is always verified regardless.
    pub verify_fraction: f64,
    /// Fail the submission (with its own exit code, distinct from plain
    /// failure) once *more than* this many worker sessions have been
    /// quarantined (`--max-quarantined`). `None` leaves degradation
    /// unbounded: quarantined sessions are only counted and reported.
    pub max_quarantined: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            binary: PathBuf::new(),
            spool: PathBuf::new(),
            out: PathBuf::new(),
            workers: 2,
            jobs: 0,
            smoke: false,
            artifact_cache: None,
            once: false,
            poll_ms: 500,
            supervise: SuperviseOptions::default(),
            allow_partial: false,
            settle_ms: 0,
            max_scans: 0,
            listen: None,
            listen_addr_file: None,
            lease_timeout: Duration::from_secs(60),
            steal_lock_after: None,
            verify_fraction: 0.0,
            max_quarantined: None,
        }
    }
}

/// How a submission ended well.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmissionStatus {
    /// The canonical report was written to this directory.
    Done(PathBuf),
    /// Retries were exhausted but `allow_partial` assembled a degraded
    /// report: `missing` jobs have no checkpointed rows.
    Partial {
        /// The output directory holding the degraded report.
        dir: PathBuf,
        /// Number of jobs with no statistics.
        missing: usize,
    },
}

/// What happened to one submission.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The submission file (its original spool path).
    pub submission: PathBuf,
    /// The campaign name, when the spec parsed far enough to have one.
    pub campaign: String,
    /// The terminal status on success, the reason on failure.
    pub result: Result<SubmissionStatus, String>,
    /// True when the failure was the integrity bound: more worker sessions
    /// were quarantined than [`ServeOptions::max_quarantined`] allows. The
    /// CLI maps this to its own exit code so operators can tell "the fleet
    /// is corrupting results" apart from an ordinary failed run.
    pub quarantine_exceeded: bool,
}

/// Why a broker dispatch failed — a plain failure, or the quarantine bound.
enum DispatchError {
    Failed(String),
    QuarantineExceeded(String),
}

/// Holds the spool lock for the lifetime of the serve loop; dropping it
/// releases the lock file.
#[derive(Debug)]
struct SpoolLock {
    path: PathBuf,
}

impl SpoolLock {
    /// Acquires the lock, reclaiming it from a dead owner. Refuses (with an
    /// [`io::ErrorKind::WouldBlock`]-flavored error) while a live process
    /// holds it — unless `steal_after` is set and the lock file's mtime is
    /// at least that old. The liveness check is conservative off-procfs
    /// ("assume live"), so without the staleness escape hatch a dead
    /// owner's lock wedges a non-Linux spool forever; a live serve calls
    /// [`SpoolLock::refresh`] every scan, keeping its mtime fresh.
    fn acquire(spool: &Path, steal_after: Option<Duration>) -> io::Result<SpoolLock> {
        let path = spool.join(SPOOL_LOCK_NAME);
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    use std::io::Write as _;
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(SpoolLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if let Some(pid) = owner {
                        if pid_is_live(pid) {
                            let stale = steal_after.is_some_and(|threshold| {
                                std::fs::metadata(&path)
                                    .and_then(|m| m.modified())
                                    .ok()
                                    .and_then(|mtime| mtime.elapsed().ok())
                                    .is_some_and(|age| age >= threshold)
                            });
                            if !stale {
                                return Err(io::Error::new(
                                    io::ErrorKind::WouldBlock,
                                    format!(
                                        "spool {} is already served by process {pid} \
                                         (lock file {})",
                                        spool.display(),
                                        path.display()
                                    ),
                                ));
                            }
                            eprintln!(
                                "serve: stealing stale spool lock {} from process {pid} \
                                 (mtime older than {:?})",
                                path.display(),
                                steal_after.expect("stale implies threshold")
                            );
                        }
                    }
                    // Dead, unreadable, or stale owner: reclaim and retry
                    // the create_new (another process may be racing us for
                    // it — exactly one create_new wins).
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("cannot acquire spool lock {}", path.display()),
        ))
    }

    /// Rewrites the lock file, refreshing its mtime — the heartbeat the
    /// `steal_after` staleness check reads. Called once per spool scan.
    fn refresh(&self) {
        let _ = std::fs::write(&self.path, format!("{}", std::process::id()));
    }
}

impl Drop for SpoolLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether a pid refers to a live process. On Linux this reads `/proc`;
/// elsewhere the check is conservative (assume live), so stale locks need a
/// manual remove but live ones are never stolen.
fn pid_is_live(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Runs the service loop. In `--once` mode processes the submissions present
/// and returns their outcomes; otherwise polls until interrupted or the scan
/// budget (`max_scans`) runs out (outcomes are reported through `report` as
/// they happen in both modes).
///
/// A failed spool scan (transient I/O error, injected or real) is logged and
/// the loop keeps polling — it no longer kills the service.
pub fn serve(
    options: &ServeOptions,
    report: &mut dyn FnMut(&ServeOutcome),
) -> io::Result<Vec<ServeOutcome>> {
    std::fs::create_dir_all(&options.spool)?;
    std::fs::create_dir_all(&options.out)?;
    let lock = SpoolLock::acquire(&options.spool, options.steal_lock_after)?;
    let broker = match &options.listen {
        Some(addr) => {
            let broker = Broker::start(addr)?;
            eprintln!("serve: work queue listening on {}", broker.addr);
            if let Some(path) = &options.listen_addr_file {
                // Published atomically (write-then-rename, same pattern as
                // the report sink): a reader polling for the address can
                // never observe a half-written port number.
                let tmp = path.with_file_name(format!(
                    ".tmp-{}-{}",
                    std::process::id(),
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("addr")
                ));
                std::fs::write(&tmp, format!("{}\n", broker.addr))?;
                std::fs::rename(&tmp, path)?;
            }
            Some(broker)
        }
        None => None,
    };
    let mut outcomes = Vec::new();
    let mut scans: u64 = 0;
    loop {
        lock.refresh();
        let submissions = match scan_spool(&options.spool, options.settle_ms) {
            Ok(submissions) => submissions,
            Err(e) => {
                eprintln!("serve: spool scan failed ({e}); retrying");
                Vec::new()
            }
        };
        scans += 1;
        for submission in submissions {
            let outcome = process_submission(&submission, options, broker.as_ref());
            finalize_submission(&submission, &outcome);
            report(&outcome);
            outcomes.push(outcome);
            if supervise::interrupted() {
                break;
            }
        }
        if options.once
            || supervise::interrupted()
            || (options.max_scans > 0 && scans >= options.max_scans)
        {
            if let Some(broker) = broker {
                broker.finish();
            }
            return Ok(outcomes);
        }
        std::thread::sleep(std::time::Duration::from_millis(options.poll_ms.max(10)));
    }
}

/// The `*.toml` submissions currently in the spool, in name order. Files
/// modified within the settle window are skipped — they are still being
/// written; a later scan picks them up once their mtime is stable.
fn scan_spool(spool: &Path, settle_ms: u64) -> io::Result<Vec<PathBuf>> {
    if fault::fail_this_spool_scan() {
        return Err(io::Error::other("injected spool scan fault"));
    }
    let mut files = Vec::new();
    for entry in std::fs::read_dir(spool)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "toml") || !path.is_file() {
            continue;
        }
        if settle_ms > 0 {
            let settled = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| mtime.elapsed().ok())
                .is_some_and(|age| age >= Duration::from_millis(settle_ms));
            if !settled {
                continue;
            }
        }
        files.push(path);
    }
    files.sort();
    Ok(files)
}

/// The marker suffixes [`finalize_submission`] manages.
const MARKER_SUFFIXES: [&str; 4] = ["done", "partial", "failed", "error"];

/// Marks a submission processed: `<file>.done` on success, `<file>.partial`
/// for a degraded report, `<file>.failed` plus a `<file>.error` note on
/// failure. Idempotent across resubmissions: stale markers from a previous
/// attempt are cleared first, so a resubmitted spec can never sit beside a
/// leftover `.failed`/`.error` that contradicts its fresh outcome.
fn finalize_submission(submission: &Path, outcome: &ServeOutcome) {
    for suffix in MARKER_SUFFIXES {
        let mut stale = submission.as_os_str().to_owned();
        stale.push(format!(".{suffix}"));
        let _ = std::fs::remove_file(&stale);
    }
    let suffix = match &outcome.result {
        Ok(SubmissionStatus::Done(_)) => "done",
        Ok(SubmissionStatus::Partial { .. }) => "partial",
        Err(_) => "failed",
    };
    let mut renamed = submission.as_os_str().to_owned();
    renamed.push(format!(".{suffix}"));
    if let Err(e) = std::fs::rename(submission, &renamed) {
        eprintln!(
            "serve: cannot rename {} to .{suffix}: {e}",
            submission.display()
        );
    }
    if let Err(reason) = &outcome.result {
        let mut note = submission.as_os_str().to_owned();
        note.push(".error");
        let _ = std::fs::write(note, format!("{reason}\n"));
    }
}

fn process_submission(
    submission: &Path,
    options: &ServeOptions,
    broker: Option<&Broker>,
) -> ServeOutcome {
    let mut outcome = ServeOutcome {
        submission: submission.to_path_buf(),
        campaign: String::new(),
        result: Err(String::new()),
        quarantine_exceeded: false,
    };
    let text = match std::fs::read_to_string(submission) {
        Ok(text) => text,
        Err(e) => {
            outcome.result = Err(format!("cannot read submission: {e}"));
            return outcome;
        }
    };
    let spec = match CampaignSpec::from_toml_str(&text) {
        Ok(spec) => spec,
        Err(e) => {
            outcome.result = Err(format!("invalid spec: {e}"));
            return outcome;
        }
    };
    outcome.campaign = spec.name.clone();

    let stem = submission
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("submission");
    let dir = options.out.join(stem);
    let run = if options.smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let hash = spec_hash(&spec, run, options.smoke);

    // A previous half-processed submission with the same spec resumes; a
    // different spec under the same stem is refused, not clobbered.
    match JournalReplay::existing_hash(&dir, &spec.name) {
        Ok(Some(existing)) if existing != hash => {
            outcome.result = Err(format!(
                "output directory {} already holds campaign `{}` with spec hash {existing}, \
                 which does not match this submission's {hash}",
                dir.display(),
                spec.name
            ));
            return outcome;
        }
        Ok(_) => {}
        Err(e) => {
            outcome.result = Err(format!("cannot inspect output directory: {e}"));
            return outcome;
        }
    }

    outcome.result = match broker {
        // Broker mode: the queue feeds local worker clients and remote TCP
        // workers alike; `--workers 0` is legal (remote-only dispatch).
        Some(broker) => match dispatch_via_broker(&spec, &dir, run, &hash, options, broker) {
            Ok(status) => Ok(status),
            Err(DispatchError::Failed(reason)) => Err(reason),
            Err(DispatchError::QuarantineExceeded(reason)) => {
                outcome.quarantine_exceeded = true;
                Err(reason)
            }
        },
        None => {
            let workers = options.workers.max(1);
            dispatch_and_merge(submission, &spec, &dir, run, &hash, workers, options)
        }
    };
    outcome
}

/// Runs the sharded workers under supervision, then merges their journals
/// into the canonical report — or, when retries are exhausted and partial
/// output is allowed, into a degraded report over the checkpointed rows.
fn dispatch_and_merge(
    submission: &Path,
    spec: &CampaignSpec,
    dir: &Path,
    run: RunLength,
    hash: &str,
    workers: usize,
    options: &ServeOptions,
) -> Result<SubmissionStatus, String> {
    let mut make_command = |shard: usize| {
        let mut cmd = Command::new(&options.binary);
        cmd.arg("run")
            .arg(submission)
            .arg("--out")
            .arg(dir)
            .arg("--shard")
            .arg(format!("{shard}/{workers}"))
            .arg("--resume")
            .arg("--quiet")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if options.jobs > 0 {
            cmd.arg("--jobs").arg(options.jobs.to_string());
        }
        if options.smoke {
            cmd.arg("--smoke");
        }
        if let Some(cache) = &options.artifact_cache {
            cmd.arg("--artifact-cache").arg(cache);
        }
        cmd
    };
    // The per-shard progress probe: the shard's journal grows (monotonically,
    // append-only) with every checkpointed row. The supervisor re-reads the
    // baseline at each spawn, so a resume that truncates a torn tail cannot
    // masquerade as progress.
    let shard_arg = |shard: usize| {
        if workers > 1 {
            Some((shard, workers))
        } else {
            None
        }
    };
    let mut progress = |shard: usize| {
        std::fs::metadata(Journal::path_for(dir, &spec.name, shard_arg(shard)))
            .map(|m| m.len())
            .unwrap_or(0)
    };
    let supervised = supervise(
        workers,
        &mut make_command,
        &mut progress,
        &options.supervise,
        &mut |line| eprintln!("serve: {line}"),
    );

    if supervised.interrupted() {
        return Err("interrupted before the submission finished".to_string());
    }

    let jobs = expand(spec);
    if supervised.all_complete() {
        let replay =
            JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| e.to_string())?;
        if replay.completed() != jobs.len() {
            return Err(format!(
                "workers exited cleanly but only {} of {} jobs are checkpointed",
                replay.completed(),
                jobs.len()
            ));
        }
        let stats: Vec<SimStats> = (0..jobs.len()).map(|i| replay.rows[&i]).collect();
        let report = assemble_report(spec, &jobs, run, options.smoke, stats);
        write_reports(&report, dir).map_err(|e| format!("cannot write reports: {e}"))?;
        return Ok(SubmissionStatus::Done(dir.to_path_buf()));
    }

    let failures = supervised.failures();
    if !options.allow_partial {
        return Err(failures.join("; "));
    }

    // Graceful degradation: whatever rows the dead shards checkpointed are
    // real (the journal only holds finished jobs), so report them and mark
    // the holes instead of discarding everything.
    let replay = JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| e.to_string())?;
    let stats: Vec<Option<SimStats>> = (0..jobs.len())
        .map(|i| replay.rows.get(&i).copied())
        .collect();
    let partial = assemble_partial_report(spec, &jobs, run, options.smoke, &stats, failures);
    let missing = partial.missing();
    write_partial_reports(&partial, dir)
        .map_err(|e| format!("cannot write partial reports: {e}"))?;
    Ok(SubmissionStatus::Partial {
        dir: dir.to_path_buf(),
        missing,
    })
}

// ---- distributed work queue ---------------------------------------------
//
// With `--listen`, serve runs a broker: submissions install an
// `ActiveCampaign` (job queue + journal) in shared state, and every
// connected `boomerang-sim worker` drains it over the `crate::proto` frame
// protocol. The broker is the *only* journal writer in this mode, which is
// what makes row submission idempotent: every `RowDone` is deduped against
// the done set (seeded from the journal replay on resume) under one lock
// before it is appended, so a retransmitted frame, a revoked-then-completed
// lease, or a worker that crashed between send and ack can never
// double-append a row.

/// One queued (not currently leased) job.
struct QueuedJob {
    job: usize,
    /// Times this job's lease was revoked before.
    attempts: u32,
    /// Exponential-backoff gate: not leasable before this instant.
    ready_at: Instant,
}

/// One outstanding lease.
struct LeaseState {
    job: usize,
    attempts: u32,
    /// Refreshed by heartbeats and row submission; a lease idle past the
    /// timeout is revoked and its job requeued.
    last_activity: Instant,
}

/// One completed row sampled for re-execution by a different session.
struct VerifyJob {
    job: usize,
    /// Session whose journaled row is under test — never granted its own
    /// verification lease.
    producer: u64,
    /// The stat array as journaled; the re-run must reproduce it exactly.
    expected: Vec<u64>,
    ready_at: Instant,
}

/// One outstanding verification lease (a re-run of an already-done row).
struct VerifyLease {
    job: usize,
    producer: u64,
    expected: Vec<u64>,
    last_activity: Instant,
}

/// The campaign the broker is currently leasing out.
struct ActiveCampaign {
    spec_toml: String,
    spec_hash: String,
    smoke: bool,
    jobs: Vec<Job>,
    journal: Journal,
    done: HashSet<usize>,
    queue: VecDeque<QueuedJob>,
    leases: HashMap<u64, LeaseState>,
    next_lease: u64,
    /// Rows journaled this dispatch — the local fleet's progress probe.
    rows_submitted: u64,
    /// Last lease grant, heartbeat, or row: the give-up clock.
    last_activity: Instant,
    lease_timeout: Duration,
    backoff_base: Duration,
    backoff_cap: Duration,
    /// Sampling rate for row re-verification (0 disables).
    verify_fraction: f64,
    /// Completed rows waiting for a re-run by a non-producer session.
    verify_queue: VecDeque<VerifyJob>,
    /// Outstanding verification leases, keyed like regular leases (one id
    /// space, so acks and revocations cannot confuse the two).
    verify_leases: HashMap<u64, VerifyLease>,
    /// Job index → the session whose row the journal holds (this broker
    /// life only; resumed rows have no known producer).
    row_producer: HashMap<usize, u64>,
    /// Sessions barred from further leases; their unverified rows were
    /// requeued when they entered.
    quarantined: HashSet<u64>,
    /// More quarantines than this fail the submission with its own exit
    /// code (`None` = unbounded).
    max_quarantined: Option<usize>,
    /// Rows rejected because their `row_fnv` disagreed with their payload.
    checksum_rejects: u64,
    /// Sampled re-runs whose stats matched the journaled row.
    rows_verified: u64,
    /// Sampled re-runs that contradicted the journaled row.
    verify_mismatches: u64,
    /// Sampled rows abandoned unverified (no eligible session appeared).
    verify_abandoned: u64,
}

impl ActiveCampaign {
    /// Every job journaled (verification may still be outstanding).
    fn rows_complete(&self) -> bool {
        self.done.len() == self.jobs.len()
    }

    /// Every job journaled *and* every sampled re-verification resolved.
    fn complete(&self) -> bool {
        self.rows_complete() && self.verify_queue.is_empty() && self.verify_leases.is_empty()
    }

    /// Whether quarantines have exceeded the configured bound.
    fn quarantine_breached(&self) -> bool {
        self.max_quarantined
            .is_some_and(|max| self.quarantined.len() > max)
    }

    /// Revokes every lease (regular and verification) idle past the
    /// timeout, requeueing the jobs with exponential backoff — and, once
    /// all rows are done, abandons verification samples nobody is eligible
    /// to pick up (a one-session fleet can never re-verify its own rows;
    /// without this escape the campaign would idle forever).
    fn sweep_expired(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| now.duration_since(l.last_activity) >= self.lease_timeout)
            .map(|(&id, _)| id)
            .chain(
                self.verify_leases
                    .iter()
                    .filter(|(_, l)| now.duration_since(l.last_activity) >= self.lease_timeout)
                    .map(|(&id, _)| id),
            )
            .collect();
        for lease in expired {
            self.revoke(lease, "expired (no heartbeat or row progress)");
        }
        if self.rows_complete()
            && !self.verify_queue.is_empty()
            && self.verify_leases.is_empty()
            && self.last_activity.elapsed() >= self.lease_timeout
        {
            self.verify_abandoned += self.verify_queue.len() as u64;
            eprintln!(
                "serve: abandoning {} queued verification sample(s): no eligible session \
                 picked them up within the lease timeout",
                self.verify_queue.len()
            );
            self.verify_queue.clear();
        }
    }

    /// Returns one lease to its queue (lease expiry or connection loss).
    /// Verification leases requeue as verification work; regular leases
    /// requeue the job with exponential backoff.
    fn revoke(&mut self, lease: u64, why: &str) {
        if let Some(state) = self.verify_leases.remove(&lease) {
            eprintln!(
                "serve: verification lease {lease} for job {} {why}; requeued",
                state.job
            );
            self.verify_queue.push_back(VerifyJob {
                job: state.job,
                producer: state.producer,
                expected: state.expected,
                ready_at: Instant::now() + self.backoff_base,
            });
            return;
        }
        let Some(state) = self.leases.remove(&lease) else {
            return;
        };
        if self.done.contains(&state.job) {
            return;
        }
        let attempts = state.attempts + 1;
        let backoff = self
            .backoff_base
            .saturating_mul(1u32 << (attempts - 1).min(20))
            .min(self.backoff_cap);
        eprintln!(
            "serve: lease {lease} for job {} {why}; requeued with {backoff:?} backoff \
             (attempt {attempts})",
            state.job
        );
        self.queue.push_back(QueuedJob {
            job: state.job,
            attempts,
            ready_at: Instant::now() + backoff,
        });
    }

    /// Leases the next ready job to `session`, skipping queue entries that
    /// completed while waiting (a revoked lease whose original worker
    /// finished after all). Fresh work first; with the queue drained,
    /// verification samples are handed to any session other than the one
    /// that produced the row under test.
    fn grant(&mut self, session: u64) -> Option<(u64, usize)> {
        let now = Instant::now();
        let mut deferred = 0;
        while deferred < self.queue.len() {
            let Some(entry) = self.queue.pop_front() else {
                break;
            };
            if self.done.contains(&entry.job) {
                continue;
            }
            if entry.ready_at > now {
                self.queue.push_back(entry);
                deferred += 1;
                continue;
            }
            let lease = self.next_lease;
            self.next_lease += 1;
            self.leases.insert(
                lease,
                LeaseState {
                    job: entry.job,
                    attempts: entry.attempts,
                    last_activity: now,
                },
            );
            self.last_activity = now;
            return Some((lease, entry.job));
        }
        let mut deferred = 0;
        while deferred < self.verify_queue.len() {
            let Some(entry) = self.verify_queue.pop_front() else {
                break;
            };
            if !self.done.contains(&entry.job) {
                // The row under test was requeued for a fresh run (its
                // producer was quarantined); this sample is moot — the
                // re-run will be re-sampled when it lands.
                continue;
            }
            if entry.producer == session || entry.ready_at > now {
                self.verify_queue.push_back(entry);
                deferred += 1;
                continue;
            }
            let lease = self.next_lease;
            self.next_lease += 1;
            self.verify_leases.insert(
                lease,
                VerifyLease {
                    job: entry.job,
                    producer: entry.producer,
                    expected: entry.expected,
                    last_activity: now,
                },
            );
            self.last_activity = now;
            return Some((lease, entry.job));
        }
        None
    }

    /// Whether row `index` is in the deterministic verification sample.
    /// The draw hashes `spec_hash|verify|index`, so it is stable across
    /// broker restarts and independent of submission order. The FNV value
    /// is pushed through a SplitMix64 finalizer before the threshold
    /// compare: FNV-1a's final multiply barely moves its high bits for
    /// inputs differing only in a trailing byte, so the raw hash would
    /// cluster whole runs of indices on the same side of the threshold.
    fn sampled_for_verification(&self, index: usize) -> bool {
        if self.verify_fraction <= 0.0 {
            return false;
        }
        let mut z = fnv1a64(format!("{}|verify|{index}", self.spec_hash).as_bytes());
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) < self.verify_fraction
    }

    /// Bars `session` from further leases and requeues every unverified
    /// row it produced: once one row from a session is proven wrong,
    /// nothing else it journaled can be trusted.
    fn quarantine(&mut self, session: u64, worker: &str, why: &str) {
        if !self.quarantined.insert(session) {
            return;
        }
        eprintln!("serve: quarantining session {session} ({worker}): {why}");
        let suspect: Vec<usize> = self
            .row_producer
            .iter()
            .filter(|(_, &producer)| producer == session)
            .map(|(&job, _)| job)
            .collect();
        for job in suspect {
            self.row_producer.remove(&job);
            if self.done.remove(&job) {
                eprintln!(
                    "serve: requeueing job {job} (produced by quarantined session {session})"
                );
                self.queue.push_back(QueuedJob {
                    job,
                    attempts: 0,
                    ready_at: Instant::now(),
                });
            }
        }
    }

    /// Validates, dedups, journals, and acks one submitted row. The journal
    /// append is the broker's row fault point, so an armed plan can crash
    /// the broker mid-campaign — the resume path then proves itself.
    ///
    /// A row answering a verification lease is never journaled: its stats
    /// are compared against the journaled row, and a disagreement
    /// quarantines the producing session. A row whose `row_fnv` disagrees
    /// with its own payload quarantines the *submitting* session — the
    /// payload was damaged somewhere between its simulator and this socket.
    #[allow(clippy::too_many_arguments)]
    fn row_done(
        &mut self,
        session: u64,
        worker: &str,
        lease: u64,
        job: u64,
        hash: &str,
        mechanism: &str,
        seed: u64,
        row_fnv: u64,
        stats: &[u64],
    ) -> io::Result<Message> {
        let reject = |reason: String| Ok(Message::Reject { reason });
        if hash != self.spec_hash {
            return reject(format!(
                "row carries spec hash {hash}, the active campaign is {}",
                self.spec_hash
            ));
        }
        let index = job as usize;
        if index >= self.jobs.len() {
            return reject(format!(
                "job {job} outside the {}-job expansion",
                self.jobs.len()
            ));
        }
        // Every submission must be internally consistent before anything
        // else is believed about it.
        let computed = row_checksum(index, mechanism, seed, stats);
        if computed != row_fnv {
            self.checksum_rejects += 1;
            let lease_requeued = self.leases.remove(&lease).is_some();
            self.quarantine(
                session,
                worker,
                &format!(
                    "job {job} row_fnv {row_fnv:016x} does not match its payload \
                     (recomputed {computed:016x})"
                ),
            );
            if lease_requeued && !self.done.contains(&index) {
                self.queue.push_back(QueuedJob {
                    job: index,
                    attempts: 0,
                    ready_at: Instant::now(),
                });
            }
            self.verify_leases.remove(&lease);
            return reject(format!(
                "job {job} failed its row_fnv check; session quarantined"
            ));
        }
        if let Some(verify) = self.verify_leases.remove(&lease) {
            self.last_activity = Instant::now();
            if stats == verify.expected.as_slice() {
                self.rows_verified += 1;
                return Ok(Message::RowAck { job });
            }
            self.verify_mismatches += 1;
            self.quarantine(
                verify.producer,
                "producer",
                &format!(
                    "job {job} re-run by session {session} contradicts the journaled row \
                     (sampled re-verification)"
                ),
            );
            // quarantine() requeued the suspect rows (including this one);
            // the verifier's work was sound, so ack it.
            return Ok(Message::RowAck { job });
        }
        if self.quarantined.contains(&session) {
            return reject(format!("session {session} is quarantined"));
        }
        // The lease is resolved either way; an expired/unknown lease is
        // fine — the work is real.
        self.leases.remove(&lease);
        self.last_activity = Instant::now();
        if self.done.contains(&index) {
            // Idempotent dedup: ack a retransmission without appending.
            return Ok(Message::RowAck { job });
        }
        let expected = &self.jobs[index];
        if mechanism_token(expected.mechanism) != mechanism || expected.seed != seed {
            return reject(format!(
                "job {job} cross-check failed: expected ({}, seed {}), row claims \
                 ({mechanism}, seed {seed})",
                mechanism_token(expected.mechanism),
                expected.seed
            ));
        }
        let Some(sim_stats) = stats_from_array(stats) else {
            return reject(format!("job {job} carries a malformed stat array"));
        };
        self.journal.record(expected, &sim_stats)?;
        self.done.insert(index);
        self.rows_submitted += 1;
        self.row_producer.insert(index, session);
        if self.sampled_for_verification(index) {
            self.verify_queue.push_back(VerifyJob {
                job: index,
                producer: session,
                expected: stats.to_vec(),
                ready_at: Instant::now(),
            });
        }
        Ok(Message::RowAck { job })
    }
}

/// Shared state between the serve loop and the connection handler threads.
struct BrokerShared {
    campaign: Mutex<Option<ActiveCampaign>>,
    /// Set by [`Broker::finish`]: handlers answer lease requests with
    /// `Shutdown` so workers drain and exit cleanly.
    finishing: AtomicBool,
    connections: AtomicUsize,
    /// Session id source: one id per accepted connection, never reused.
    /// Quarantine is per-session — a reconnecting worker starts clean.
    next_session: AtomicU64,
}

/// The listening work queue: an accept thread plus one handler thread per
/// connected worker.
struct Broker {
    shared: Arc<BrokerShared>,
    addr: SocketAddr,
    accept_stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
}

impl Broker {
    fn start(listen: &str) -> io::Result<Broker> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(BrokerShared {
            campaign: Mutex::new(None),
            finishing: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
        });
        let accept_stop = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&accept_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let shared = Arc::clone(&shared);
                            shared.connections.fetch_add(1, Ordering::SeqCst);
                            std::thread::spawn(move || {
                                handle_connection(stream, &shared);
                                shared.connections.fetch_sub(1, Ordering::SeqCst);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })
        };
        Ok(Broker {
            shared,
            addr,
            accept_stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// Drains the queue's workers: lease requests now answer `Shutdown`,
    /// and the broker waits briefly for connections to close before the
    /// accept thread stops.
    fn finish(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.finishing.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(3);
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.accept_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Broker {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.shutdown_inner();
        }
    }
}

/// One handler read attempt: a frame, nothing yet, or a dead connection.
enum HandlerRead {
    Msg(Message),
    Idle,
    Dead,
}

/// Reads one frame without blocking past the socket's read timeout, and
/// without consuming bytes on an idle tick (the `peek` distinguishes "no
/// data" from "mid-frame"). A protocol violation is `Dead`: the broker
/// drops corrupt peers and lets the lease sweep reclaim their jobs.
fn next_message(stream: &mut TcpStream) -> HandlerRead {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => HandlerRead::Dead,
        Ok(_) => match read_message(stream) {
            Ok(msg) => HandlerRead::Msg(msg),
            Err(_) => HandlerRead::Dead,
        },
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            HandlerRead::Idle
        }
        Err(_) => HandlerRead::Dead,
    }
}

/// One worker connection's lifetime on the broker side. Each connection is
/// one *session* — the unit of quarantine and of verification eligibility.
fn handle_connection(stream: TcpStream, shared: &BrokerShared) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let session = shared.next_session.fetch_add(1, Ordering::SeqCst) + 1;

    // Handshake: Hello within a grace window, or the connection is dropped
    // (port scanners, garbage writers, torn handshake frames).
    let handshake_deadline = Instant::now() + Duration::from_secs(10);
    let worker_name = loop {
        match next_message(&mut stream) {
            HandlerRead::Msg(Message::Hello { worker, .. }) => break worker,
            HandlerRead::Msg(_) | HandlerRead::Dead => return,
            HandlerRead::Idle => {
                if Instant::now() > handshake_deadline {
                    return;
                }
            }
        }
    };
    let welcome = Message::Welcome {
        broker_pid: std::process::id() as u64,
    };
    if write_message(&mut stream, &welcome).is_err() {
        return;
    }

    // Leases granted over *this* connection; requeued if it dies.
    let mut my_leases: Vec<u64> = Vec::new();
    loop {
        match next_message(&mut stream) {
            HandlerRead::Idle => continue,
            HandlerRead::Dead => break,
            HandlerRead::Msg(Message::LeaseRequest) => {
                if shared.finishing.load(Ordering::SeqCst) {
                    let _ = write_message(
                        &mut stream,
                        &Message::Shutdown {
                            reason: "service shutting down".to_string(),
                        },
                    );
                    break;
                }
                let reply = {
                    let mut guard = shared.campaign.lock().expect("campaign mutex");
                    match guard.as_mut() {
                        None => Message::NoWork { retry_ms: 100 },
                        Some(campaign) if campaign.quarantined.contains(&session) => {
                            Message::Reject {
                                reason: format!(
                                    "session {session} is quarantined; no further leases"
                                ),
                            }
                        }
                        Some(campaign) => {
                            campaign.sweep_expired();
                            match campaign.grant(session) {
                                Some((lease, job)) => {
                                    my_leases.push(lease);
                                    Message::Lease {
                                        lease,
                                        job: job as u64,
                                        smoke: campaign.smoke,
                                        spec_hash: campaign.spec_hash.clone(),
                                        spec_toml: campaign.spec_toml.clone(),
                                    }
                                }
                                None => Message::NoWork { retry_ms: 100 },
                            }
                        }
                    }
                };
                if write_message(&mut stream, &reply).is_err() {
                    break;
                }
            }
            HandlerRead::Msg(Message::Heartbeat { lease }) => {
                let mut guard = shared.campaign.lock().expect("campaign mutex");
                if let Some(campaign) = guard.as_mut() {
                    if let Some(state) = campaign.leases.get_mut(&lease) {
                        state.last_activity = Instant::now();
                        campaign.last_activity = Instant::now();
                    }
                }
            }
            HandlerRead::Msg(Message::RowDone {
                lease,
                job,
                spec_hash,
                mechanism,
                seed,
                row_fnv,
                stats,
            }) => {
                my_leases.retain(|&l| l != lease);
                let reply = {
                    let mut guard = shared.campaign.lock().expect("campaign mutex");
                    match guard.as_mut() {
                        None => Message::Reject {
                            reason: "no campaign is active".to_string(),
                        },
                        Some(campaign) => {
                            match campaign.row_done(
                                session,
                                &worker_name,
                                lease,
                                job,
                                &spec_hash,
                                &mechanism,
                                seed,
                                row_fnv,
                                &stats,
                            ) {
                                Ok(reply) => reply,
                                Err(e) => {
                                    eprintln!(
                                        "serve: journal append for job {job} from \
                                         {worker_name} failed: {e}"
                                    );
                                    Message::Reject {
                                        reason: format!("journal append failed: {e}"),
                                    }
                                }
                            }
                        }
                    }
                };
                if write_message(&mut stream, &reply).is_err() {
                    break;
                }
            }
            HandlerRead::Msg(_) => break,
        }
    }

    // Connection gone: return its outstanding leases to the queue.
    if !my_leases.is_empty() {
        let mut guard = shared.campaign.lock().expect("campaign mutex");
        if let Some(campaign) = guard.as_mut() {
            for lease in my_leases {
                campaign.revoke(lease, &format!("lost its connection ({worker_name})"));
            }
        }
    }
}

/// Dispatches one submission through the work queue: installs the campaign
/// (resuming from its journal), optionally runs a local worker fleet
/// connected over loopback, waits for the queue to drain, and merges the
/// journal into the canonical report.
fn dispatch_via_broker(
    spec: &CampaignSpec,
    dir: &Path,
    run: RunLength,
    hash: &str,
    options: &ServeOptions,
    broker: &Broker,
) -> Result<SubmissionStatus, DispatchError> {
    let fail = |reason: String| DispatchError::Failed(reason);
    let jobs = expand(spec);
    // Resume: rows already journaled (by an earlier broker life, or an
    // earlier non-listen dispatch) are done — never re-leased.
    let replay =
        JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| fail(e.to_string()))?;
    let done: HashSet<usize> = replay.rows.keys().copied().collect();
    if !done.is_empty() {
        eprintln!(
            "serve: resuming {}: {} of {} rows already checkpointed",
            spec.name,
            done.len(),
            jobs.len()
        );
    }
    let unsharded = Journal::path_for(dir, &spec.name, None);
    let journal = if unsharded.exists() {
        Journal::append(dir, &spec.name, None)
    } else {
        Journal::create(dir, &spec.name, hash, jobs.len(), None)
    }
    .map_err(|e| fail(format!("cannot open journal: {e}")))?;

    let queue: VecDeque<QueuedJob> = (0..jobs.len())
        .filter(|i| !done.contains(i))
        .map(|job| QueuedJob {
            job,
            attempts: 0,
            ready_at: Instant::now(),
        })
        .collect();
    {
        let mut guard = broker.shared.campaign.lock().expect("campaign mutex");
        *guard = Some(ActiveCampaign {
            spec_toml: spec.to_toml_string(),
            spec_hash: hash.to_string(),
            smoke: options.smoke,
            jobs: jobs.clone(),
            journal,
            done,
            queue,
            leases: HashMap::new(),
            next_lease: 1,
            rows_submitted: 0,
            last_activity: Instant::now(),
            lease_timeout: options.lease_timeout,
            backoff_base: options.supervise.backoff_base,
            backoff_cap: options.supervise.backoff_cap,
            verify_fraction: options.verify_fraction,
            verify_queue: VecDeque::new(),
            verify_leases: HashMap::new(),
            row_producer: HashMap::new(),
            quarantined: HashSet::new(),
            max_quarantined: options.max_quarantined,
            checksum_rejects: 0,
            rows_verified: 0,
            verify_mismatches: 0,
            verify_abandoned: 0,
        });
    }
    let uninstall = || {
        let mut guard = broker.shared.campaign.lock().expect("campaign mutex");
        *guard = None;
    };

    // Local dispatch: the same worker client, connected over loopback, so
    // mixed local+remote fleets drain one queue through one code path. The
    // supervisor's stop closure doubles as the lease-expiry sweep.
    let mut fleet_failures: Vec<String> = Vec::new();
    if options.workers > 0 {
        let heartbeat_ms = (options.lease_timeout.as_millis() as u64 / 4).clamp(50, 5_000);
        let addr = broker.addr.to_string();
        let mut make_command = |index: usize| {
            let mut cmd = Command::new(&options.binary);
            cmd.arg("worker")
                .arg("--connect")
                .arg(&addr)
                .arg("--worker-index")
                .arg(index.to_string())
                .arg("--heartbeat-ms")
                .arg(heartbeat_ms.to_string())
                .arg("--quiet")
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .stderr(Stdio::inherit());
            if let Some(cache) = &options.artifact_cache {
                cmd.arg("--artifact-cache").arg(cache);
            }
            cmd
        };
        let shared = Arc::clone(&broker.shared);
        let mut progress = move |_shard: usize| {
            let guard = shared.campaign.lock().expect("campaign mutex");
            guard.as_ref().map(|c| c.rows_submitted).unwrap_or(0)
        };
        let shared = Arc::clone(&broker.shared);
        let mut stop = move || {
            let mut guard = shared.campaign.lock().expect("campaign mutex");
            match guard.as_mut() {
                Some(campaign) => {
                    campaign.sweep_expired();
                    campaign.complete() || campaign.quarantine_breached()
                }
                None => true,
            }
        };
        let supervised = supervise_with_stop(
            options.workers,
            &mut make_command,
            &mut progress,
            &options.supervise,
            &mut |line| eprintln!("serve: {line}"),
            &mut stop,
        );
        if supervised.interrupted() {
            uninstall();
            return Err(fail(
                "interrupted before the submission finished".to_string(),
            ));
        }
        if !supervised.all_complete() {
            fleet_failures = supervised.failures();
        }
    }

    // Wait for remote workers to drain what's left. Give up after a long
    // silence — several lease timeouts with no grant, heartbeat, or row.
    let give_up = options
        .lease_timeout
        .saturating_mul(3)
        .max(Duration::from_secs(2));
    loop {
        let (complete, breached, idle_for) = {
            let mut guard = broker.shared.campaign.lock().expect("campaign mutex");
            let campaign = guard.as_mut().expect("campaign installed");
            campaign.sweep_expired();
            (
                campaign.complete(),
                campaign.quarantine_breached(),
                campaign.last_activity.elapsed(),
            )
        };
        if complete || breached {
            break;
        }
        if supervise::interrupted() {
            uninstall();
            return Err(fail(
                "interrupted before the submission finished".to_string(),
            ));
        }
        if idle_for >= give_up {
            fleet_failures.push(format!(
                "work queue idle for {idle_for:?} with jobs outstanding; giving up"
            ));
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // The integrity ledger for this dispatch, read out before the campaign
    // is uninstalled. The summary line is stable and greppable — CI's
    // chaos gate asserts on it.
    let (quarantined, breached, summary) = {
        let guard = broker.shared.campaign.lock().expect("campaign mutex");
        let campaign = guard.as_ref().expect("campaign installed");
        (
            campaign.quarantined.len(),
            campaign.quarantine_breached(),
            format!(
                "serve: integrity summary for {}: {} rows journaled, {} checksum rejects, \
                 {} rows re-verified, {} verification mismatches, {} samples abandoned, \
                 {} sessions quarantined",
                spec.name,
                campaign.rows_submitted,
                campaign.checksum_rejects,
                campaign.rows_verified,
                campaign.verify_mismatches,
                campaign.verify_abandoned,
                campaign.quarantined.len(),
            ),
        )
    };
    uninstall();
    eprintln!("{summary}");
    if breached {
        let bound = options.max_quarantined.unwrap_or(0);
        return Err(DispatchError::QuarantineExceeded(format!(
            "{quarantined} worker sessions quarantined for corrupt results, exceeding \
             --max-quarantined {bound}; refusing to grind on with a rotten fleet"
        )));
    }

    // Merge — identical to the local path: replay the journals, assemble
    // the canonical (or degraded) report.
    let replay =
        JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| fail(e.to_string()))?;
    if replay.completed() == jobs.len() {
        let stats: Vec<SimStats> = (0..jobs.len()).map(|i| replay.rows[&i]).collect();
        let report = assemble_report(spec, &jobs, run, options.smoke, stats);
        write_reports(&report, dir).map_err(|e| fail(format!("cannot write reports: {e}")))?;
        return Ok(SubmissionStatus::Done(dir.to_path_buf()));
    }
    if !options.allow_partial {
        return Err(fail(fleet_failures.join("; ")));
    }
    let stats: Vec<Option<SimStats>> = (0..jobs.len())
        .map(|i| replay.rows.get(&i).copied())
        .collect();
    let partial = assemble_partial_report(spec, &jobs, run, options.smoke, &stats, fleet_failures);
    let missing = partial.missing();
    write_partial_reports(&partial, dir)
        .map_err(|e| fail(format!("cannot write partial reports: {e}")))?;
    Ok(SubmissionStatus::Partial {
        dir: dir.to_path_buf(),
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spool_scan_sees_only_toml_in_name_order() {
        let dir = temp_dir("scan");
        std::fs::write(dir.join("b.toml"), "x").unwrap();
        std::fs::write(dir.join("a.toml"), "x").unwrap();
        std::fs::write(dir.join("c.toml.done"), "x").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        let found = scan_spool(&dir, 0).unwrap();
        let names: Vec<_> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a.toml", "b.toml"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn settle_window_defers_fresh_files() {
        let dir = temp_dir("settle");
        std::fs::write(dir.join("fresh.toml"), "x").unwrap();
        // A wide window hides the just-written file; no window shows it.
        assert!(scan_spool(&dir, 60_000).unwrap().is_empty());
        assert_eq!(scan_spool(&dir, 0).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_submission_fails_and_is_marked() {
        let dir = temp_dir("badspec");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(spool.join("bad.toml"), "not a spec at all = [").unwrap();
        let options = ServeOptions {
            binary: PathBuf::from("/nonexistent"),
            spool: spool.clone(),
            out: dir.join("out"),
            once: true,
            ..ServeOptions::default()
        };
        let outcomes = serve(&options, &mut |_| {}).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_err());
        assert!(spool.join("bad.toml.failed").exists());
        let note = std::fs::read_to_string(spool.join("bad.toml.error")).unwrap();
        assert!(note.contains("invalid spec"), "{note}");
        assert!(!spool.join("bad.toml").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resubmission_clears_stale_markers() {
        let dir = temp_dir("stale");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        // Leftovers from an imaginary earlier failed attempt.
        std::fs::write(spool.join("job.toml.failed"), "old run").unwrap();
        std::fs::write(spool.join("job.toml.error"), "old reason").unwrap();
        std::fs::write(spool.join("job.toml.done"), "even older").unwrap();
        std::fs::write(spool.join("job.toml"), "still not a spec = [").unwrap();
        let options = ServeOptions {
            binary: PathBuf::from("/nonexistent"),
            spool: spool.clone(),
            out: dir.join("out"),
            once: true,
            ..ServeOptions::default()
        };
        let outcomes = serve(&options, &mut |_| {}).unwrap();
        assert!(outcomes[0].result.is_err());
        // Exactly one marker family survives: this run's.
        assert!(spool.join("job.toml.failed").exists());
        let note = std::fs::read_to_string(spool.join("job.toml.error")).unwrap();
        assert!(note.contains("invalid spec"), "stale note kept: {note}");
        assert!(!spool.join("job.toml.done").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_lock_blocks_live_owner_and_reclaims_dead_one() {
        let dir = temp_dir("lock");
        // Held by this (live) process: a second acquire must refuse.
        let lock = SpoolLock::acquire(&dir, None).unwrap();
        let err = SpoolLock::acquire(&dir, None).unwrap_err();
        assert!(err.to_string().contains("already served"), "{err}");
        drop(lock);
        assert!(!dir.join(SPOOL_LOCK_NAME).exists(), "lock not released");

        // A lock whose owner is long dead is reclaimed. Pid 0 is never a
        // schedulable process on Linux (and /proc/0 does not exist).
        std::fs::write(dir.join(SPOOL_LOCK_NAME), "0").unwrap();
        let lock = SpoolLock::acquire(&dir, None).unwrap();
        let owner = std::fs::read_to_string(dir.join(SPOOL_LOCK_NAME)).unwrap();
        assert_eq!(owner, std::process::id().to_string());
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_spool_lock_is_stolen_past_the_threshold() {
        let dir = temp_dir("lock-steal");
        // A live owner's lock: without the escape hatch it always blocks...
        let lock = SpoolLock::acquire(&dir, None).unwrap();
        let err = SpoolLock::acquire(&dir, Some(Duration::from_secs(3600))).unwrap_err();
        assert!(err.to_string().contains("already served"), "{err}");

        // ...but once the lock file's mtime is older than the threshold it
        // is stolen even though the owner pid is alive (the off-procfs
        // "assume live" case this flag exists for).
        std::thread::sleep(Duration::from_millis(60));
        let stolen = SpoolLock::acquire(&dir, Some(Duration::from_millis(50))).unwrap();
        let owner = std::fs::read_to_string(dir.join(SPOOL_LOCK_NAME)).unwrap();
        assert_eq!(owner, std::process::id().to_string());
        drop(stolen);
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refreshed_spool_lock_is_not_stolen() {
        let dir = temp_dir("lock-refresh");
        let lock = SpoolLock::acquire(&dir, None).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        // The serving loop refreshes the lock each scan; a refreshed lock
        // is younger than the threshold and must survive.
        lock.refresh();
        let err = SpoolLock::acquire(&dir, Some(Duration::from_millis(50))).unwrap_err();
        assert!(err.to_string().contains("already served"), "{err}");
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // ---- result-integrity unit tests: the broker-side checksum gate, the
    // sampled re-verification loop, and quarantine -------------------------

    use crate::checkpoint::stats_to_array;

    const INTEGRITY_SPEC: &str = "name = \"integrity\"
workloads = [\"nutch\"]
mechanisms = [\"fdip\", \"boomerang\"]

[run]
trace_blocks = 2000
warmup_blocks = 400
";

    /// A broker-side campaign over [`INTEGRITY_SPEC`] with a real journal in
    /// a temp dir; `verify_fraction` as given, everything else defaulted.
    fn integrity_campaign(tag: &str, verify_fraction: f64) -> (ActiveCampaign, PathBuf) {
        let dir = temp_dir(&format!("integrity-{tag}"));
        let spec = CampaignSpec::from_toml_str(INTEGRITY_SPEC).unwrap();
        let jobs = expand(&spec);
        let hash = spec_hash(&spec, spec.run, false);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        let queue = (0..jobs.len())
            .map(|job| QueuedJob {
                job,
                attempts: 0,
                ready_at: Instant::now(),
            })
            .collect();
        let campaign = ActiveCampaign {
            spec_toml: INTEGRITY_SPEC.to_string(),
            spec_hash: hash,
            smoke: false,
            jobs,
            journal,
            done: HashSet::new(),
            queue,
            leases: HashMap::new(),
            next_lease: 1,
            rows_submitted: 0,
            last_activity: Instant::now(),
            lease_timeout: Duration::from_secs(60),
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(10),
            verify_fraction,
            verify_queue: VecDeque::new(),
            verify_leases: HashMap::new(),
            row_producer: HashMap::new(),
            quarantined: HashSet::new(),
            max_quarantined: None,
            checksum_rejects: 0,
            rows_verified: 0,
            verify_mismatches: 0,
            verify_abandoned: 0,
        };
        (campaign, dir)
    }

    /// Takes one lease for `session` and submits the granted job with the
    /// given stats (checksummed correctly); returns the job index and the
    /// broker's answer.
    fn submit(campaign: &mut ActiveCampaign, session: u64, stats: &[u64]) -> (usize, Message) {
        let (lease, index) = campaign.grant(session).expect("a lease to submit under");
        let (mechanism, seed) = {
            let job = &campaign.jobs[index];
            (mechanism_token(job.mechanism), job.seed)
        };
        let fnv = row_checksum(index, &mechanism, seed, stats);
        let answer = campaign
            .row_done(
                session,
                "test-worker",
                lease,
                index as u64,
                &campaign.spec_hash.clone(),
                &mechanism,
                seed,
                fnv,
                stats,
            )
            .unwrap();
        (index, answer)
    }

    #[test]
    fn corrupt_row_quarantines_the_submitter_and_requeues_the_job() {
        let (mut campaign, dir) = integrity_campaign("corrupt", 0.0);
        let stats = stats_to_array(&SimStats::default());
        let (lease, index) = campaign.grant(1).unwrap();
        let job = &campaign.jobs[index];
        let (mechanism, seed) = (mechanism_token(job.mechanism), job.seed);
        // Checksum over the true stats, then damage the payload — exactly
        // what the `row-corrupt` fault injects in a real worker.
        let fnv = row_checksum(index, &mechanism, seed, &stats);
        let mut damaged = stats;
        damaged[0] ^= 1;
        let answer = campaign
            .row_done(
                1,
                "w0",
                lease,
                index as u64,
                &campaign.spec_hash.clone(),
                &mechanism,
                seed,
                fnv,
                &damaged,
            )
            .unwrap();
        let Message::Reject { reason } = answer else {
            panic!("a corrupt row must be rejected, got {answer:?}");
        };
        assert!(reason.contains("row_fnv"), "{reason}");
        assert_eq!(campaign.checksum_rejects, 1);
        assert!(campaign.quarantined.contains(&1));
        assert!(
            !campaign.done.contains(&index),
            "the bad row must not count"
        );
        assert!(
            campaign.queue.iter().any(|q| q.job == index),
            "the job must be requeued for an honest session"
        );
        // The quarantined session gets no further leases through the
        // connection handler; a *new* session drains the queue — including
        // the requeued job — fine.
        while !campaign.rows_complete() {
            let (_, answer) = submit(&mut campaign, 2, &stats);
            assert!(matches!(answer, Message::RowAck { .. }), "{answer:?}");
        }
        assert!(campaign.done.contains(&index));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verification_mismatch_quarantines_the_producer_and_requeues_its_rows() {
        let (mut campaign, dir) = integrity_campaign("verify-bad", 1.0);
        let total = campaign.jobs.len();
        // Session 1 produces every row — with fraction 1.0 each lands in the
        // verification queue.
        let stats = stats_to_array(&SimStats::default());
        for _ in 0..total {
            let (_, answer) = submit(&mut campaign, 1, &stats);
            assert!(matches!(answer, Message::RowAck { .. }), "{answer:?}");
        }
        assert!(campaign.rows_complete());
        assert_eq!(campaign.verify_queue.len(), total);
        // The producer is never handed its own rows to re-verify.
        assert!(campaign.grant(1).is_none(), "producer must not self-verify");
        // Session 2 re-runs the first sample and contradicts it.
        let (lease, index) = campaign.grant(2).expect("a verification lease");
        let job = &campaign.jobs[index];
        let (mechanism, seed) = (mechanism_token(job.mechanism), job.seed);
        let mut contradicting = stats;
        contradicting[1] = contradicting[1].wrapping_add(7);
        let fnv = row_checksum(index, &mechanism, seed, &contradicting);
        let answer = campaign
            .row_done(
                2,
                "w1",
                lease,
                index as u64,
                &campaign.spec_hash.clone(),
                &mechanism,
                seed,
                fnv,
                &contradicting,
            )
            .unwrap();
        // The verifier's work was sound — it is acked, the *producer* is
        // quarantined and all its rows go back to the queue.
        assert!(matches!(answer, Message::RowAck { .. }), "{answer:?}");
        assert_eq!(campaign.verify_mismatches, 1);
        assert!(campaign.quarantined.contains(&1));
        assert!(!campaign.quarantined.contains(&2));
        assert_eq!(
            campaign.done.len(),
            0,
            "every row by the quarantined producer is suspect"
        );
        assert_eq!(campaign.queue.len(), total);
        assert!(!campaign.quarantine_breached());
        campaign.max_quarantined = Some(0);
        assert!(campaign.quarantine_breached());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matching_reverification_counts_and_completes() {
        let (mut campaign, dir) = integrity_campaign("verify-ok", 1.0);
        let total = campaign.jobs.len();
        let stats = stats_to_array(&SimStats::default());
        for _ in 0..total {
            submit(&mut campaign, 1, &stats);
        }
        assert!(!campaign.complete(), "verification is still outstanding");
        // Session 2 re-runs every sample with matching stats.
        while let Some((lease, index)) = campaign.grant(2) {
            let job = &campaign.jobs[index];
            let (mechanism, seed) = (mechanism_token(job.mechanism), job.seed);
            let fnv = row_checksum(index, &mechanism, seed, &stats);
            let answer = campaign
                .row_done(
                    2,
                    "w1",
                    lease,
                    index as u64,
                    &campaign.spec_hash.clone(),
                    &mechanism,
                    seed,
                    fnv,
                    &stats,
                )
                .unwrap();
            assert!(matches!(answer, Message::RowAck { .. }), "{answer:?}");
        }
        assert_eq!(campaign.rows_verified as usize, total);
        assert_eq!(campaign.verify_mismatches, 0);
        assert!(campaign.quarantined.is_empty());
        assert!(campaign.complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verification_sampling_is_deterministic_and_respects_the_fraction() {
        let (all, dir_a) = integrity_campaign("sample-all", 1.0);
        let (none, dir_b) = integrity_campaign("sample-none", 0.0);
        let (half, dir_c) = integrity_campaign("sample-half", 0.5);
        let total = all.jobs.len();
        assert_eq!(
            (0..total)
                .filter(|&i| all.sampled_for_verification(i))
                .count(),
            total
        );
        assert_eq!(
            (0..total)
                .filter(|&i| none.sampled_for_verification(i))
                .count(),
            0
        );
        let drawn: Vec<usize> = (0..total)
            .filter(|&i| half.sampled_for_verification(i))
            .collect();
        let again: Vec<usize> = (0..total)
            .filter(|&i| half.sampled_for_verification(i))
            .collect();
        assert_eq!(drawn, again, "the draw must be a pure function of the hash");
        for dir in [dir_a, dir_b, dir_c] {
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn abandoned_verification_samples_unblock_a_lone_session() {
        let (mut campaign, dir) = integrity_campaign("abandon", 1.0);
        campaign.lease_timeout = Duration::from_millis(20);
        let total = campaign.jobs.len();
        let stats = stats_to_array(&SimStats::default());
        for _ in 0..total {
            submit(&mut campaign, 1, &stats);
        }
        // Only the producing session exists: nobody can take the samples.
        assert!(campaign.grant(1).is_none());
        assert!(!campaign.complete());
        std::thread::sleep(Duration::from_millis(30));
        campaign.sweep_expired();
        assert_eq!(campaign.verify_abandoned as usize, total);
        assert!(
            campaign.complete(),
            "an unverifiable sample must not deadlock the campaign"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
