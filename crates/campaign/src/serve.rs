//! `boomerang-sim serve`: a spool-directory campaign service.
//!
//! The service watches a spool directory for campaign spec submissions
//! (`*.toml` files). Each submission is dispatched across `workers` child
//! processes of the simulator binary itself, sharded over the canonical job
//! expansion (`run --shard i/N`); every worker checkpoints its rows to its
//! own journal in the submission's output directory, so a crashed or killed
//! worker loses nothing but its in-flight job. When all workers exit, the
//! collector replays the journals — *without* regenerating any workloads —
//! assembles the canonical report, and writes the same `<name>.json` /
//! `<name>.csv` bytes a one-shot `run` would have produced.
//!
//! Processed submissions are renamed `<file>.done` (or `<file>.failed`, with
//! the reason in `<file>.error`), so the spool is also the service's queue
//! state: resubmitting is just dropping the file in again.

use crate::checkpoint::{spec_hash, JournalReplay};
use crate::engine::assemble_report;
use crate::expand::expand;
use crate::sink::write_reports;
use crate::spec::CampaignSpec;
use boomerang::RunLength;
use frontend::SimStats;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// How the service runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The simulator binary to spawn workers from (normally
    /// `std::env::current_exe()`; tests point it at the built binary).
    pub binary: PathBuf,
    /// Directory watched for `*.toml` spec submissions.
    pub spool: PathBuf,
    /// Root of the per-submission output directories.
    pub out: PathBuf,
    /// Worker *processes* per submission.
    pub workers: usize,
    /// Worker *threads* per process (`--jobs`; 0 = auto).
    pub jobs: usize,
    /// Run every submission at smoke length.
    pub smoke: bool,
    /// Shared content-addressed workload artifact cache for the workers.
    pub artifact_cache: Option<PathBuf>,
    /// Process the submissions present now, then exit (instead of polling).
    pub once: bool,
    /// Poll interval between spool scans in milliseconds.
    pub poll_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            binary: PathBuf::new(),
            spool: PathBuf::new(),
            out: PathBuf::new(),
            workers: 2,
            jobs: 0,
            smoke: false,
            artifact_cache: None,
            once: false,
            poll_ms: 500,
        }
    }
}

/// What happened to one submission.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The submission file (its original spool path).
    pub submission: PathBuf,
    /// The campaign name, when the spec parsed far enough to have one.
    pub campaign: String,
    /// The output directory on success, the reason on failure.
    pub result: Result<PathBuf, String>,
}

/// Runs the service loop. In `--once` mode processes the submissions present
/// and returns their outcomes; otherwise polls forever (outcomes are
/// reported through `report` as they happen in both modes).
pub fn serve(
    options: &ServeOptions,
    report: &mut dyn FnMut(&ServeOutcome),
) -> io::Result<Vec<ServeOutcome>> {
    std::fs::create_dir_all(&options.spool)?;
    std::fs::create_dir_all(&options.out)?;
    let mut outcomes = Vec::new();
    loop {
        for submission in scan_spool(&options.spool)? {
            let outcome = process_submission(&submission, options);
            finalize_submission(&submission, &outcome);
            report(&outcome);
            outcomes.push(outcome);
        }
        if options.once {
            return Ok(outcomes);
        }
        std::thread::sleep(std::time::Duration::from_millis(options.poll_ms.max(10)));
    }
}

/// The `*.toml` submissions currently in the spool, in name order.
fn scan_spool(spool: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(spool)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "toml") && path.is_file() {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Marks a submission processed: `<file>.done` on success, `<file>.failed`
/// plus a `<file>.error` note on failure.
fn finalize_submission(submission: &Path, outcome: &ServeOutcome) {
    let suffix = if outcome.result.is_ok() {
        "done"
    } else {
        "failed"
    };
    let mut renamed = submission.as_os_str().to_owned();
    renamed.push(format!(".{suffix}"));
    if let Err(e) = std::fs::rename(submission, &renamed) {
        eprintln!(
            "serve: cannot rename {} to .{suffix}: {e}",
            submission.display()
        );
    }
    if let Err(reason) = &outcome.result {
        let mut note = submission.as_os_str().to_owned();
        note.push(".error");
        let _ = std::fs::write(note, format!("{reason}\n"));
    }
}

fn process_submission(submission: &Path, options: &ServeOptions) -> ServeOutcome {
    let mut outcome = ServeOutcome {
        submission: submission.to_path_buf(),
        campaign: String::new(),
        result: Err(String::new()),
    };
    let text = match std::fs::read_to_string(submission) {
        Ok(text) => text,
        Err(e) => {
            outcome.result = Err(format!("cannot read submission: {e}"));
            return outcome;
        }
    };
    let spec = match CampaignSpec::from_toml_str(&text) {
        Ok(spec) => spec,
        Err(e) => {
            outcome.result = Err(format!("invalid spec: {e}"));
            return outcome;
        }
    };
    outcome.campaign = spec.name.clone();

    let stem = submission
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("submission");
    let dir = options.out.join(stem);
    let run = if options.smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let hash = spec_hash(&spec, run, options.smoke);

    // A previous half-processed submission with the same spec resumes; a
    // different spec under the same stem is refused, not clobbered.
    match JournalReplay::existing_hash(&dir, &spec.name) {
        Ok(Some(existing)) if existing != hash => {
            outcome.result = Err(format!(
                "output directory {} already holds campaign `{}` with spec hash {existing}, \
                 which does not match this submission's {hash}",
                dir.display(),
                spec.name
            ));
            return outcome;
        }
        Ok(_) => {}
        Err(e) => {
            outcome.result = Err(format!("cannot inspect output directory: {e}"));
            return outcome;
        }
    }

    let workers = options.workers.max(1);
    outcome.result = dispatch_and_merge(submission, &spec, &dir, run, &hash, workers, options)
        .map(|()| dir.clone());
    outcome
}

/// Spawns the sharded workers, waits for them, then merges their journals
/// into the canonical report.
fn dispatch_and_merge(
    submission: &Path,
    spec: &CampaignSpec,
    dir: &Path,
    run: RunLength,
    hash: &str,
    workers: usize,
    options: &ServeOptions,
) -> Result<(), String> {
    let mut children = Vec::new();
    for shard in 0..workers {
        let mut cmd = Command::new(&options.binary);
        cmd.arg("run")
            .arg(submission)
            .arg("--out")
            .arg(dir)
            .arg("--shard")
            .arg(format!("{shard}/{workers}"))
            .arg("--resume")
            .arg("--quiet")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if options.jobs > 0 {
            cmd.arg("--jobs").arg(options.jobs.to_string());
        }
        if options.smoke {
            cmd.arg("--smoke");
        }
        if let Some(cache) = &options.artifact_cache {
            cmd.arg("--artifact-cache").arg(cache);
        }
        match cmd.spawn() {
            Ok(child) => children.push(child),
            Err(e) => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(format!("cannot spawn worker shard {shard}: {e}"));
            }
        }
    }
    let mut failures = Vec::new();
    for (shard, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("worker shard {shard} exited with {status}")),
            Err(e) => failures.push(format!("cannot wait for worker shard {shard}: {e}")),
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }

    let jobs = expand(spec);
    let replay = JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| e.to_string())?;
    if replay.completed() != jobs.len() {
        return Err(format!(
            "workers exited cleanly but only {} of {} jobs are checkpointed",
            replay.completed(),
            jobs.len()
        ));
    }
    let stats: Vec<SimStats> = (0..jobs.len()).map(|i| replay.rows[&i]).collect();
    let report = assemble_report(spec, &jobs, run, options.smoke, stats);
    write_reports(&report, dir).map_err(|e| format!("cannot write reports: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spool_scan_sees_only_toml_in_name_order() {
        let dir = temp_dir("scan");
        std::fs::write(dir.join("b.toml"), "x").unwrap();
        std::fs::write(dir.join("a.toml"), "x").unwrap();
        std::fs::write(dir.join("c.toml.done"), "x").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        let found = scan_spool(&dir).unwrap();
        let names: Vec<_> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a.toml", "b.toml"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_submission_fails_and_is_marked() {
        let dir = temp_dir("badspec");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(spool.join("bad.toml"), "not a spec at all = [").unwrap();
        let options = ServeOptions {
            binary: PathBuf::from("/nonexistent"),
            spool: spool.clone(),
            out: dir.join("out"),
            once: true,
            ..ServeOptions::default()
        };
        let outcomes = serve(&options, &mut |_| {}).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_err());
        assert!(spool.join("bad.toml.failed").exists());
        let note = std::fs::read_to_string(spool.join("bad.toml.error")).unwrap();
        assert!(note.contains("invalid spec"), "{note}");
        assert!(!spool.join("bad.toml").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
