//! `boomerang-sim serve`: a spool-directory campaign service.
//!
//! The service watches a spool directory for campaign spec submissions
//! (`*.toml` files). Each submission is dispatched across `workers` child
//! processes of the simulator binary itself, sharded over the canonical job
//! expansion (`run --shard i/N`); every worker checkpoints its rows to its
//! own journal in the submission's output directory, so a crashed or killed
//! worker loses nothing but its in-flight job. The workers run under the
//! [`crate::supervise`] poll loop: a crashed shard is restarted with
//! exponential backoff up to the retry budget, a shard whose journal stops
//! growing is killed as hung (the kill consumes a retry), and a Ctrl-C on
//! the service kills every child — no orphans. When the fleet completes,
//! the collector replays the journals — *without* regenerating any
//! workloads — assembles the canonical report, and writes the same
//! `<name>.json` / `<name>.csv` bytes a one-shot `run` would have produced.
//!
//! If a shard exhausts its retries, the default is to fail the submission;
//! with [`ServeOptions::allow_partial`] the collector instead assembles a
//! degraded report from whatever rows are checkpointed, with the missing
//! rows explicitly marked (see [`crate::engine::PartialReport`]), and marks
//! the submission `.partial`.
//!
//! Processed submissions are renamed `<file>.done` (or `<file>.partial`, or
//! `<file>.failed` with the reason in `<file>.error`), so the spool is also
//! the service's queue state: resubmitting is just dropping the file in
//! again — stale markers from an earlier attempt are cleared first. A lock
//! file (`.boomerang-serve.lock`, holding the owner's pid) keeps two serve
//! processes from double-processing one spool; a lock whose owner is dead
//! is reclaimed.

use crate::checkpoint::{spec_hash, Journal, JournalReplay};
use crate::engine::{assemble_partial_report, assemble_report};
use crate::expand::expand;
use crate::fault;
use crate::sink::{write_partial_reports, write_reports};
use crate::spec::CampaignSpec;
use crate::supervise::{self, supervise, SuperviseOptions};
use boomerang::RunLength;
use frontend::SimStats;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

/// Name of the spool lock file (satellite: two serve processes must not
/// double-process one spool).
pub const SPOOL_LOCK_NAME: &str = ".boomerang-serve.lock";

/// How the service runs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The simulator binary to spawn workers from (normally
    /// `std::env::current_exe()`; tests point it at the built binary).
    pub binary: PathBuf,
    /// Directory watched for `*.toml` spec submissions.
    pub spool: PathBuf,
    /// Root of the per-submission output directories.
    pub out: PathBuf,
    /// Worker *processes* per submission.
    pub workers: usize,
    /// Worker *threads* per process (`--jobs`; 0 = auto).
    pub jobs: usize,
    /// Run every submission at smoke length.
    pub smoke: bool,
    /// Shared content-addressed workload artifact cache for the workers.
    pub artifact_cache: Option<PathBuf>,
    /// Process the submissions present now, then exit (instead of polling).
    pub once: bool,
    /// Poll interval between spool scans in milliseconds.
    pub poll_ms: u64,
    /// Worker retry/backoff/timeout policy.
    pub supervise: SuperviseOptions,
    /// When a shard exhausts its retries, assemble a degraded report from
    /// the checkpointed rows instead of failing the submission.
    pub allow_partial: bool,
    /// Skip submissions modified within the last this-many milliseconds
    /// (still being written). 0 disables the settle window.
    pub settle_ms: u64,
    /// Stop after this many spool scans (0 = unlimited). A testing handle:
    /// lets a polling serve loop terminate deterministically.
    pub max_scans: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            binary: PathBuf::new(),
            spool: PathBuf::new(),
            out: PathBuf::new(),
            workers: 2,
            jobs: 0,
            smoke: false,
            artifact_cache: None,
            once: false,
            poll_ms: 500,
            supervise: SuperviseOptions::default(),
            allow_partial: false,
            settle_ms: 0,
            max_scans: 0,
        }
    }
}

/// How a submission ended well.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmissionStatus {
    /// The canonical report was written to this directory.
    Done(PathBuf),
    /// Retries were exhausted but `allow_partial` assembled a degraded
    /// report: `missing` jobs have no checkpointed rows.
    Partial {
        /// The output directory holding the degraded report.
        dir: PathBuf,
        /// Number of jobs with no statistics.
        missing: usize,
    },
}

/// What happened to one submission.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// The submission file (its original spool path).
    pub submission: PathBuf,
    /// The campaign name, when the spec parsed far enough to have one.
    pub campaign: String,
    /// The terminal status on success, the reason on failure.
    pub result: Result<SubmissionStatus, String>,
}

/// Holds the spool lock for the lifetime of the serve loop; dropping it
/// releases the lock file.
#[derive(Debug)]
struct SpoolLock {
    path: PathBuf,
}

impl SpoolLock {
    /// Acquires the lock, reclaiming it from a dead owner. Refuses (with an
    /// [`io::ErrorKind::WouldBlock`]-flavored error) while a live process
    /// holds it.
    fn acquire(spool: &Path) -> io::Result<SpoolLock> {
        let path = spool.join(SPOOL_LOCK_NAME);
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    use std::io::Write as _;
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(SpoolLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    if let Some(pid) = owner {
                        if pid_is_live(pid) {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "spool {} is already served by process {pid} \
                                     (lock file {})",
                                    spool.display(),
                                    path.display()
                                ),
                            ));
                        }
                    }
                    // Dead or unreadable owner: reclaim and retry the
                    // create_new (another process may be racing us for it —
                    // exactly one create_new wins).
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("cannot acquire spool lock {}", path.display()),
        ))
    }
}

impl Drop for SpoolLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Whether a pid refers to a live process. On Linux this reads `/proc`;
/// elsewhere the check is conservative (assume live), so stale locks need a
/// manual remove but live ones are never stolen.
fn pid_is_live(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Runs the service loop. In `--once` mode processes the submissions present
/// and returns their outcomes; otherwise polls until interrupted or the scan
/// budget (`max_scans`) runs out (outcomes are reported through `report` as
/// they happen in both modes).
///
/// A failed spool scan (transient I/O error, injected or real) is logged and
/// the loop keeps polling — it no longer kills the service.
pub fn serve(
    options: &ServeOptions,
    report: &mut dyn FnMut(&ServeOutcome),
) -> io::Result<Vec<ServeOutcome>> {
    std::fs::create_dir_all(&options.spool)?;
    std::fs::create_dir_all(&options.out)?;
    let _lock = SpoolLock::acquire(&options.spool)?;
    let mut outcomes = Vec::new();
    let mut scans: u64 = 0;
    loop {
        let submissions = match scan_spool(&options.spool, options.settle_ms) {
            Ok(submissions) => submissions,
            Err(e) => {
                eprintln!("serve: spool scan failed ({e}); retrying");
                Vec::new()
            }
        };
        scans += 1;
        for submission in submissions {
            let outcome = process_submission(&submission, options);
            finalize_submission(&submission, &outcome);
            report(&outcome);
            outcomes.push(outcome);
            if supervise::interrupted() {
                break;
            }
        }
        if options.once
            || supervise::interrupted()
            || (options.max_scans > 0 && scans >= options.max_scans)
        {
            return Ok(outcomes);
        }
        std::thread::sleep(std::time::Duration::from_millis(options.poll_ms.max(10)));
    }
}

/// The `*.toml` submissions currently in the spool, in name order. Files
/// modified within the settle window are skipped — they are still being
/// written; a later scan picks them up once their mtime is stable.
fn scan_spool(spool: &Path, settle_ms: u64) -> io::Result<Vec<PathBuf>> {
    if fault::fail_this_spool_scan() {
        return Err(io::Error::other("injected spool scan fault"));
    }
    let mut files = Vec::new();
    for entry in std::fs::read_dir(spool)? {
        let path = entry?.path();
        if path.extension().is_none_or(|e| e != "toml") || !path.is_file() {
            continue;
        }
        if settle_ms > 0 {
            let settled = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| mtime.elapsed().ok())
                .is_some_and(|age| age >= Duration::from_millis(settle_ms));
            if !settled {
                continue;
            }
        }
        files.push(path);
    }
    files.sort();
    Ok(files)
}

/// The marker suffixes [`finalize_submission`] manages.
const MARKER_SUFFIXES: [&str; 4] = ["done", "partial", "failed", "error"];

/// Marks a submission processed: `<file>.done` on success, `<file>.partial`
/// for a degraded report, `<file>.failed` plus a `<file>.error` note on
/// failure. Idempotent across resubmissions: stale markers from a previous
/// attempt are cleared first, so a resubmitted spec can never sit beside a
/// leftover `.failed`/`.error` that contradicts its fresh outcome.
fn finalize_submission(submission: &Path, outcome: &ServeOutcome) {
    for suffix in MARKER_SUFFIXES {
        let mut stale = submission.as_os_str().to_owned();
        stale.push(format!(".{suffix}"));
        let _ = std::fs::remove_file(&stale);
    }
    let suffix = match &outcome.result {
        Ok(SubmissionStatus::Done(_)) => "done",
        Ok(SubmissionStatus::Partial { .. }) => "partial",
        Err(_) => "failed",
    };
    let mut renamed = submission.as_os_str().to_owned();
    renamed.push(format!(".{suffix}"));
    if let Err(e) = std::fs::rename(submission, &renamed) {
        eprintln!(
            "serve: cannot rename {} to .{suffix}: {e}",
            submission.display()
        );
    }
    if let Err(reason) = &outcome.result {
        let mut note = submission.as_os_str().to_owned();
        note.push(".error");
        let _ = std::fs::write(note, format!("{reason}\n"));
    }
}

fn process_submission(submission: &Path, options: &ServeOptions) -> ServeOutcome {
    let mut outcome = ServeOutcome {
        submission: submission.to_path_buf(),
        campaign: String::new(),
        result: Err(String::new()),
    };
    let text = match std::fs::read_to_string(submission) {
        Ok(text) => text,
        Err(e) => {
            outcome.result = Err(format!("cannot read submission: {e}"));
            return outcome;
        }
    };
    let spec = match CampaignSpec::from_toml_str(&text) {
        Ok(spec) => spec,
        Err(e) => {
            outcome.result = Err(format!("invalid spec: {e}"));
            return outcome;
        }
    };
    outcome.campaign = spec.name.clone();

    let stem = submission
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("submission");
    let dir = options.out.join(stem);
    let run = if options.smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let hash = spec_hash(&spec, run, options.smoke);

    // A previous half-processed submission with the same spec resumes; a
    // different spec under the same stem is refused, not clobbered.
    match JournalReplay::existing_hash(&dir, &spec.name) {
        Ok(Some(existing)) if existing != hash => {
            outcome.result = Err(format!(
                "output directory {} already holds campaign `{}` with spec hash {existing}, \
                 which does not match this submission's {hash}",
                dir.display(),
                spec.name
            ));
            return outcome;
        }
        Ok(_) => {}
        Err(e) => {
            outcome.result = Err(format!("cannot inspect output directory: {e}"));
            return outcome;
        }
    }

    let workers = options.workers.max(1);
    outcome.result = dispatch_and_merge(submission, &spec, &dir, run, &hash, workers, options);
    outcome
}

/// Runs the sharded workers under supervision, then merges their journals
/// into the canonical report — or, when retries are exhausted and partial
/// output is allowed, into a degraded report over the checkpointed rows.
fn dispatch_and_merge(
    submission: &Path,
    spec: &CampaignSpec,
    dir: &Path,
    run: RunLength,
    hash: &str,
    workers: usize,
    options: &ServeOptions,
) -> Result<SubmissionStatus, String> {
    let mut make_command = |shard: usize| {
        let mut cmd = Command::new(&options.binary);
        cmd.arg("run")
            .arg(submission)
            .arg("--out")
            .arg(dir)
            .arg("--shard")
            .arg(format!("{shard}/{workers}"))
            .arg("--resume")
            .arg("--quiet")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if options.jobs > 0 {
            cmd.arg("--jobs").arg(options.jobs.to_string());
        }
        if options.smoke {
            cmd.arg("--smoke");
        }
        if let Some(cache) = &options.artifact_cache {
            cmd.arg("--artifact-cache").arg(cache);
        }
        cmd
    };
    // The per-shard progress probe: the shard's journal grows (monotonically,
    // append-only) with every checkpointed row. The supervisor re-reads the
    // baseline at each spawn, so a resume that truncates a torn tail cannot
    // masquerade as progress.
    let shard_arg = |shard: usize| {
        if workers > 1 {
            Some((shard, workers))
        } else {
            None
        }
    };
    let mut progress = |shard: usize| {
        std::fs::metadata(Journal::path_for(dir, &spec.name, shard_arg(shard)))
            .map(|m| m.len())
            .unwrap_or(0)
    };
    let supervised = supervise(
        workers,
        &mut make_command,
        &mut progress,
        &options.supervise,
        &mut |line| eprintln!("serve: {line}"),
    );

    if supervised.interrupted() {
        return Err("interrupted before the submission finished".to_string());
    }

    let jobs = expand(spec);
    if supervised.all_complete() {
        let replay =
            JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| e.to_string())?;
        if replay.completed() != jobs.len() {
            return Err(format!(
                "workers exited cleanly but only {} of {} jobs are checkpointed",
                replay.completed(),
                jobs.len()
            ));
        }
        let stats: Vec<SimStats> = (0..jobs.len()).map(|i| replay.rows[&i]).collect();
        let report = assemble_report(spec, &jobs, run, options.smoke, stats);
        write_reports(&report, dir).map_err(|e| format!("cannot write reports: {e}"))?;
        return Ok(SubmissionStatus::Done(dir.to_path_buf()));
    }

    let failures = supervised.failures();
    if !options.allow_partial {
        return Err(failures.join("; "));
    }

    // Graceful degradation: whatever rows the dead shards checkpointed are
    // real (the journal only holds finished jobs), so report them and mark
    // the holes instead of discarding everything.
    let replay = JournalReplay::load(dir, &spec.name, hash, &jobs).map_err(|e| e.to_string())?;
    let stats: Vec<Option<SimStats>> = (0..jobs.len())
        .map(|i| replay.rows.get(&i).copied())
        .collect();
    let partial = assemble_partial_report(spec, &jobs, run, options.smoke, &stats, failures);
    let missing = partial.missing();
    write_partial_reports(&partial, dir)
        .map_err(|e| format!("cannot write partial reports: {e}"))?;
    Ok(SubmissionStatus::Partial {
        dir: dir.to_path_buf(),
        missing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spool_scan_sees_only_toml_in_name_order() {
        let dir = temp_dir("scan");
        std::fs::write(dir.join("b.toml"), "x").unwrap();
        std::fs::write(dir.join("a.toml"), "x").unwrap();
        std::fs::write(dir.join("c.toml.done"), "x").unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        let found = scan_spool(&dir, 0).unwrap();
        let names: Vec<_> = found
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a.toml", "b.toml"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn settle_window_defers_fresh_files() {
        let dir = temp_dir("settle");
        std::fs::write(dir.join("fresh.toml"), "x").unwrap();
        // A wide window hides the just-written file; no window shows it.
        assert!(scan_spool(&dir, 60_000).unwrap().is_empty());
        assert_eq!(scan_spool(&dir, 0).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_submission_fails_and_is_marked() {
        let dir = temp_dir("badspec");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        std::fs::write(spool.join("bad.toml"), "not a spec at all = [").unwrap();
        let options = ServeOptions {
            binary: PathBuf::from("/nonexistent"),
            spool: spool.clone(),
            out: dir.join("out"),
            once: true,
            ..ServeOptions::default()
        };
        let outcomes = serve(&options, &mut |_| {}).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].result.is_err());
        assert!(spool.join("bad.toml.failed").exists());
        let note = std::fs::read_to_string(spool.join("bad.toml.error")).unwrap();
        assert!(note.contains("invalid spec"), "{note}");
        assert!(!spool.join("bad.toml").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resubmission_clears_stale_markers() {
        let dir = temp_dir("stale");
        let spool = dir.join("spool");
        std::fs::create_dir_all(&spool).unwrap();
        // Leftovers from an imaginary earlier failed attempt.
        std::fs::write(spool.join("job.toml.failed"), "old run").unwrap();
        std::fs::write(spool.join("job.toml.error"), "old reason").unwrap();
        std::fs::write(spool.join("job.toml.done"), "even older").unwrap();
        std::fs::write(spool.join("job.toml"), "still not a spec = [").unwrap();
        let options = ServeOptions {
            binary: PathBuf::from("/nonexistent"),
            spool: spool.clone(),
            out: dir.join("out"),
            once: true,
            ..ServeOptions::default()
        };
        let outcomes = serve(&options, &mut |_| {}).unwrap();
        assert!(outcomes[0].result.is_err());
        // Exactly one marker family survives: this run's.
        assert!(spool.join("job.toml.failed").exists());
        let note = std::fs::read_to_string(spool.join("job.toml.error")).unwrap();
        assert!(note.contains("invalid spec"), "stale note kept: {note}");
        assert!(!spool.join("job.toml.done").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_lock_blocks_live_owner_and_reclaims_dead_one() {
        let dir = temp_dir("lock");
        // Held by this (live) process: a second acquire must refuse.
        let lock = SpoolLock::acquire(&dir).unwrap();
        let err = SpoolLock::acquire(&dir).unwrap_err();
        assert!(err.to_string().contains("already served"), "{err}");
        drop(lock);
        assert!(!dir.join(SPOOL_LOCK_NAME).exists(), "lock not released");

        // A lock whose owner is long dead is reclaimed. Pid 0 is never a
        // schedulable process on Linux (and /proc/0 does not exist).
        std::fs::write(dir.join(SPOOL_LOCK_NAME), "0").unwrap();
        let lock = SpoolLock::acquire(&dir).unwrap();
        let owner = std::fs::read_to_string(dir.join(SPOOL_LOCK_NAME)).unwrap();
        assert_eq!(owner, std::process::id().to_string());
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
