//! The broker/worker wire protocol: length-prefixed, versioned binary
//! frames over `std::net` TCP.
//!
//! Every frame is a fixed 20-byte header, a payload, and an 8-byte
//! FNV-1a-64 trailer over the payload bytes:
//!
//! | offset | size | field         | value                                    |
//! |--------|------|---------------|------------------------------------------|
//! | 0      | 4    | `magic`       | `"BMWQ"` (Boomerang work queue)          |
//! | 4      | 4    | `version`     | [`PROTO_VERSION`], little-endian u32     |
//! | 8      | 4    | `kind`        | the message discriminant                 |
//! | 12     | 4    | `arity`       | field count of `kind`'s payload          |
//! | 16     | 4    | `payload_len` | payload bytes following the header       |
//! | 20     | *n*  | payload       | flat little-endian fields                |
//! | 20+*n* | 8    | `frame_fnv`   | FNV-1a-64 of the payload bytes           |
//!
//! Every header field is validated on read with a field-level
//! [`ProtoError`] naming the offending field — the same discipline as the
//! artifact-cache `BMWL` header and the spec TOML parser, so a version skew
//! or a corrupted stream is a named diagnosis, not a length panic. The
//! `arity` field is the schema handshake: a peer whose `kind` grew or lost
//! a payload field is rejected *before* payload decoding, which is how a
//! mixed-version fleet fails loudly instead of misreading bytes. The
//! trailer is verified before any payload field is decoded: a frame whose
//! bytes changed in flight — a flipped bit, a partial overwrite that still
//! parses — is rejected as a whole instead of decoding plausibly into
//! wrong field values.
//!
//! Payload encoding is flat little-endian: `u32`/`u64` verbatim, `bool` as
//! one byte, strings as `u32` length + UTF-8 bytes, `u64` lists as `u32`
//! count + values. No self-description — the (version, kind, arity) triple
//! pins the layout.
//!
//! # Conversation shape
//!
//! The worker connects, sends [`Message::Hello`], and reads
//! [`Message::Welcome`]. It then loops: [`Message::LeaseRequest`] →
//! [`Message::Lease`] (run the row, reply [`Message::RowDone`], read
//! [`Message::RowAck`] / [`Message::Reject`]) or [`Message::NoWork`] (sleep
//! and retry) or [`Message::Shutdown`] (exit cleanly). The only
//! fire-and-forget frame is [`Message::Heartbeat`], written by a worker's
//! heartbeat thread between requests; the broker never replies to it, so
//! from the worker's read perspective the socket stays strict
//! request-reply.
//!
//! [`write_message`] is the `frame-torn` and `frame-corrupt` fault point
//! ([`crate::fault`]): an armed plan can tear the `nth` frame sent by this
//! process — half the bytes, then a failed send — or flip one payload byte
//! after the trailer was computed, on either end of the socket.

use std::fmt;
use std::io::{self, Read, Write};

use crate::bench::fnv1a64;
use crate::checkpoint::STAT_FIELD_COUNT;
use crate::fault;

/// Frame magic: "Boomerang work queue".
pub const PROTO_MAGIC: [u8; 4] = *b"BMWQ";

/// Wire-format version. Bump on any layout change; both ends reject a
/// mismatch field-by-field before touching the payload. Version 2 added the
/// whole-payload FNV trailer and the `RowDone` row checksum field.
pub const PROTO_VERSION: u32 = 2;

/// Bytes of the FNV-1a-64 trailer following every payload.
pub const TRAILER_LEN: usize = 8;

/// Upper bound on a frame payload (the spec TOML inside [`Message::Lease`]
/// dominates); anything larger is a corrupted or hostile length prefix.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Header size on the wire.
pub const HEADER_LEN: usize = 20;

/// A rejected frame: which header or payload field was bad, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Dotted path of the offending field.
    pub field: &'static str,
    /// What was wrong with it.
    pub message: String,
}

impl ProtoError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// One protocol message. See the module docs for the conversation shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Worker → broker, once per connection: identify this worker.
    Hello {
        /// The worker's self-chosen name (its `--worker-index`, stringified
        /// host, or both) — used in broker logs only.
        worker: String,
        /// The worker's process id, for log correlation.
        pid: u64,
    },
    /// Broker → worker: the handshake accept.
    Welcome {
        /// The broker's process id, so a worker log can tell broker
        /// generations apart across restarts.
        broker_pid: u64,
    },
    /// Worker → broker: ask for one job lease.
    LeaseRequest,
    /// Broker → worker: one leased job.
    Lease {
        /// Lease id — quote it in `Heartbeat` and `RowDone`.
        lease: u64,
        /// Canonical job index into the spec's expansion.
        job: u64,
        /// Whether the campaign runs at smoke length.
        smoke: bool,
        /// The campaign's spec hash; the worker recomputes and must match.
        spec_hash: String,
        /// The spec's canonical TOML (the worker caches it by hash, so the
        /// string cost is paid once per campaign per connection).
        spec_toml: String,
    },
    /// Broker → worker: nothing leasable right now; retry after a delay.
    NoWork {
        /// Suggested retry delay.
        retry_ms: u64,
    },
    /// Worker → broker, fire-and-forget: the lease is alive.
    Heartbeat {
        /// The lease being refreshed.
        lease: u64,
    },
    /// Worker → broker: a completed row.
    RowDone {
        /// The lease this row ran under (an expired lease is still
        /// accepted if the job is undone — the work is real).
        lease: u64,
        /// Canonical job index.
        job: u64,
        /// The spec hash the worker ran against.
        spec_hash: String,
        /// The mechanism token of the executed job (cross-check).
        mechanism: String,
        /// The seed of the executed job (cross-check).
        seed: u64,
        /// The row checksum ([`crate::checkpoint`]'s canonical
        /// `index|mechanism|seed|stats` FNV-1a-64), computed by the worker
        /// over the stats it actually measured. The broker recomputes it
        /// from the received fields before journaling, so a row corrupted
        /// between simulation and journal append can never be recorded.
        row_fnv: u64,
        /// The stat counters in canonical journal column order
        /// ([`STAT_FIELD_COUNT`] values).
        stats: Vec<u64>,
    },
    /// Broker → worker: the row was journaled (or was already done — the
    /// dedup path acks too, so retransmission is invisible to the worker).
    RowAck {
        /// The acked job index.
        job: u64,
    },
    /// Broker → worker: the row was refused (stale spec hash, bad index,
    /// cross-check mismatch). The worker logs and drops the lease.
    Reject {
        /// Human-readable refusal.
        reason: String,
    },
    /// Broker → worker: drain and exit cleanly (exit code 0).
    Shutdown {
        /// Why the broker is closing shop.
        reason: String,
    },
}

/// (kind discriminant, payload field count) for each message.
fn kind_and_arity(msg: &Message) -> (u32, u32) {
    match msg {
        Message::Hello { .. } => (1, 2),
        Message::Welcome { .. } => (2, 1),
        Message::LeaseRequest => (3, 0),
        Message::Lease { .. } => (4, 5),
        Message::NoWork { .. } => (5, 1),
        Message::Heartbeat { .. } => (6, 1),
        Message::RowDone { .. } => (7, 7),
        Message::RowAck { .. } => (8, 1),
        Message::Reject { .. } => (9, 1),
        Message::Shutdown { .. } => (10, 1),
    }
}

fn kind_name(kind: u32) -> Option<&'static str> {
    Some(match kind {
        1 => "Hello",
        2 => "Welcome",
        3 => "LeaseRequest",
        4 => "Lease",
        5 => "NoWork",
        6 => "Heartbeat",
        7 => "RowDone",
        8 => "RowAck",
        9 => "Reject",
        10 => "Shutdown",
        _ => return None,
    })
}

fn expected_arity(kind: u32) -> u32 {
    match kind {
        1 => 2,
        2 => 1,
        3 => 0,
        4 => 5,
        5 => 1,
        6 => 1,
        7 => 7,
        8 => 1,
        9 => 1,
        10 => 1,
        _ => unreachable!("validated kind"),
    }
}

// ---- payload writers ----------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u64s(out: &mut Vec<u8>, values: &[u64]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_u64(out, v);
    }
}

// ---- payload reader -----------------------------------------------------

/// Cursor over a payload with field-named underrun errors.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        let Some(end) = end else {
            return Err(ProtoError::new(
                field,
                format!(
                    "payload underrun: need {n} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len().saturating_sub(self.at)
                ),
            ));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtoError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtoError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, ProtoError> {
        match self.take(1, field)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ProtoError::new(field, format!("bad bool byte {other}"))),
        }
    }

    fn string(&mut self, field: &'static str) -> Result<String, ProtoError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::new(field, "string is not UTF-8"))
    }

    fn u64s(&mut self, field: &'static str) -> Result<Vec<u64>, ProtoError> {
        let count = self.u32(field)? as usize;
        if count > (MAX_PAYLOAD as usize) / 8 {
            return Err(ProtoError::new(
                field,
                format!("list count {count} too large"),
            ));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.u64(field)?);
        }
        Ok(values)
    }

    fn finish(self, field: &'static str) -> Result<(), ProtoError> {
        if self.at != self.bytes.len() {
            return Err(ProtoError::new(
                field,
                format!(
                    "{} trailing payload bytes after the last field",
                    self.bytes.len() - self.at
                ),
            ));
        }
        Ok(())
    }
}

// ---- frame encode / decode ----------------------------------------------

/// Serialises one message into a complete frame (header + payload + FNV
/// trailer).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    match msg {
        Message::Hello { worker, pid } => {
            put_str(&mut payload, worker);
            put_u64(&mut payload, *pid);
        }
        Message::Welcome { broker_pid } => put_u64(&mut payload, *broker_pid),
        Message::LeaseRequest => {}
        Message::Lease {
            lease,
            job,
            smoke,
            spec_hash,
            spec_toml,
        } => {
            put_u64(&mut payload, *lease);
            put_u64(&mut payload, *job);
            put_bool(&mut payload, *smoke);
            put_str(&mut payload, spec_hash);
            put_str(&mut payload, spec_toml);
        }
        Message::NoWork { retry_ms } => put_u64(&mut payload, *retry_ms),
        Message::Heartbeat { lease } => put_u64(&mut payload, *lease),
        Message::RowDone {
            lease,
            job,
            spec_hash,
            mechanism,
            seed,
            row_fnv,
            stats,
        } => {
            put_u64(&mut payload, *lease);
            put_u64(&mut payload, *job);
            put_str(&mut payload, spec_hash);
            put_str(&mut payload, mechanism);
            put_u64(&mut payload, *seed);
            put_u64(&mut payload, *row_fnv);
            put_u64s(&mut payload, stats);
        }
        Message::RowAck { job } => put_u64(&mut payload, *job),
        Message::Reject { reason } => put_str(&mut payload, reason),
        Message::Shutdown { reason } => put_str(&mut payload, reason),
    }
    let (kind, arity) = kind_and_arity(msg);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    frame.extend_from_slice(&PROTO_MAGIC);
    put_u32(&mut frame, PROTO_VERSION);
    put_u32(&mut frame, kind);
    put_u32(&mut frame, arity);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    put_u64(&mut frame, fnv1a64(&payload));
    frame
}

/// A validated frame header: the message kind and its payload length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// The message discriminant (already known valid).
    pub kind: u32,
    /// Payload bytes following the header.
    pub payload_len: u32,
}

/// Validates a 20-byte header field by field.
pub fn parse_header(bytes: &[u8; HEADER_LEN]) -> Result<Header, ProtoError> {
    if bytes[0..4] != PROTO_MAGIC {
        return Err(ProtoError::new(
            "header.magic",
            format!("expected \"BMWQ\", found {:?}", &bytes[0..4]),
        ));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != PROTO_VERSION {
        return Err(ProtoError::new(
            "header.version",
            format!("peer speaks version {version}, this end speaks {PROTO_VERSION}"),
        ));
    }
    let kind = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if kind_name(kind).is_none() {
        return Err(ProtoError::new(
            "header.kind",
            format!("unknown message kind {kind}"),
        ));
    }
    let arity = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let expected = expected_arity(kind);
    if arity != expected {
        return Err(ProtoError::new(
            "header.arity",
            format!(
                "{} carries {expected} field(s), peer declared {arity} — version skew",
                kind_name(kind).expect("validated kind")
            ),
        ));
    }
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(ProtoError::new(
            "header.payload_len",
            format!("{payload_len} bytes exceeds the {MAX_PAYLOAD}-byte frame bound"),
        ));
    }
    Ok(Header { kind, payload_len })
}

/// Decodes a validated header's payload into a message.
pub fn decode(kind: u32, payload: &[u8]) -> Result<Message, ProtoError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        1 => Message::Hello {
            worker: r.string("hello.worker")?,
            pid: r.u64("hello.pid")?,
        },
        2 => Message::Welcome {
            broker_pid: r.u64("welcome.broker_pid")?,
        },
        3 => Message::LeaseRequest,
        4 => Message::Lease {
            lease: r.u64("lease.lease")?,
            job: r.u64("lease.job")?,
            smoke: r.bool("lease.smoke")?,
            spec_hash: r.string("lease.spec_hash")?,
            spec_toml: r.string("lease.spec_toml")?,
        },
        5 => Message::NoWork {
            retry_ms: r.u64("no_work.retry_ms")?,
        },
        6 => Message::Heartbeat {
            lease: r.u64("heartbeat.lease")?,
        },
        7 => {
            let msg = Message::RowDone {
                lease: r.u64("row_done.lease")?,
                job: r.u64("row_done.job")?,
                spec_hash: r.string("row_done.spec_hash")?,
                mechanism: r.string("row_done.mechanism")?,
                seed: r.u64("row_done.seed")?,
                row_fnv: r.u64("row_done.row_fnv")?,
                stats: r.u64s("row_done.stats")?,
            };
            if let Message::RowDone { ref stats, .. } = msg {
                if stats.len() != STAT_FIELD_COUNT {
                    return Err(ProtoError::new(
                        "row_done.stats",
                        format!(
                            "expected {STAT_FIELD_COUNT} stat counters, found {}",
                            stats.len()
                        ),
                    ));
                }
            }
            msg
        }
        8 => Message::RowAck {
            job: r.u64("row_ack.job")?,
        },
        9 => Message::Reject {
            reason: r.string("reject.reason")?,
        },
        10 => Message::Shutdown {
            reason: r.string("shutdown.reason")?,
        },
        _ => unreachable!("validated kind"),
    };
    r.finish("payload")?;
    Ok(msg)
}

/// Writes one frame. This is the `frame-torn` and `frame-corrupt` fault
/// point: an armed plan can make the `nth` frame sent by this process write
/// only its first half and then fail — the torn-TCP-write signature — or
/// flip one payload byte *after* the FNV trailer was computed, so the
/// receiver's trailer check must reject the frame. Callers treat the torn
/// error like any send failure (drop the connection, reconnect).
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let mut frame = encode(msg);
    match fault::on_frame_send() {
        fault::FrameFault::Torn => {
            let torn = &frame[..frame.len() / 2];
            w.write_all(torn)?;
            let _ = w.flush();
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected torn frame",
            ));
        }
        fault::FrameFault::Corrupt => {
            // In-flight bit damage: the frame arrives whole, parses as a
            // frame, but its payload no longer matches its trailer.
            let at = if frame.len() > HEADER_LEN + TRAILER_LEN {
                HEADER_LEN + (frame.len() - HEADER_LEN - TRAILER_LEN) / 2
            } else {
                frame.len() - 1
            };
            frame[at] ^= 0x01;
        }
        fault::FrameFault::None => {}
    }
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame: header (validated field by field), then payload, then
/// the FNV trailer (verified before any field is decoded), then decode.
/// Header/trailer/payload validation failures surface as
/// `io::ErrorKind::InvalidData` wrapping the [`ProtoError`] text; transport
/// failures (EOF, reset, timeout) pass through untouched so callers can
/// tell a dead peer from a corrupt one.
pub fn read_message<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let header = parse_header(&header)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; TRAILER_LEN];
    r.read_exact(&mut trailer)?;
    let declared = u64::from_le_bytes(trailer);
    let computed = fnv1a64(&payload);
    if declared != computed {
        return Err(ProtoError::new(
            "frame.frame_fnv",
            format!(
                "payload hashes to {computed:016x}, trailer says {declared:016x} — \
                 the frame was damaged in flight"
            ),
        )
        .into());
    }
    Ok(decode(header.kind, &payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                worker: "worker-3".into(),
                pid: 4242,
            },
            Message::Welcome { broker_pid: 99 },
            Message::LeaseRequest,
            Message::Lease {
                lease: 7,
                job: 11,
                smoke: true,
                spec_hash: "fnv1a64:0123456789abcdef".into(),
                spec_toml: "name = \"x\"\n".into(),
            },
            Message::NoWork { retry_ms: 250 },
            Message::Heartbeat { lease: 7 },
            Message::RowDone {
                lease: 7,
                job: 11,
                spec_hash: "fnv1a64:0123456789abcdef".into(),
                mechanism: "boomerang".into(),
                seed: 1,
                row_fnv: 0xfeed_beef_dead_cafe,
                stats: (0..STAT_FIELD_COUNT as u64).collect(),
            },
            Message::RowAck { job: 11 },
            Message::Reject {
                reason: "stale spec hash".into(),
            },
            Message::Shutdown {
                reason: "queue drained".into(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips_through_a_stream() {
        let messages = all_messages();
        let mut stream = Vec::new();
        for msg in &messages {
            write_message(&mut stream, msg).unwrap();
        }
        let mut cursor = &stream[..];
        for msg in &messages {
            assert_eq!(&read_message(&mut cursor).unwrap(), msg);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn header_fields_are_validated_individually() {
        let frame = encode(&Message::LeaseRequest);
        let header: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();

        let mut bad = header;
        bad[0] = b'X';
        assert_eq!(parse_header(&bad).unwrap_err().field, "header.magic");

        let mut bad = header;
        bad[4..8].copy_from_slice(&(PROTO_VERSION + 1).to_le_bytes());
        assert_eq!(parse_header(&bad).unwrap_err().field, "header.version");

        let mut bad = header;
        bad[8..12].copy_from_slice(&999u32.to_le_bytes());
        assert_eq!(parse_header(&bad).unwrap_err().field, "header.kind");

        let mut bad = header;
        bad[12..16].copy_from_slice(&7u32.to_le_bytes());
        let err = parse_header(&bad).unwrap_err();
        assert_eq!(err.field, "header.arity");
        assert!(err.message.contains("version skew"), "{err}");

        let mut bad = header;
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(parse_header(&bad).unwrap_err().field, "header.payload_len");

        assert!(parse_header(&header).is_ok());
    }

    /// The payload bytes of an encoded frame (between header and trailer).
    fn payload_of(frame: &[u8]) -> &[u8] {
        &frame[HEADER_LEN..frame.len() - TRAILER_LEN]
    }

    #[test]
    fn payload_underrun_and_trailing_bytes_are_named() {
        let frame = encode(&Message::Welcome { broker_pid: 1 });
        let header = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        let payload = payload_of(&frame);

        let err = decode(header.kind, &payload[..4]).unwrap_err();
        assert_eq!(err.field, "welcome.broker_pid");
        assert!(err.message.contains("underrun"), "{err}");

        let mut long = payload.to_vec();
        long.push(0);
        let err = decode(header.kind, &long).unwrap_err();
        assert_eq!(err.field, "payload");
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn row_done_stat_arity_is_enforced() {
        let msg = Message::RowDone {
            lease: 1,
            job: 2,
            spec_hash: "h".into(),
            mechanism: "fdip".into(),
            seed: 0,
            row_fnv: 1,
            stats: vec![0; STAT_FIELD_COUNT - 1],
        };
        let frame = encode(&msg);
        let header = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        let err = decode(header.kind, payload_of(&frame)).unwrap_err();
        assert_eq!(err.field, "row_done.stats");
    }

    #[test]
    fn non_utf8_strings_and_bad_bools_are_rejected() {
        let mut frame = encode(&Message::Reject {
            reason: "ascii".into(),
        });
        // Corrupt the last *payload* byte into an invalid UTF-8 lead byte.
        let at = frame.len() - TRAILER_LEN - 1;
        frame[at] = 0xFF;
        let header = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        let err = decode(header.kind, payload_of(&frame)).unwrap_err();
        assert_eq!(err.field, "reject.reason");
        assert!(err.message.contains("UTF-8"), "{err}");

        let mut frame = encode(&Message::Lease {
            lease: 1,
            job: 2,
            smoke: false,
            spec_hash: String::new(),
            spec_toml: String::new(),
        });
        frame[HEADER_LEN + 16] = 7; // the bool byte
        let header = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        let err = decode(header.kind, payload_of(&frame)).unwrap_err();
        assert_eq!(err.field, "lease.smoke");
    }

    #[test]
    fn flipped_frame_bytes_fail_the_trailer_check() {
        // A flipped payload byte: the frame still parses as a frame, but the
        // trailer no longer matches — rejected before any field is decoded.
        let msg = Message::RowDone {
            lease: 3,
            job: 5,
            spec_hash: "fnv1a64:0123456789abcdef".into(),
            mechanism: "fdip".into(),
            seed: 2,
            row_fnv: 77,
            stats: (0..STAT_FIELD_COUNT as u64).collect(),
        };
        let mut frame = encode(&msg);
        let at = HEADER_LEN + 30; // somewhere inside a stat value
        frame[at] ^= 0x01;
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("frame.frame_fnv"), "{err}");

        // A flipped trailer byte is caught the same way.
        let mut frame = encode(&msg);
        let last = frame.len() - 1;
        frame[last] ^= 0x80;
        let err = read_message(&mut &frame[..]).unwrap_err();
        assert!(err.to_string().contains("frame.frame_fnv"), "{err}");

        // And the clean frame still reads back.
        let frame = encode(&msg);
        assert_eq!(read_message(&mut &frame[..]).unwrap(), msg);
    }

    #[test]
    fn handshake_version_and_arity_skew_are_named_on_read() {
        // A peer built against protocol version 1 sends its Hello: this end
        // must reject it naming `header.version` before touching the
        // payload — and symmetrically for a Welcome, so both ends of the
        // handshake fail loudly on a mixed-version fleet.
        for msg in [
            Message::Hello {
                worker: "w0".into(),
                pid: 1,
            },
            Message::Welcome { broker_pid: 2 },
        ] {
            let mut frame = encode(&msg);
            frame[4..8].copy_from_slice(&1u32.to_le_bytes());
            let err = read_message(&mut &frame[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("header.version"), "{err}");

            // Same binary version, but the frame declares one field too
            // many — the schema handshake names `header.arity`.
            let mut frame = encode(&msg);
            let arity = u32::from_le_bytes(frame[12..16].try_into().unwrap());
            frame[12..16].copy_from_slice(&(arity + 1).to_le_bytes());
            let err = read_message(&mut &frame[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("header.arity"), "{err}");
            assert!(err.to_string().contains("version skew"), "{err}");
        }
    }

    #[test]
    fn truncated_stream_is_a_transport_error_not_invalid_data() {
        let frame = encode(&Message::Heartbeat { lease: 1 });
        let mut cursor = &frame[..frame.len() - 3];
        let err = read_message(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
