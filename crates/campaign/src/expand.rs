//! Cartesian expansion of a [`CampaignSpec`] into an ordered job list.
//!
//! The expansion order is canonical — configs, then workloads, then seeds,
//! then mechanisms — and every (config, workload, seed) group is prefixed
//! with a no-prefetch baseline reference job unless the spec already sweeps
//! `baseline` itself. Reports are emitted in job order, which is what makes
//! them byte-identical regardless of how many worker threads execute the
//! jobs.

use crate::spec::CampaignSpec;
use boomerang::Mechanism;

/// One simulation to run: a single cell of the campaign matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Job {
    /// Position in the canonical job order.
    pub index: usize,
    /// Index into [`CampaignSpec::configs`].
    pub config: usize,
    /// Index into [`CampaignSpec::workloads`] (the resolved workload axis).
    /// An index — not a workload kind — because two axis points may share a
    /// base kind while describing different profiles.
    pub workload: usize,
    /// Seed offset (0 = the workload's paper seed).
    pub seed: u64,
    /// The mechanism.
    pub mechanism: Mechanism,
    /// `true` for baseline reference jobs the expander added (not requested
    /// as a spec cell, but required to compute speedups/coverage).
    pub implicit_baseline: bool,
}

/// Expands a spec into its canonical job list.
pub fn expand(spec: &CampaignSpec) -> Vec<Job> {
    let needs_implicit_baseline = !spec.mechanisms.contains(&Mechanism::Baseline);
    let mut jobs = Vec::with_capacity(
        spec.cell_count()
            + if needs_implicit_baseline {
                spec.configs.len() * spec.workloads.len() * spec.seeds.len()
            } else {
                0
            },
    );
    for config in 0..spec.configs.len() {
        for workload in 0..spec.workloads.len() {
            for &seed in &spec.seeds {
                if needs_implicit_baseline {
                    jobs.push(Job {
                        index: jobs.len(),
                        config,
                        workload,
                        seed,
                        mechanism: Mechanism::Baseline,
                        implicit_baseline: true,
                    });
                }
                for &mechanism in &spec.mechanisms {
                    jobs.push(Job {
                        index: jobs.len(),
                        config,
                        workload,
                        seed,
                        mechanism,
                        implicit_baseline: false,
                    });
                }
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn spec(mechs: &str) -> CampaignSpec {
        CampaignSpec::from_toml_str(&format!(
            "name = \"x\"\nworkloads = [\"nutch\", \"db2\"]\nmechanisms = {mechs}\nseeds = [0, 1]\n\n[[config]]\nlabel = \"a\"\n\n[[config]]\nlabel = \"b\"\nnoc = 18\n"
        ))
        .unwrap()
    }

    #[test]
    fn counts_include_implicit_baselines() {
        let s = spec("[\"fdip\", \"boomerang\"]");
        let jobs = expand(&s);
        // 2 configs x 2 workloads x 2 seeds x (2 mechanisms + 1 baseline).
        assert_eq!(jobs.len(), 2 * 2 * 2 * 3);
        assert_eq!(jobs.iter().filter(|j| j.implicit_baseline).count(), 8);
        // Indices are the canonical positions.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
        // Every group leads with its baseline.
        assert!(jobs[0].implicit_baseline);
        assert_eq!(jobs[1].mechanism, Mechanism::Fdip);
    }

    #[test]
    fn explicit_baseline_is_not_duplicated() {
        let s = spec("[\"baseline\", \"fdip\"]");
        let jobs = expand(&s);
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2);
        assert!(jobs.iter().all(|j| !j.implicit_baseline));
        assert_eq!(
            jobs.iter()
                .filter(|j| j.mechanism == Mechanism::Baseline)
                .count(),
            8
        );
    }

    #[test]
    fn order_is_configs_workloads_seeds_mechanisms() {
        let s = spec("[\"fdip\"]");
        let jobs = expand(&s);
        let pos = |j: &Job| {
            (
                j.config,
                j.workload,
                s.seeds.iter().position(|&x| x == j.seed).unwrap(),
            )
        };
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|j| (pos(j), j.index));
        assert_eq!(jobs, sorted, "expansion must already be in canonical order");
        assert_eq!(jobs[0].config, 0);
        assert_eq!(jobs.last().unwrap().config, 1);
    }
}
