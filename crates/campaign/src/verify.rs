//! `boomerang-sim verify`: an offline audit of a campaign directory.
//!
//! The campaign stack's invariant is that a merged report is a
//! byte-identical pure function of its spec. Everything that defends that
//! invariant at runtime — journal `row_fnv` checksums, frame trailers,
//! broker-side re-verification — leaves artifacts on disk that can be
//! re-checked *after the fact*, with no broker and no workers. This module
//! is that auditor: point it at an output directory and it re-validates
//! every layer it can reach, prints one row per check, and reports failure
//! if any single bit has drifted.
//!
//! The checks, in order:
//!
//! | check          | needs          | what it proves                                   |
//! |----------------|----------------|--------------------------------------------------|
//! | `journal-rows` | nothing        | headers parse, rows parse, every `row_fnv` holds |
//! | `spec-hash`    | `--spec`       | journals belong to this spec at this run length  |
//! | `completeness` | `--spec`       | every job of the expansion has a checkpointed row|
//! | `report-bytes` | `--spec`       | `<name>.json`/`.csv` equal an `assemble_report` replay byte-for-byte |
//! | `artifacts`    | `--artifact-cache` | every `wl-*.wla` header and payload checksum holds |
//! | `recompute`    | `--spec`, `--recompute N` | N sampled rows re-simulated from scratch reproduce their journaled stats |
//!
//! Checks whose inputs are absent are *skipped* (reported, but not
//! failures): a journal's internal checksums are verifiable with nothing
//! but the file, while replaying the report needs the spec TOML. The
//! `recompute` sample is deterministic — seeded by the spec hash, like the
//! broker's online sampled re-verification — so repeated audits of the
//! same directory exercise the same rows.

use crate::artifact::check_header;
use crate::bench::fnv1a64;
use crate::checkpoint::{scan_journal, spec_hash, stats_to_array, JournalReplay, JournalScan};
use crate::engine::{assemble_report, derive_seed};
use crate::expand::{expand, Job};
use crate::sink::{to_csv, to_json};
use crate::spec::{mechanism_token, CampaignSpec};
use boomerang::{RunLength, WorkloadData};
use std::path::{Path, PathBuf};

/// What to audit and how deep.
#[derive(Clone, Debug, Default)]
pub struct VerifyOptions {
    /// The campaign output directory (journals + reports).
    pub dir: PathBuf,
    /// The campaign spec TOML. Without it only the self-contained checks
    /// run (journal shape and row checksums).
    pub spec: Option<PathBuf>,
    /// The campaign was run at smoke length (`--smoke` on the original
    /// run); affects the spec hash and the recompute run length.
    pub smoke: bool,
    /// Re-simulate this many sampled rows from scratch and compare their
    /// stats to the journal (0 disables the most expensive check).
    pub recompute: usize,
    /// Audit every artifact in this workload cache directory.
    pub artifact_cache: Option<PathBuf>,
}

/// One audit check's outcome: `passed` is `None` when the check was
/// skipped for want of inputs.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// The check's stable name (the table's first column).
    pub name: &'static str,
    /// `Some(true)` pass, `Some(false)` fail, `None` skipped.
    pub passed: Option<bool>,
    /// Human-readable evidence: counts on success, the first offending
    /// file/line/field on failure.
    pub detail: String,
}

/// The full audit outcome.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Every check that ran or was skipped, in execution order.
    pub checks: Vec<CheckResult>,
}

impl VerifyReport {
    /// True when no check failed (skipped checks do not fail the audit).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed != Some(false))
    }

    /// Renders the per-check table plus a PASS/FAIL summary line.
    pub fn render(&self) -> String {
        let width = self
            .checks
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0)
            .max("check".len());
        let mut out = format!("{:width$}  {:7}  detail\n", "check", "status");
        for check in &self.checks {
            let status = match check.passed {
                Some(true) => "ok",
                Some(false) => "FAIL",
                None => "skipped",
            };
            out.push_str(&format!(
                "{:width$}  {:7}  {}\n",
                check.name, status, check.detail
            ));
        }
        let failed = self
            .checks
            .iter()
            .filter(|c| c.passed == Some(false))
            .count();
        let skipped = self.checks.iter().filter(|c| c.passed.is_none()).count();
        out.push_str(&format!(
            "verify: {} ({} checks, {failed} failed, {skipped} skipped)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.checks.len(),
        ));
        out
    }
}

/// Runs every applicable check against `options.dir` and returns the
/// per-check table. Never panics on damaged input — damage is what the
/// failing check reports.
pub fn verify_dir(options: &VerifyOptions) -> VerifyReport {
    let mut report = VerifyReport::default();
    let scans = check_journal_rows(&options.dir, &mut report);
    let spec = load_spec(options, &mut report);
    if let Some((spec, run)) = &spec {
        check_spec_hash(options, spec, *run, &scans, &mut report);
        let replay = check_completeness(options, spec, &scans, &mut report);
        check_report_bytes(options, spec, *run, replay.as_ref(), &mut report);
        check_recompute(options, spec, *run, replay.as_ref(), &mut report);
    } else {
        for name in ["spec-hash", "completeness", "report-bytes", "recompute"] {
            report.checks.push(CheckResult {
                name,
                passed: None,
                detail: "needs --spec".to_string(),
            });
        }
    }
    check_artifacts(options, &mut report);
    report
}

/// Every journal file in `dir`: `<campaign>.journal.jsonl` and sharded
/// `<campaign>.journal-<i>.jsonl` siblings, temp files excluded.
fn journal_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".jsonl") && name.contains(".journal") && !name.contains(".tmp-") {
            paths.push(path);
        }
    }
    paths.sort();
    Ok(paths)
}

/// The self-contained scan: every journal parses and every row checksum
/// holds. Returns the scans for the spec-dependent checks downstream.
fn check_journal_rows(dir: &Path, report: &mut VerifyReport) -> Vec<(PathBuf, JournalScan)> {
    let paths = match journal_paths(dir) {
        Ok(paths) => paths,
        Err(e) => {
            report.checks.push(CheckResult {
                name: "journal-rows",
                passed: Some(false),
                detail: format!("cannot scan {}: {e}", dir.display()),
            });
            return Vec::new();
        }
    };
    if paths.is_empty() {
        report.checks.push(CheckResult {
            name: "journal-rows",
            passed: Some(false),
            detail: format!("no journal files in {}", dir.display()),
        });
        return Vec::new();
    }
    let mut scans = Vec::new();
    let mut checked = 0;
    let mut unverified = 0;
    for path in paths {
        match scan_journal(&path) {
            Ok(scan) => {
                checked += scan.rows_checked;
                unverified += scan.rows_unverified;
                scans.push((path, scan));
            }
            Err(e) => {
                report.checks.push(CheckResult {
                    name: "journal-rows",
                    passed: Some(false),
                    detail: e.to_string(),
                });
                return scans;
            }
        }
    }
    let mut detail = format!(
        "{checked} row checksums verified across {} file(s)",
        scans.len()
    );
    if unverified > 0 {
        let oldest = scans.iter().map(|(_, s)| s.format).min().unwrap_or(0);
        detail.push_str(&format!(
            "; {unverified} row(s) from format-{oldest} journal(s) carry no checksum"
        ));
    }
    report.checks.push(CheckResult {
        name: "journal-rows",
        passed: Some(true),
        detail,
    });
    scans
}

/// Parses `--spec` (when given) into the spec plus its effective run
/// length. A spec that fails to parse is reported as a failed check.
fn load_spec(
    options: &VerifyOptions,
    report: &mut VerifyReport,
) -> Option<(CampaignSpec, RunLength)> {
    let path = options.spec.as_ref()?;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            report.checks.push(CheckResult {
                name: "spec-hash",
                passed: Some(false),
                detail: format!("cannot read {}: {e}", path.display()),
            });
            return None;
        }
    };
    match CampaignSpec::from_toml_str(&text) {
        Ok(spec) => {
            let run = if options.smoke {
                RunLength::smoke_test()
            } else {
                spec.run
            };
            Some((spec, run))
        }
        Err(e) => {
            report.checks.push(CheckResult {
                name: "spec-hash",
                passed: Some(false),
                detail: format!("invalid spec {}: {e}", path.display()),
            });
            None
        }
    }
}

/// Every journal must belong to this spec: campaign name and recomputed
/// spec hash both match every header.
fn check_spec_hash(
    options: &VerifyOptions,
    spec: &CampaignSpec,
    run: RunLength,
    scans: &[(PathBuf, JournalScan)],
    report: &mut VerifyReport,
) {
    if scans.is_empty() {
        report.checks.push(CheckResult {
            name: "spec-hash",
            passed: None,
            detail: "no scanned journals to compare against".to_string(),
        });
        return;
    }
    let expected = spec_hash(spec, run, options.smoke);
    let jobs = expand(spec).len();
    for (path, scan) in scans {
        if scan.campaign != spec.name {
            report.checks.push(CheckResult {
                name: "spec-hash",
                passed: Some(false),
                detail: format!(
                    "{} belongs to campaign `{}`, spec names `{}`",
                    path.display(),
                    scan.campaign,
                    spec.name
                ),
            });
            return;
        }
        if scan.spec_hash != expected {
            report.checks.push(CheckResult {
                name: "spec-hash",
                passed: Some(false),
                detail: format!(
                    "{} was written for spec hash {}, this spec at this run length is {expected}",
                    path.display(),
                    scan.spec_hash
                ),
            });
            return;
        }
        if scan.jobs as usize != jobs {
            report.checks.push(CheckResult {
                name: "spec-hash",
                passed: Some(false),
                detail: format!(
                    "{} claims {} jobs, the spec expands to {jobs}",
                    path.display(),
                    scan.jobs
                ),
            });
            return;
        }
    }
    report.checks.push(CheckResult {
        name: "spec-hash",
        passed: Some(true),
        detail: format!("{expected} matches {} journal header(s)", scans.len()),
    });
}

/// Full replay through the same loader `resume` uses: every job of the
/// canonical expansion must have a (checksum-valid) row.
fn check_completeness(
    options: &VerifyOptions,
    spec: &CampaignSpec,
    scans: &[(PathBuf, JournalScan)],
    report: &mut VerifyReport,
) -> Option<(Vec<Job>, JournalReplay)> {
    if scans.is_empty() {
        report.checks.push(CheckResult {
            name: "completeness",
            passed: None,
            detail: "no journals to replay".to_string(),
        });
        return None;
    }
    let jobs = expand(spec);
    let expected = scans[0].1.spec_hash.clone();
    match JournalReplay::load(&options.dir, &spec.name, &expected, &jobs) {
        Ok(replay) if replay.completed() == jobs.len() => {
            report.checks.push(CheckResult {
                name: "completeness",
                passed: Some(true),
                detail: format!("all {} jobs have checkpointed rows", jobs.len()),
            });
            Some((jobs, replay))
        }
        Ok(replay) => {
            report.checks.push(CheckResult {
                name: "completeness",
                passed: Some(false),
                detail: format!(
                    "only {} of {} jobs have checkpointed rows",
                    replay.completed(),
                    jobs.len()
                ),
            });
            None
        }
        Err(e) => {
            report.checks.push(CheckResult {
                name: "completeness",
                passed: Some(false),
                detail: e.to_string(),
            });
            None
        }
    }
}

/// The reports on disk must equal an `assemble_report` replay of the
/// journal, byte for byte — the same invariant the golden tests pin.
fn check_report_bytes(
    options: &VerifyOptions,
    spec: &CampaignSpec,
    run: RunLength,
    replay: Option<&(Vec<Job>, JournalReplay)>,
    report: &mut VerifyReport,
) {
    let Some((jobs, replay)) = replay else {
        report.checks.push(CheckResult {
            name: "report-bytes",
            passed: None,
            detail: "needs a complete journal replay".to_string(),
        });
        return;
    };
    let stats: Vec<frontend::SimStats> = (0..jobs.len()).map(|i| replay.rows[&i]).collect();
    let assembled = assemble_report(spec, jobs, run, options.smoke, stats);
    for (suffix, rendered) in [("json", to_json(&assembled)), ("csv", to_csv(&assembled))] {
        let path = options.dir.join(format!("{}.{suffix}", spec.name));
        match std::fs::read(&path) {
            Ok(disk) if disk == rendered.as_bytes() => {}
            Ok(disk) => {
                report.checks.push(CheckResult {
                    name: "report-bytes",
                    passed: Some(false),
                    detail: format!(
                        "{} differs from the journal replay ({} bytes on disk, {} replayed)",
                        path.display(),
                        disk.len(),
                        rendered.len()
                    ),
                });
                return;
            }
            Err(e) => {
                report.checks.push(CheckResult {
                    name: "report-bytes",
                    passed: Some(false),
                    detail: format!("cannot read {}: {e}", path.display()),
                });
                return;
            }
        }
    }
    report.checks.push(CheckResult {
        name: "report-bytes",
        passed: Some(true),
        detail: format!(
            "{}.json and {}.csv equal the journal replay byte-for-byte",
            spec.name, spec.name
        ),
    });
}

/// Re-simulates a deterministic sample of rows from scratch — workload
/// generation included — and compares the stats to the journal. The most
/// expensive check, and the only one that can catch a journal whose rows
/// are internally consistent but *wrong* (a miscomputing worker whose
/// session escaped online verification).
fn check_recompute(
    options: &VerifyOptions,
    spec: &CampaignSpec,
    run: RunLength,
    replay: Option<&(Vec<Job>, JournalReplay)>,
    report: &mut VerifyReport,
) {
    if options.recompute == 0 {
        report.checks.push(CheckResult {
            name: "recompute",
            passed: None,
            detail: "needs --recompute N".to_string(),
        });
        return;
    }
    let Some((jobs, replay)) = replay else {
        report.checks.push(CheckResult {
            name: "recompute",
            passed: None,
            detail: "needs a complete journal replay".to_string(),
        });
        return;
    };
    let sample = sample_rows(
        &spec_hash(spec, run, options.smoke),
        jobs.len(),
        options.recompute,
    );
    let configs: Vec<_> = spec.configs.iter().map(|c| c.build()).collect();
    for &index in &sample {
        let job = &jobs[index];
        let profile = &spec.workloads[job.workload].profile;
        let effective = derive_seed(profile.seed, job.seed);
        let profile = profile.clone().with_seed(effective);
        let data = WorkloadData::generate_from_profile(&profile, run);
        let fresh = data.run_with_predictor_engine(
            job.mechanism,
            &configs[job.config],
            spec.predictor,
            frontend::SimEngine::default(),
        );
        let journaled = replay.rows[&index];
        if stats_to_array(&fresh) != stats_to_array(&journaled) {
            report.checks.push(CheckResult {
                name: "recompute",
                passed: Some(false),
                detail: format!(
                    "job {index} ({}, seed {}) re-simulated from scratch contradicts the \
                     journaled row",
                    mechanism_token(job.mechanism),
                    job.seed
                ),
            });
            return;
        }
    }
    report.checks.push(CheckResult {
        name: "recompute",
        passed: Some(true),
        detail: format!(
            "{} of {} rows re-simulated from scratch, all reproduce their journaled stats",
            sample.len(),
            jobs.len()
        ),
    });
}

/// A deterministic sample of `want` distinct row indices out of `total`,
/// seeded by the spec hash (a splitmix-style walk — repeat audits check the
/// same rows, and the sample is independent of directory contents).
fn sample_rows(hash: &str, total: usize, want: usize) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..total).collect();
    let mut state = fnv1a64(hash.as_bytes());
    let mut picked = Vec::new();
    while picked.len() < want && !candidates.is_empty() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let at = (state >> 16) as usize % candidates.len();
        picked.push(candidates.swap_remove(at));
    }
    picked.sort_unstable();
    picked
}

/// Every `wl-*.wla` in the cache: header fields and payload checksum must
/// hold against the content address the filename claims.
fn check_artifacts(options: &VerifyOptions, report: &mut VerifyReport) {
    let Some(cache) = &options.artifact_cache else {
        report.checks.push(CheckResult {
            name: "artifacts",
            passed: None,
            detail: "needs --artifact-cache".to_string(),
        });
        return;
    };
    let entries = match std::fs::read_dir(cache) {
        Ok(entries) => entries,
        Err(e) => {
            report.checks.push(CheckResult {
                name: "artifacts",
                passed: Some(false),
                detail: format!("cannot scan {}: {e}", cache.display()),
            });
            return;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wl-") && n.ends_with(".wla"))
        })
        .collect();
    paths.sort();
    for path in &paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let Some(key) = name
            .strip_prefix("wl-")
            .and_then(|rest| rest.strip_suffix(".wla"))
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        else {
            report.checks.push(CheckResult {
                name: "artifacts",
                passed: Some(false),
                detail: format!("{} has no parseable content address", path.display()),
            });
            return;
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                report.checks.push(CheckResult {
                    name: "artifacts",
                    passed: Some(false),
                    detail: format!("cannot read {}: {e}", path.display()),
                });
                return;
            }
        };
        if let Err(e) = check_header(&bytes, key) {
            report.checks.push(CheckResult {
                name: "artifacts",
                passed: Some(false),
                detail: format!("{}: {e}", path.display()),
            });
            return;
        }
    }
    report.checks.push(CheckResult {
        name: "artifacts",
        passed: Some(true),
        detail: format!("{} artifact(s) verified", paths.len()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::Journal;
    use crate::engine::{run_campaign, EngineOptions};
    use crate::sink::write_reports;

    const SPEC: &str = r#"
name = "vtest"
workloads = ["nutch"]
mechanisms = ["fdip", "boomerang"]

[run]
trace_blocks = 2000
warmup_blocks = 400
"#;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-verify-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A complete, internally consistent campaign directory: journal from a
    /// real run plus the matching reports, exactly what `run --out` leaves.
    fn golden_dir(tag: &str) -> (PathBuf, PathBuf) {
        let dir = temp_dir(tag);
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
        let jobs = expand(&spec);
        let hash = spec_hash(&spec, spec.run, false);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        for (job, row) in jobs.iter().zip(&report.rows) {
            journal.record(job, &row.stats).unwrap();
        }
        write_reports(&report, &dir).unwrap();
        let spec_path = dir.join("vtest-spec.toml");
        std::fs::write(&spec_path, SPEC).unwrap();
        (dir, spec_path)
    }

    #[test]
    fn golden_directory_passes_every_check() {
        let (dir, spec_path) = golden_dir("golden");
        let report = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            spec: Some(spec_path),
            smoke: false,
            recompute: 2,
            artifact_cache: None,
        });
        assert!(report.passed(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("verify: PASS"), "{rendered}");
        // Every spec-dependent check actually ran.
        for name in [
            "journal-rows",
            "spec-hash",
            "completeness",
            "report-bytes",
            "recompute",
        ] {
            assert!(
                report
                    .checks
                    .iter()
                    .any(|c| c.name == name && c.passed == Some(true)),
                "{name} did not pass:\n{rendered}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_journal_row_fails_the_audit() {
        let (dir, spec_path) = golden_dir("flip");
        let journal = dir.join("vtest.journal.jsonl");
        let mut bytes = std::fs::read(&journal).unwrap();
        // Flip one digit in an interior row (the second line).
        let second_line = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let target = bytes[second_line..]
            .iter()
            .position(|b| b.is_ascii_digit())
            .unwrap()
            + second_line;
        bytes[target] = if bytes[target] == b'9' {
            b'0'
        } else {
            bytes[target] + 1
        };
        std::fs::write(&journal, bytes).unwrap();

        let report = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            spec: Some(spec_path),
            ..VerifyOptions::default()
        });
        assert!(!report.passed(), "{}", report.render());
        let failing = report
            .checks
            .iter()
            .find(|c| c.passed == Some(false))
            .unwrap();
        assert!(
            failing.detail.contains(":2") || failing.detail.contains("row"),
            "failure does not locate the damage: {}",
            failing.detail
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_report_fails_the_audit() {
        let (dir, spec_path) = golden_dir("report-flip");
        let json = dir.join("vtest.json");
        let mut bytes = std::fs::read(&json).unwrap();
        let target = bytes.iter().position(|b| b.is_ascii_digit()).unwrap();
        bytes[target] = if bytes[target] == b'9' {
            b'0'
        } else {
            bytes[target] + 1
        };
        std::fs::write(&json, bytes).unwrap();

        let report = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            spec: Some(spec_path),
            ..VerifyOptions::default()
        });
        assert!(!report.passed(), "{}", report.render());
        assert!(
            report
                .checks
                .iter()
                .any(|c| c.name == "report-bytes" && c.passed == Some(false)),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn specless_audit_checks_row_checksums_only() {
        let (dir, _) = golden_dir("specless");
        let report = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            ..VerifyOptions::default()
        });
        assert!(report.passed(), "{}", report.render());
        assert!(
            report
                .checks
                .iter()
                .any(|c| c.name == "journal-rows" && c.passed == Some(true)),
            "{}",
            report.render()
        );
        assert!(
            report
                .checks
                .iter()
                .any(|c| c.name == "report-bytes" && c.passed.is_none()),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_artifact_fails_the_audit() {
        use crate::artifact::ArtifactCache;
        let dir = temp_dir("artifacts");
        let cache_dir = dir.join("cache");
        let spec = CampaignSpec::from_toml_str(SPEC).unwrap();
        let profile = spec.workloads[0].profile.clone();
        let data = WorkloadData::generate_from_profile(&profile, spec.run);
        let cache = ArtifactCache::open(&cache_dir).unwrap();
        cache.store(&profile, spec.run, &data).unwrap();

        let clean = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            artifact_cache: Some(cache_dir.clone()),
            ..VerifyOptions::default()
        });
        assert!(
            clean
                .checks
                .iter()
                .any(|c| c.name == "artifacts" && c.passed == Some(true)),
            "{}",
            clean.render()
        );

        // Flip the final payload byte of the stored artifact.
        let artifact = std::fs::read_dir(&cache_dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|e| e == "wla"))
            .unwrap();
        let mut bytes = std::fs::read(&artifact).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&artifact, bytes).unwrap();

        let damaged = verify_dir(&VerifyOptions {
            dir: dir.clone(),
            artifact_cache: Some(cache_dir),
            ..VerifyOptions::default()
        });
        assert!(
            damaged
                .checks
                .iter()
                .any(|c| c.name == "artifacts" && c.passed == Some(false)),
            "{}",
            damaged.render()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_sample_is_deterministic_and_distinct() {
        let a = sample_rows("fnv1a64:00c0ffee", 45, 8);
        let b = sample_rows("fnv1a64:00c0ffee", 45, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup, a, "sampled indices must be distinct");
        assert!(a.iter().all(|&i| i < 45));
        // Want more than exists → everything, once.
        assert_eq!(sample_rows("x", 3, 10).len(), 3);
    }
}
