//! Report rendering: JSON, CSV, a human-readable table — and streaming
//! row sinks that flush each result the moment its job completes.
//!
//! The batch renderers are pure functions of the [`CampaignReport`] row list,
//! which the engine emits in canonical job order — so for a given spec the
//! bytes written here are identical no matter how the sweep was sharded. The
//! [`StreamingSink`] complements them: it writes the *same row schema* in
//! completion order while the campaign is still running, so long sweeps are
//! observable (and greppable) before the canonical report exists.

use crate::engine::{CampaignReport, PartialReport, PartialRow, RowResult};
use crate::expand::Job;
use crate::fault;
use crate::json::Json;
use crate::spec::{mechanism_token, CampaignSpec};
use boomerang::Mechanism;
use frontend::SimStats;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Renders the full JSON report.
pub fn to_json(report: &CampaignReport) -> String {
    let rows: Vec<Json> = report.rows.iter().map(row_json).collect();
    Json::object()
        .field("campaign", report.spec.name.as_str())
        .field("description", report.spec.description.as_str())
        .field(
            "run",
            Json::object()
                .field("trace_blocks", report.effective_run.trace_blocks)
                .field("warmup_blocks", report.effective_run.warmup_blocks)
                .field("smoke", report.smoke),
        )
        .field("jobs", report.rows.len())
        .field("results", rows)
        .pretty()
}

fn row_json(row: &RowResult) -> Json {
    let s = &row.stats;
    let squash_rates = s.squashes_per_kilo();
    Json::object()
        .field("config", row.config_label.as_str())
        .field("workload", row.workload_label.as_str())
        .field("mechanism", mechanism_token(row.job.mechanism))
        .field("seed", row.job.seed)
        .field("baseline_ref", row.job.implicit_baseline)
        .field("speedup", row.speedup())
        .field("stall_coverage", row.coverage())
        .field("ipc", s.ipc())
        .field("btb_miss_rate", s.btb_miss_rate())
        .field("squashes_per_ki", squash_rates.total())
        .field(
            "stats",
            Json::object()
                .field("instructions", s.instructions)
                .field("cycles", s.cycles)
                .field("fetch_stall_cycles", s.fetch_stall_cycles)
                .field("squash_stall_cycles", s.squash_stall_cycles)
                .field("ftq_empty_cycles", s.ftq_empty_cycles)
                .field("rob_full_cycles", s.rob_full_cycles)
                .field("squashes_btb_miss", s.squashes.btb_miss)
                .field("squashes_misprediction", s.squashes.misprediction)
                .field("btb_lookups", s.btb_lookups)
                .field("btb_misses", s.btb_misses)
                .field("prefetch_buffer_hits", s.prefetch_buffer_hits)
                .field("prefetches_issued", s.prefetches_issued)
                .field("conditional_predictions", s.conditional_predictions)
                .field("conditional_mispredictions", s.conditional_mispredictions)
                .field("miss_breakdown_sequential", s.miss_breakdown.sequential)
                .field("miss_breakdown_conditional", s.miss_breakdown.conditional)
                .field(
                    "miss_breakdown_unconditional",
                    s.miss_breakdown.unconditional,
                ),
        )
        .field("baseline_cycles", row.baseline.cycles)
        .field(
            "baseline_fetch_stall_cycles",
            row.baseline.fetch_stall_cycles,
        )
}

/// The CSV column header, shared by [`to_csv`] and the streaming CSV so the
/// two can never drift.
const CSV_HEADER: &str = "config,workload,mechanism,seed,baseline_ref,speedup,stall_coverage,ipc,\
                          instructions,cycles,fetch_stall_cycles,btb_miss_rate,\
                          mispredict_per_ki,btb_miss_per_ki";

/// One CSV line (no trailing newline) for a row, RFC-4180 quoting for the
/// label fields.
fn csv_row(row: &RowResult) -> String {
    let s = &row.stats;
    let rates = s.squashes_per_kilo();
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        csv_field(&row.config_label),
        csv_field(&row.workload_label),
        csv_field(&mechanism_token(row.job.mechanism)),
        row.job.seed,
        row.job.implicit_baseline,
        row.speedup(),
        row.coverage(),
        s.ipc(),
        s.instructions,
        s.cycles,
        s.fetch_stall_cycles,
        s.btb_miss_rate(),
        rates.misprediction,
        rates.btb_miss,
    )
}

/// Renders the CSV report (header + one line per row).
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for row in &report.rows {
        let _ = writeln!(out, "{}", csv_row(row));
    }
    out
}

fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a per-config speedup table (one row per workload, one column per
/// mechanism, arithmetic-mean footer), in the style of the paper's figures.
pub fn to_table(report: &CampaignReport) -> String {
    let mut out = String::new();
    for (config_idx, point) in report.spec.configs.iter().enumerate() {
        for &seed in &report.spec.seeds {
            let rows: Vec<&RowResult> = report
                .rows
                .iter()
                .filter(|r| {
                    r.job.config == config_idx && r.job.seed == seed && !r.job.implicit_baseline
                })
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _ = write!(out, "\n=== {} — config `{}`", report.spec.name, point.label);
            if report.spec.seeds.len() > 1 {
                let _ = write!(out, ", seed {seed}");
            }
            let _ = writeln!(out, " — speedup over no-prefetch baseline ===");

            // One column per distinct mechanism (not per label: several
            // Boomerang throttle variants share the "Boomerang" label, and
            // each must keep its own column). Headers fall back to the spec
            // token whenever a label is ambiguous within this table.
            let mut mechanisms: Vec<boomerang::Mechanism> = Vec::new();
            for row in &rows {
                if !mechanisms.contains(&row.job.mechanism) {
                    mechanisms.push(row.job.mechanism);
                }
            }
            let headers: Vec<String> = mechanisms
                .iter()
                .map(|&m| {
                    let ambiguous = mechanisms
                        .iter()
                        .filter(|&&other| other.label() == m.label())
                        .count()
                        > 1;
                    if ambiguous {
                        mechanism_token(m)
                    } else {
                        m.label().to_string()
                    }
                })
                .collect();
            // Column width fits the longest header plus a separating space;
            // the workload column fits the longest label (12 keeps the
            // paper-preset tables byte-stable).
            let width = headers.iter().map(String::len).max().unwrap_or(0).max(12) + 1;
            let name_width = report
                .spec
                .workloads
                .iter()
                .map(|w| w.label.len())
                .max()
                .unwrap_or(0)
                .max(12);
            let _ = write!(out, "{:<name_width$}", "workload");
            for h in &headers {
                let _ = write!(out, "{h:>width$}");
            }
            out.push('\n');

            let mut columns: Vec<Vec<f64>> = vec![Vec::new(); mechanisms.len()];
            for (workload, point) in report.spec.workloads.iter().enumerate() {
                let _ = write!(out, "{:<name_width$}", point.label);
                for (col, &m) in mechanisms.iter().enumerate() {
                    let cell = rows
                        .iter()
                        .find(|r| r.job.workload == workload && r.job.mechanism == m);
                    match cell {
                        Some(r) => {
                            let v = r.speedup();
                            columns[col].push(v);
                            let _ = write!(out, "{v:>width$.3}");
                        }
                        None => {
                            let _ = write!(out, "{:>width$}", "-");
                        }
                    }
                }
                out.push('\n');
            }
            let _ = write!(out, "{:<name_width$}", "Avg");
            for col in &columns {
                let avg = sim_core::stats::arithmetic_mean(col);
                let _ = write!(out, "{avg:>width$.3}");
            }
            out.push('\n');
        }
    }
    out
}

/// Streams report rows to `<name>.rows.jsonl` and `<name>.rows.csv` as jobs
/// complete, in completion order.
///
/// The streamed rows use exactly the same schema as the final report (the
/// JSONL lines are compact renderings of the JSON report's `results`
/// entries; the CSV shares [`to_csv`]'s header), but the *order* is whatever
/// the thread pool produced — the canonical, byte-stable report is still
/// written at the end of the run and is the artifact of record.
///
/// Speedup and coverage need the group's baseline run, which may complete
/// after other rows of its group: such rows are buffered and flushed the
/// moment the baseline lands. Canonical job order puts every baseline before
/// its group, so replaying checkpointed rows through [`StreamingSink::record`]
/// in index order (what `resume` does) never leaves anything buffered.
///
/// `record` locks an internal mutex, so a `&StreamingSink` can be used
/// directly from the engine's `on_row` worker-thread callback.
#[derive(Debug)]
pub struct StreamingSink {
    paths: ReportPaths,
    state: Mutex<StreamState>,
}

#[derive(Debug)]
struct StreamState {
    spec: CampaignSpec,
    jsonl: File,
    csv: File,
    baselines: HashMap<(usize, usize, u64), SimStats>,
    pending: HashMap<(usize, usize, u64), Vec<(Job, SimStats)>>,
}

impl StreamingSink {
    /// Creates (truncating) the two stream files under `dir` and writes the
    /// CSV header.
    pub fn create(spec: &CampaignSpec, dir: &Path) -> io::Result<StreamingSink> {
        std::fs::create_dir_all(dir)?;
        let paths = ReportPaths {
            json: dir.join(format!("{}.rows.jsonl", spec.name)),
            csv: dir.join(format!("{}.rows.csv", spec.name)),
        };
        let jsonl = File::create(&paths.json)?;
        let mut csv = File::create(&paths.csv)?;
        writeln!(csv, "{CSV_HEADER}")?;
        Ok(StreamingSink {
            paths,
            state: Mutex::new(StreamState {
                spec: spec.clone(),
                jsonl,
                csv,
                baselines: HashMap::new(),
                pending: HashMap::new(),
            }),
        })
    }

    /// The stream file paths (`json` is the JSONL stream).
    pub fn paths(&self) -> &ReportPaths {
        &self.paths
    }

    /// Records one completed job. Baseline rows flush immediately (and
    /// release any rows of their group that were waiting); other rows flush
    /// immediately if their baseline is known, otherwise they wait for it.
    pub fn record(&self, job: &Job, stats: &SimStats) -> io::Result<()> {
        let mut state = self.state.lock().expect("stream sink mutex poisoned");
        let group = (job.config, job.workload, job.seed);
        if job.mechanism == Mechanism::Baseline {
            state.baselines.insert(group, *stats);
            state.emit(*job, *stats, *stats)?;
            for (waiting_job, waiting_stats) in state.pending.remove(&group).unwrap_or_default() {
                state.emit(waiting_job, waiting_stats, *stats)?;
            }
        } else if let Some(&baseline) = state.baselines.get(&group) {
            state.emit(*job, *stats, baseline)?;
        } else {
            state.pending.entry(group).or_default().push((*job, *stats));
        }
        Ok(())
    }

    /// Number of rows still waiting for their group baseline. Non-zero only
    /// when the run was cut short (e.g. `--max-rows`) before a group's
    /// baseline completed — those rows are in the journal and will stream on
    /// resume.
    pub fn pending(&self) -> usize {
        let state = self.state.lock().expect("stream sink mutex poisoned");
        state.pending.values().map(Vec::len).sum()
    }
}

impl StreamState {
    fn emit(&mut self, job: Job, stats: SimStats, baseline: SimStats) -> io::Result<()> {
        let row = RowResult {
            job,
            config_label: self.spec.configs[job.config].label.clone(),
            workload_label: self.spec.workloads[job.workload].label.clone(),
            stats,
            baseline,
        };
        let mut line = row_json(&row).compact();
        line.push('\n');
        self.jsonl.write_all(line.as_bytes())?;
        let mut csv_line = csv_row(&row);
        csv_line.push('\n');
        self.csv.write_all(csv_line.as_bytes())?;
        Ok(())
    }
}

/// The files a campaign run writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportPaths {
    /// The JSON report path.
    pub json: PathBuf,
    /// The CSV report path.
    pub csv: PathBuf,
}

/// Writes `bytes` to `path` atomically: a `.tmp-<pid>` sibling first, then a
/// rename. A kill mid-write leaves at worst a stale temp file — readers of
/// `path` only ever see complete old bytes or complete new bytes, never a
/// torn report.
///
/// This is also the report-write fault point: an armed `report-torn` plan
/// (see [`crate::fault`]) stops the temp write halfway and exits, which is
/// exactly the crash the rename discipline must make invisible.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    if fault::tear_this_report_write() {
        file.write_all(&bytes[..bytes.len() / 2])?;
        let _ = file.flush();
        fault::exit_now();
    }
    file.write_all(bytes)?;
    // Surfaced, not swallowed: a full disk often reports ENOSPC only when
    // the buffered bytes hit the device, and renaming an unsynced temp into
    // place would publish a report that was never durably written.
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, path)
}

/// Writes `<name>.json` and `<name>.csv` under `dir` (created if needed).
/// Each file is written atomically (temp + rename), so a crash mid-write
/// never leaves a torn report behind.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(report: &CampaignReport, dir: &Path) -> io::Result<ReportPaths> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join(format!("{}.json", report.spec.name));
    let csv = dir.join(format!("{}.csv", report.spec.name));
    write_atomic(&json, to_json(report).as_bytes())?;
    write_atomic(&csv, to_csv(report).as_bytes())?;
    Ok(ReportPaths { json, csv })
}

/// Renders the JSON form of a degraded report. The shape follows [`to_json`]
/// with three additions: a top-level `"partial": true` + `"missing_rows"` +
/// `"degraded"` preamble, a `"status"` on every row (`ok` / `no-baseline` /
/// `missing`), and `null` for every metric a hole makes uncomputable —
/// explicit damage, never silently absent rows.
pub fn to_json_partial(report: &PartialReport) -> String {
    let rows: Vec<Json> = report.rows.iter().map(partial_row_json).collect();
    Json::object()
        .field("campaign", report.spec.name.as_str())
        .field("description", report.spec.description.as_str())
        .field(
            "run",
            Json::object()
                .field("trace_blocks", report.effective_run.trace_blocks)
                .field("warmup_blocks", report.effective_run.warmup_blocks)
                .field("smoke", report.smoke),
        )
        .field("partial", true)
        .field("missing_rows", report.missing())
        .field(
            "degraded",
            report
                .degraded
                .iter()
                .map(|note| Json::from(note.as_str()))
                .collect::<Vec<Json>>(),
        )
        .field("jobs", report.rows.len())
        .field("results", rows)
        .pretty()
}

fn partial_row_json(row: &PartialRow) -> Json {
    match row {
        PartialRow::Present(full) => row_json(full).field("status", row.status()),
        PartialRow::NoBaseline {
            job,
            config_label,
            workload_label,
            stats: s,
        } => {
            let squash_rates = s.squashes_per_kilo();
            Json::object()
                .field("config", config_label.as_str())
                .field("workload", workload_label.as_str())
                .field("mechanism", mechanism_token(job.mechanism))
                .field("seed", job.seed)
                .field("baseline_ref", job.implicit_baseline)
                .field("speedup", Json::Null)
                .field("stall_coverage", Json::Null)
                .field("ipc", s.ipc())
                .field("btb_miss_rate", s.btb_miss_rate())
                .field("squashes_per_ki", squash_rates.total())
                .field(
                    "stats",
                    Json::object()
                        .field("instructions", s.instructions)
                        .field("cycles", s.cycles)
                        .field("fetch_stall_cycles", s.fetch_stall_cycles),
                )
                .field("baseline_cycles", Json::Null)
                .field("baseline_fetch_stall_cycles", Json::Null)
                .field("status", row.status())
        }
        PartialRow::Missing {
            job,
            config_label,
            workload_label,
        } => Json::object()
            .field("config", config_label.as_str())
            .field("workload", workload_label.as_str())
            .field("mechanism", mechanism_token(job.mechanism))
            .field("seed", job.seed)
            .field("baseline_ref", job.implicit_baseline)
            .field("status", row.status()),
    }
}

/// The CSV header of a degraded report: the canonical columns plus a
/// trailing `status`.
const CSV_PARTIAL_SUFFIX: &str = ",status";

/// Renders the CSV form of a degraded report: [`to_csv`]'s columns plus a
/// `status` column. `ok` rows carry the exact values the complete report
/// would; `no-baseline` rows blank the two baseline-derived columns;
/// `missing` rows keep their five identity columns and blank the rest.
pub fn to_csv_partial(report: &PartialReport) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push_str(CSV_PARTIAL_SUFFIX);
    out.push('\n');
    for row in &report.rows {
        match row {
            PartialRow::Present(full) => {
                let _ = writeln!(out, "{},{}", csv_row(full), row.status());
            }
            PartialRow::NoBaseline {
                job,
                config_label,
                workload_label,
                stats: s,
            } => {
                let rates = s.squashes_per_kilo();
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},,,{},{},{},{},{},{},{},{}",
                    csv_field(config_label),
                    csv_field(workload_label),
                    csv_field(&mechanism_token(job.mechanism)),
                    job.seed,
                    job.implicit_baseline,
                    s.ipc(),
                    s.instructions,
                    s.cycles,
                    s.fetch_stall_cycles,
                    s.btb_miss_rate(),
                    rates.misprediction,
                    rates.btb_miss,
                    row.status(),
                );
            }
            PartialRow::Missing {
                job,
                config_label,
                workload_label,
            } => {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},,,,,,,,,,{}",
                    csv_field(config_label),
                    csv_field(workload_label),
                    csv_field(&mechanism_token(job.mechanism)),
                    job.seed,
                    job.implicit_baseline,
                    row.status(),
                );
            }
        }
    }
    out
}

/// Writes the degraded `<name>.json` / `<name>.csv` under `dir`, atomically,
/// under the same names the complete report would use — downstream tooling
/// reads one location and checks the `partial` flag.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_partial_reports(report: &PartialReport, dir: &Path) -> io::Result<ReportPaths> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join(format!("{}.json", report.spec.name));
    let csv = dir.join(format!("{}.csv", report.spec.name));
    write_atomic(&json, to_json_partial(report).as_bytes())?;
    write_atomic(&csv, to_csv_partial(report).as_bytes())?;
    Ok(ReportPaths { json, csv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_campaign, EngineOptions};
    use crate::spec::CampaignSpec;

    fn tiny_report() -> CampaignReport {
        let spec = CampaignSpec::from_toml_str(
            "name = \"sink-test\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = 2000\nwarmup_blocks = 400\n",
        )
        .unwrap();
        run_campaign(&spec, &EngineOptions::default()).unwrap()
    }

    #[test]
    fn json_has_per_row_entries() {
        let report = tiny_report();
        let text = to_json(&report);
        assert!(text.contains("\"campaign\": \"sink-test\""));
        assert!(text.contains("\"jobs\": 2"));
        assert!(text.contains("\"mechanism\": \"fdip\""));
        assert!(text.contains("\"mechanism\": \"baseline\""));
        assert!(text.ends_with("\n"));
    }

    #[test]
    fn csv_row_count_matches() {
        let report = tiny_report();
        let csv = to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + report.rows.len());
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("table1,Nutch,baseline,0,true"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn partial_renderers_mark_damage_explicitly() {
        use crate::engine::assemble_partial_report;
        let report = tiny_report();
        let jobs: Vec<Job> = report.rows.iter().map(|r| r.job).collect();
        // Drop the baseline row: its own row goes missing and the fdip row
        // loses its derived metrics.
        let stats: Vec<Option<SimStats>> = report
            .rows
            .iter()
            .map(|r| (!r.job.implicit_baseline).then_some(r.stats))
            .collect();
        let partial = assemble_partial_report(
            &report.spec,
            &jobs,
            report.effective_run,
            report.smoke,
            &stats,
            vec!["worker shard 0 failed after 3 attempt(s)".into()],
        );
        assert_eq!(partial.missing(), 1);

        let json = to_json_partial(&partial);
        assert!(json.contains("\"partial\": true"), "{json}");
        assert!(json.contains("\"missing_rows\": 1"), "{json}");
        assert!(json.contains("\"status\": \"missing\""), "{json}");
        assert!(json.contains("\"status\": \"no-baseline\""), "{json}");
        assert!(json.contains("\"speedup\": null"), "{json}");
        assert!(json.contains("worker shard 0 failed"), "{json}");

        let csv = to_csv_partial(&partial);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert!(csv.lines().next().unwrap().ends_with(",status"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_cols, "ragged row: {line}");
        }
        assert!(csv.lines().any(|l| l.ends_with(",missing")), "{csv}");
        assert!(csv.lines().any(|l| l.ends_with(",no-baseline")), "{csv}");
    }

    #[test]
    fn atomic_write_leaves_no_temp_behind() {
        let report = tiny_report();
        let dir = std::env::temp_dir().join(format!("boomerang-atomicw-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let paths = write_reports(&report, &dir).unwrap();
        assert_eq!(
            std::fs::read_to_string(&paths.json).unwrap(),
            to_json(&report)
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_keeps_boomerang_throttle_variants_apart() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"throttles\"\nworkloads = [\"nutch\"]\nmechanisms = [\"boomerang\", \"boomerang:none\", \"fdip\"]\n\n[run]\ntrace_blocks = 2000\nwarmup_blocks = 400\n",
        )
        .unwrap();
        let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
        let table = to_table(&report);
        // Ambiguous labels fall back to spec tokens; unambiguous ones keep
        // their figure label.
        assert!(table.contains("FDIP"), "{table}");
        let header = table.lines().nth(2).unwrap();
        assert!(
            header.contains("boomerang") && header.contains("boomerang:none"),
            "each throttle variant needs its own column: {header}"
        );
        // Three mechanism columns + the workload row label.
        assert_eq!(header.split_whitespace().count(), 4, "{header}");
    }

    #[test]
    fn streaming_sink_matches_batch_rows_even_out_of_order() {
        let report = tiny_report();
        let dir = std::env::temp_dir().join(format!("boomerang-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = StreamingSink::create(&report.spec, &dir).unwrap();
        // Feed rows in reverse completion order: mechanism rows arrive before
        // their baseline and must be buffered, then flushed.
        for row in report.rows.iter().rev() {
            sink.record(&row.job, &row.stats).unwrap();
        }
        assert_eq!(sink.pending(), 0);
        let paths = sink.paths().clone();
        drop(sink);

        let jsonl = std::fs::read_to_string(&paths.json).unwrap();
        let mut streamed: Vec<&str> = jsonl.lines().collect();
        let mut expected: Vec<String> = report.rows.iter().map(|r| row_json(r).compact()).collect();
        streamed.sort_unstable();
        expected.sort_unstable();
        assert_eq!(streamed, expected);

        let csv_stream = std::fs::read_to_string(&paths.csv).unwrap();
        let batch = to_csv(&report);
        assert_eq!(
            csv_stream.lines().next(),
            batch.lines().next(),
            "same header"
        );
        let mut streamed: Vec<&str> = csv_stream.lines().skip(1).collect();
        let mut expected: Vec<&str> = batch.lines().skip(1).collect();
        streamed.sort_unstable();
        expected.sort_unstable();
        assert_eq!(streamed, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_lists_workloads_and_mechanisms() {
        let report = tiny_report();
        let table = to_table(&report);
        assert!(table.contains("Nutch"));
        assert!(table.contains("FDIP"));
        assert!(table.contains("Avg"));
        // The implicit baseline reference is not a table column.
        assert!(!table.contains("Baseline"));
    }
}
