//! Report rendering: JSON, CSV, and a human-readable table.
//!
//! All three renderers are pure functions of the [`CampaignReport`] row list,
//! which the engine emits in canonical job order — so for a given spec the
//! bytes written here are identical no matter how the sweep was sharded.

use crate::engine::{CampaignReport, RowResult};
use crate::json::Json;
use crate::spec::mechanism_token;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Renders the full JSON report.
pub fn to_json(report: &CampaignReport) -> String {
    let rows: Vec<Json> = report.rows.iter().map(row_json).collect();
    Json::object()
        .field("campaign", report.spec.name.as_str())
        .field("description", report.spec.description.as_str())
        .field(
            "run",
            Json::object()
                .field("trace_blocks", report.effective_run.trace_blocks)
                .field("warmup_blocks", report.effective_run.warmup_blocks)
                .field("smoke", report.smoke),
        )
        .field("jobs", report.rows.len())
        .field("results", rows)
        .pretty()
}

fn row_json(row: &RowResult) -> Json {
    let s = &row.stats;
    let squash_rates = s.squashes_per_kilo();
    Json::object()
        .field("config", row.config_label.as_str())
        .field("workload", row.workload_label.as_str())
        .field("mechanism", mechanism_token(row.job.mechanism))
        .field("seed", row.job.seed)
        .field("baseline_ref", row.job.implicit_baseline)
        .field("speedup", row.speedup())
        .field("stall_coverage", row.coverage())
        .field("ipc", s.ipc())
        .field("btb_miss_rate", s.btb_miss_rate())
        .field("squashes_per_ki", squash_rates.total())
        .field(
            "stats",
            Json::object()
                .field("instructions", s.instructions)
                .field("cycles", s.cycles)
                .field("fetch_stall_cycles", s.fetch_stall_cycles)
                .field("squash_stall_cycles", s.squash_stall_cycles)
                .field("ftq_empty_cycles", s.ftq_empty_cycles)
                .field("rob_full_cycles", s.rob_full_cycles)
                .field("squashes_btb_miss", s.squashes.btb_miss)
                .field("squashes_misprediction", s.squashes.misprediction)
                .field("btb_lookups", s.btb_lookups)
                .field("btb_misses", s.btb_misses)
                .field("prefetch_buffer_hits", s.prefetch_buffer_hits)
                .field("prefetches_issued", s.prefetches_issued)
                .field("conditional_predictions", s.conditional_predictions)
                .field("conditional_mispredictions", s.conditional_mispredictions)
                .field("miss_breakdown_sequential", s.miss_breakdown.sequential)
                .field("miss_breakdown_conditional", s.miss_breakdown.conditional)
                .field(
                    "miss_breakdown_unconditional",
                    s.miss_breakdown.unconditional,
                ),
        )
        .field("baseline_cycles", row.baseline.cycles)
        .field(
            "baseline_fetch_stall_cycles",
            row.baseline.fetch_stall_cycles,
        )
}

/// Renders the CSV report (header + one line per row, RFC-4180 quoting for
/// the label fields).
pub fn to_csv(report: &CampaignReport) -> String {
    let mut out = String::from(
        "config,workload,mechanism,seed,baseline_ref,speedup,stall_coverage,ipc,\
         instructions,cycles,fetch_stall_cycles,btb_miss_rate,\
         mispredict_per_ki,btb_miss_per_ki\n",
    );
    for row in &report.rows {
        let s = &row.stats;
        let rates = s.squashes_per_kilo();
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&row.config_label),
            csv_field(&row.workload_label),
            csv_field(&mechanism_token(row.job.mechanism)),
            row.job.seed,
            row.job.implicit_baseline,
            row.speedup(),
            row.coverage(),
            s.ipc(),
            s.instructions,
            s.cycles,
            s.fetch_stall_cycles,
            s.btb_miss_rate(),
            rates.misprediction,
            rates.btb_miss,
        );
    }
    out
}

fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a per-config speedup table (one row per workload, one column per
/// mechanism, arithmetic-mean footer), in the style of the paper's figures.
pub fn to_table(report: &CampaignReport) -> String {
    let mut out = String::new();
    for (config_idx, point) in report.spec.configs.iter().enumerate() {
        for &seed in &report.spec.seeds {
            let rows: Vec<&RowResult> = report
                .rows
                .iter()
                .filter(|r| {
                    r.job.config == config_idx && r.job.seed == seed && !r.job.implicit_baseline
                })
                .collect();
            if rows.is_empty() {
                continue;
            }
            let _ = write!(out, "\n=== {} — config `{}`", report.spec.name, point.label);
            if report.spec.seeds.len() > 1 {
                let _ = write!(out, ", seed {seed}");
            }
            let _ = writeln!(out, " — speedup over no-prefetch baseline ===");

            // One column per distinct mechanism (not per label: several
            // Boomerang throttle variants share the "Boomerang" label, and
            // each must keep its own column). Headers fall back to the spec
            // token whenever a label is ambiguous within this table.
            let mut mechanisms: Vec<boomerang::Mechanism> = Vec::new();
            for row in &rows {
                if !mechanisms.contains(&row.job.mechanism) {
                    mechanisms.push(row.job.mechanism);
                }
            }
            let headers: Vec<String> = mechanisms
                .iter()
                .map(|&m| {
                    let ambiguous = mechanisms
                        .iter()
                        .filter(|&&other| other.label() == m.label())
                        .count()
                        > 1;
                    if ambiguous {
                        mechanism_token(m)
                    } else {
                        m.label().to_string()
                    }
                })
                .collect();
            // Column width fits the longest header plus a separating space;
            // the workload column fits the longest label (12 keeps the
            // paper-preset tables byte-stable).
            let width = headers.iter().map(String::len).max().unwrap_or(0).max(12) + 1;
            let name_width = report
                .spec
                .workloads
                .iter()
                .map(|w| w.label.len())
                .max()
                .unwrap_or(0)
                .max(12);
            let _ = write!(out, "{:<name_width$}", "workload");
            for h in &headers {
                let _ = write!(out, "{h:>width$}");
            }
            out.push('\n');

            let mut columns: Vec<Vec<f64>> = vec![Vec::new(); mechanisms.len()];
            for (workload, point) in report.spec.workloads.iter().enumerate() {
                let _ = write!(out, "{:<name_width$}", point.label);
                for (col, &m) in mechanisms.iter().enumerate() {
                    let cell = rows
                        .iter()
                        .find(|r| r.job.workload == workload && r.job.mechanism == m);
                    match cell {
                        Some(r) => {
                            let v = r.speedup();
                            columns[col].push(v);
                            let _ = write!(out, "{v:>width$.3}");
                        }
                        None => {
                            let _ = write!(out, "{:>width$}", "-");
                        }
                    }
                }
                out.push('\n');
            }
            let _ = write!(out, "{:<name_width$}", "Avg");
            for col in &columns {
                let avg = sim_core::stats::arithmetic_mean(col);
                let _ = write!(out, "{avg:>width$.3}");
            }
            out.push('\n');
        }
    }
    out
}

/// The files a campaign run writes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportPaths {
    /// The JSON report path.
    pub json: PathBuf,
    /// The CSV report path.
    pub csv: PathBuf,
}

/// Writes `<name>.json` and `<name>.csv` under `dir` (created if needed).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_reports(report: &CampaignReport, dir: &Path) -> io::Result<ReportPaths> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join(format!("{}.json", report.spec.name));
    let csv = dir.join(format!("{}.csv", report.spec.name));
    std::fs::write(&json, to_json(report))?;
    std::fs::write(&csv, to_csv(report))?;
    Ok(ReportPaths { json, csv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_campaign, EngineOptions};
    use crate::spec::CampaignSpec;

    fn tiny_report() -> CampaignReport {
        let spec = CampaignSpec::from_toml_str(
            "name = \"sink-test\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = 2000\nwarmup_blocks = 400\n",
        )
        .unwrap();
        run_campaign(&spec, &EngineOptions::default()).unwrap()
    }

    #[test]
    fn json_has_per_row_entries() {
        let report = tiny_report();
        let text = to_json(&report);
        assert!(text.contains("\"campaign\": \"sink-test\""));
        assert!(text.contains("\"jobs\": 2"));
        assert!(text.contains("\"mechanism\": \"fdip\""));
        assert!(text.contains("\"mechanism\": \"baseline\""));
        assert!(text.ends_with("\n"));
    }

    #[test]
    fn csv_row_count_matches() {
        let report = tiny_report();
        let csv = to_csv(&report);
        assert_eq!(csv.lines().count(), 1 + report.rows.len());
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("table1,Nutch,baseline,0,true"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn table_keeps_boomerang_throttle_variants_apart() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"throttles\"\nworkloads = [\"nutch\"]\nmechanisms = [\"boomerang\", \"boomerang:none\", \"fdip\"]\n\n[run]\ntrace_blocks = 2000\nwarmup_blocks = 400\n",
        )
        .unwrap();
        let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
        let table = to_table(&report);
        // Ambiguous labels fall back to spec tokens; unambiguous ones keep
        // their figure label.
        assert!(table.contains("FDIP"), "{table}");
        let header = table.lines().nth(2).unwrap();
        assert!(
            header.contains("boomerang") && header.contains("boomerang:none"),
            "each throttle variant needs its own column: {header}"
        );
        // Three mechanism columns + the workload row label.
        assert_eq!(header.split_whitespace().count(), 4, "{header}");
    }

    #[test]
    fn table_lists_workloads_and_mechanisms() {
        let report = tiny_report();
        let table = to_table(&report);
        assert!(table.contains("Nutch"));
        assert!(table.contains("FDIP"));
        assert!(table.contains("Avg"));
        // The implicit baseline reference is not a table column.
        assert!(!table.contains("Baseline"));
    }
}
