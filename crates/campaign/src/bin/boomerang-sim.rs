//! `boomerang-sim` — the command-line front door to the Boomerang simulator.
//!
//! ```text
//! boomerang-sim run <spec.toml> [--jobs N] [--smoke] [--out DIR] [--quiet]
//! boomerang-sim run --preset <name> [...]
//! boomerang-sim resume <spec.toml> [--out DIR] [...]
//! boomerang-sim serve --spool DIR [--out DIR] [--workers N] [--once]
//! boomerang-sim serve --spool DIR --listen ADDR [--workers N] [...]
//! boomerang-sim worker --connect ADDR [--worker-index N] [...]
//! boomerang-sim verify DIR [--spec FILE] [--recompute N] [...]
//! boomerang-sim bench [--preset <name>]... [--smoke] [--check FILE]
//! boomerang-sim list-presets
//! ```

use boomerang::RunLength;
use campaign::checkpoint::{spec_hash, Journal, JournalReplay};
use campaign::serve::{serve, ServeOptions, SubmissionStatus};
use campaign::supervise::install_interrupt_handler;
use campaign::{
    assemble_report, fault, presets, run_generated_partial, run_worker, verify_dir, BenchOptions,
    CampaignSpec, EngineOptions, FaultPlan, Job, RunPlan, StreamingSink, VerifyOptions,
    WorkerOptions,
};
use frontend::SimStats;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code of a serve run that finished with at least one partial
/// (degraded) submission and no failures. Documented in the README's
/// failure model; distinct from 1 (failure) so operators can tell "usable
/// but damaged" from "unusable".
const PARTIAL_EXIT_CODE: u8 = 4;

/// Exit code of a serve run stopped by the `--max-quarantined` integrity
/// bound: more worker sessions were quarantined for corrupt results than the
/// operator allowed. Distinct from 1 (failure) and 4 (partial) — this one
/// means "the fleet is corrupting results", which wants a different
/// response (replace hardware, not retry) than an ordinary failed run.
const QUARANTINE_EXIT_CODE: u8 = 5;

const USAGE: &str =
    "boomerang-sim — declarative experiment campaigns for the Boomerang reproduction

USAGE:
    boomerang-sim run <spec.toml> [OPTIONS]
    boomerang-sim run --preset <name> [OPTIONS]
    boomerang-sim resume <spec.toml | --preset <name>> [OPTIONS]
    boomerang-sim serve --spool <DIR> [SERVE OPTIONS]
    boomerang-sim worker --connect <ADDR> [WORKER OPTIONS]
    boomerang-sim verify <DIR> [VERIFY OPTIONS]
    boomerang-sim bench [BENCH OPTIONS]
    boomerang-sim list-presets

OPTIONS:
    --preset <name>        Run an embedded preset instead of a spec file
    --jobs <N>             Worker threads (default: all cores)
    --smoke                Replace the spec's run length with a short smoke run
    --out <DIR>            Campaign directory: reports, row streams and the
                           checkpoint journal (default: campaign-out)
    --artifact-cache <DIR> Content-addressed workload artifact cache; repeat
                           campaigns over the same workload points skip
                           generation entirely
    --resume               Continue from the directory's checkpoint journal
                           instead of refusing to touch an existing campaign
    --force                Clear an existing campaign (even a mismatching one)
                           and start over
    --max-rows <N>         Checkpoint at most N new rows, then exit with a
                           resume hint (deterministic interruption)
    --shard <I/N>          Execute only jobs with index ≡ I (mod N) and write
                           a per-shard journal; no reports (worker mode)
    --lanes <N>            Lane cap for lane-batched group simulation: 0 runs
                           each whole (workload, seed) group as one lane slab
                           (default), 1 disables lane batching (per-row), N>1
                           splits groups into slabs of at most N lanes.
                           Purely a schedule — reports are byte-identical for
                           every setting. Interplay with --jobs: the pool
                           shards whole groups across workers, lanes fill
                           within a group; resume holes and --shard splits
                           fall back to per-row execution
    --fault-inject <PLAN>  Arm deterministic fault points (testing; see the
                           README's failure model for the plan syntax)
    --quiet                Suppress the progress banner and result table
    -h, --help             Show this help

SERVE OPTIONS:
    --spool <DIR>          Directory watched for *.toml spec submissions;
                           processed files become *.done / *.partial /
                           *.failed
    --out <DIR>            Root of per-submission output dirs (default:
                           serve-out)
    --workers <N>          Worker processes per submission (default: 2)
    --jobs <N>             Worker threads per process (default: all cores)
    --smoke                Run every submission at smoke length
    --artifact-cache <DIR> Shared workload artifact cache for all workers
    --once                 Process the submissions present now, then exit
    --poll-ms <MS>         Spool poll interval (default: 500)
    --max-retries <N>      Restarts per crashed/hung worker shard
                           (default: 2)
    --worker-timeout-secs <S>
                           Kill a worker with no journal progress for S
                           seconds; counts as a retry (default: 300)
    --backoff-ms <MS>      Base restart backoff, doubling per retry
                           (default: 250)
    --allow-partial        When a shard exhausts its retries, write a
                           degraded report (missing rows marked) instead of
                           failing; exit code 4 marks a partial run
    --settle-ms <MS>       Skip submissions modified within the last MS
                           (still being written; default: 0 = off)
    --max-scans <N>        Stop after N spool scans (testing; default:
                           0 = unlimited)
    --fault-inject <PLAN>  Arm deterministic fault points in the service and
                           its workers (testing)
    --listen <ADDR>        Run the TCP work queue on ADDR (e.g. 127.0.0.1:0)
                           and lease jobs to `worker --connect` clients;
                           --workers N spawns N local clients over loopback
                           (0 = remote workers only)
    --listen-addr-file <FILE>
                           Write the bound listen address to FILE once
                           listening (for `--listen 127.0.0.1:0`)
    --lease-timeout-secs <S>
                           Revoke a lease with no heartbeat or row progress
                           for S seconds; the job is requeued with
                           exponential backoff on re-lease (default: 60)
    --steal-lock-after-secs <S>
                           Steal the spool lock when its mtime is older than
                           S seconds, even if the owner looks alive (escape
                           hatch for platforms without procfs liveness; a
                           live serve refreshes the lock every scan)
    --verify-fraction <F>  Re-lease a deterministic fraction F (0.0-1.0) of
                           completed rows to a *different* worker session and
                           compare the stats; a mismatch quarantines the
                           producing session and requeues its unverified rows
                           (default: 0 = off; needs --listen)
    --max-quarantined <N>  Fail a submission (exit code 5) once more than N
                           worker sessions have been quarantined for corrupt
                           results (default: unbounded)

WORKER OPTIONS:
    --connect <ADDR>       Broker address (host:port) to lease jobs from
    --worker-index <N>     This worker's index, addressable by `shard=`
                           fault filters (default: 0)
    --heartbeat-ms <MS>    Lease heartbeat interval (default: 2000)
    --reconnect-ms <MS>    Base reconnect backoff after losing the broker,
                           doubling per consecutive failure (default: 250)
    --reconnect-cap-ms <MS>
                           Reconnect backoff ceiling (default: 10000)
    --reconnect-tries <N>  Consecutive failed reconnects before giving up
                           (default: 6)
    --artifact-cache <DIR> Content-addressed workload artifact cache
    --fault-inject <PLAN>  Arm deterministic fault points (testing)
    --quiet                Suppress per-row progress logs

VERIFY OPTIONS (offline audit of a campaign directory):
    --spec <FILE>          The campaign's spec TOML; unlocks the replay
                           checks (spec hash, completeness, report bytes,
                           recompute) on top of the self-contained journal
                           row-checksum scan
    --smoke                The campaign ran at smoke length
    --recompute <N>        Re-simulate N sampled rows from scratch and
                           compare their stats to the journal (the sample is
                           deterministic per spec; default: 0 = off)
    --artifact-cache <DIR> Also audit every artifact header and payload
                           checksum in this workload cache

EXIT CODES:
    0  success        1  failure (bad args, failed submission, I/O error,
                         a verify audit that found damage)
    4  serve completed with at least one partial submission and no failures
    5  serve stopped by --max-quarantined: the worker fleet is corrupting
       results faster than the operator allowed
    (a worker exits 0 on a clean broker-driven shutdown, 1 on a terminal
    error: spec hash skew or an exhausted reconnect budget)

BENCH OPTIONS (see README \"Performance\"):
    --preset <name>   Benchmark this preset (repeatable; default: figure9)
    --jobs <N>        Worker threads (default: all cores)
    --smoke           Benchmark only smoke-length entries (the CI mode)
    --full            Benchmark only full-length entries
    --iterations <K>  Timed iterations per engine (default: 3)
    --no-reference    Skip timing the per-cycle reference engine
    --lanes <N>       Lane cap for the campaign runs and the per-group lane
                      A/B (default: 0 = whole groups)
    --out <FILE>      Bench report path (default: bench-out/bench.json; pass
                      BENCH_PR<n>.json explicitly to (re)write a committed
                      trajectory baseline)
    --check <FILE>    Fail if deterministic fields drift from this baseline
    --quiet           Suppress the summary table
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        None | Some("-h") | Some("--help") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("list-presets") => {
            // `groups` is what lane-batching amortises: each (workload, seed)
            // group shares one generated trace, and its `rows/grp` rows run
            // as lanes of one slab.
            println!(
                "{:<20} {:>5} {:>10} {:>7} {:>9}  description",
                "preset", "jobs", "workloads", "groups", "rows/grp"
            );
            for preset in presets::PRESETS {
                let spec = preset.spec();
                let jobs = campaign::expand(&spec).len();
                let groups = spec.workloads.len() * spec.seeds.len();
                println!(
                    "{:<20} {:>5} {:>10} {:>7} {:>9}  {}",
                    preset.name,
                    jobs,
                    spec.workloads.len(),
                    groups,
                    jobs / groups.max(1),
                    preset.description
                );
                if let Some(labels) = custom_axis_labels(&spec) {
                    println!(
                        "{:<20} {:>5} {:>10} {:>7} {:>9}  workload axis: {labels}",
                        "", "", "", "", ""
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("run") => run_command(&args[1..], false),
        Some("resume") => run_command(&args[1..], true),
        Some("serve") => serve_command(&args[1..]),
        Some("worker") => worker_command(&args[1..]),
        Some("verify") => verify_command(&args[1..]),
        Some("bench") => bench_command(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// The joined workload-axis labels of a spec whose axis goes beyond the
/// paper presets (custom profile families are the part worth surfacing);
/// `None` for plain preset axes.
fn custom_axis_labels(spec: &CampaignSpec) -> Option<String> {
    spec.workloads.iter().any(|w| !w.is_preset()).then(|| {
        spec.workloads
            .iter()
            .map(|w| w.label.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    })
}

fn bench_command(args: &[String]) -> Result<ExitCode, String> {
    let mut options = BenchOptions {
        presets: Vec::new(),
        ..BenchOptions::default()
    };
    // Deliberately NOT the committed BENCH_PR<n>.json baseline: casual bench
    // runs must not silently rewrite the repo's perf trajectory.
    let mut out = PathBuf::from("bench-out/bench.json");
    let mut check: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let name = it.next().ok_or("--preset needs a name")?;
                options.presets.push(name.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                options.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--smoke" => options.smoke_only = true,
            "--full" => options.full_only = true,
            "--iterations" => {
                let n = it.next().ok_or("--iterations needs a count")?;
                // Zero is rejected by `run_bench`, which owns the check.
                options.iterations = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --iterations value `{n}`"))?;
            }
            "--no-reference" => options.time_reference = false,
            "--lanes" => {
                let n = it.next().ok_or("--lanes needs a count")?;
                options.lanes = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --lanes value `{n}`"))?;
            }
            "--out" => {
                let path = it.next().ok_or("--out needs a file path")?;
                out = PathBuf::from(path);
            }
            "--check" => {
                let path = it.next().ok_or("--check needs a file path")?;
                check = Some(PathBuf::from(path));
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => {
                return Err(format!("unknown bench option `{other}`\n\n{USAGE}"));
            }
        }
    }
    if options.presets.is_empty() {
        options.presets = BenchOptions::default().presets;
    }

    let report = campaign::run_bench(&options)?;
    let json = campaign::bench_to_json(&report);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    if !quiet {
        print!("{}", campaign::bench_to_table(&report));
        eprintln!("\nwrote {}", out.display());
    }
    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        campaign::check_against(&baseline, &report)
            .map_err(|e| format!("bench drift against {}:\n{e}", baseline_path.display()))?;
        if !quiet {
            eprintln!(
                "deterministic fields match the committed baseline {}",
                baseline_path.display()
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn serve_command(args: &[String]) -> Result<ExitCode, String> {
    let mut options = ServeOptions {
        binary: std::env::current_exe()
            .map_err(|e| format!("cannot locate the simulator binary: {e}"))?,
        out: PathBuf::from("serve-out"),
        ..ServeOptions::default()
    };
    let mut quiet = false;
    let mut fault_plan: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spool" => {
                let dir = it.next().ok_or("--spool needs a directory")?;
                options.spool = PathBuf::from(dir);
            }
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                options.out = PathBuf::from(dir);
            }
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                // 0 is legal only with --listen (remote workers do all the
                // work); validated once the flags are all in.
                options.workers = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --workers value `{n}`"))?;
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                options.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
            }
            "--smoke" => options.smoke = true,
            "--artifact-cache" => {
                let dir = it.next().ok_or("--artifact-cache needs a directory")?;
                options.artifact_cache = Some(PathBuf::from(dir));
            }
            "--once" => options.once = true,
            "--poll-ms" => {
                let ms = it.next().ok_or("--poll-ms needs a value")?;
                options.poll_ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("bad --poll-ms value `{ms}`"))?;
            }
            "--max-retries" => {
                let n = it.next().ok_or("--max-retries needs a count")?;
                options.supervise.max_retries = n
                    .parse::<u32>()
                    .map_err(|_| format!("bad --max-retries value `{n}`"))?;
            }
            "--worker-timeout-secs" => {
                let s = it.next().ok_or("--worker-timeout-secs needs a value")?;
                let secs = s
                    .parse::<f64>()
                    .ok()
                    .filter(|&s| s > 0.0)
                    .ok_or_else(|| format!("bad --worker-timeout-secs value `{s}`"))?;
                options.supervise.worker_timeout = Duration::from_secs_f64(secs);
            }
            "--backoff-ms" => {
                let ms = it.next().ok_or("--backoff-ms needs a value")?;
                options.supervise.backoff_base = Duration::from_millis(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad --backoff-ms value `{ms}`"))?,
                );
            }
            "--allow-partial" => options.allow_partial = true,
            "--settle-ms" => {
                let ms = it.next().ok_or("--settle-ms needs a value")?;
                options.settle_ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("bad --settle-ms value `{ms}`"))?;
            }
            "--max-scans" => {
                let n = it.next().ok_or("--max-scans needs a count")?;
                options.max_scans = n
                    .parse::<u64>()
                    .map_err(|_| format!("bad --max-scans value `{n}`"))?;
            }
            "--fault-inject" => {
                let plan = it.next().ok_or("--fault-inject needs a plan")?;
                fault_plan = Some(plan.clone());
            }
            "--listen" => {
                let addr = it.next().ok_or("--listen needs an address")?;
                options.listen = Some(addr.clone());
            }
            "--listen-addr-file" => {
                let path = it.next().ok_or("--listen-addr-file needs a file path")?;
                options.listen_addr_file = Some(PathBuf::from(path));
            }
            "--lease-timeout-secs" => {
                let s = it.next().ok_or("--lease-timeout-secs needs a value")?;
                let secs = s
                    .parse::<f64>()
                    .ok()
                    .filter(|&s| s > 0.0)
                    .ok_or_else(|| format!("bad --lease-timeout-secs value `{s}`"))?;
                options.lease_timeout = Duration::from_secs_f64(secs);
            }
            "--steal-lock-after-secs" => {
                let s = it.next().ok_or("--steal-lock-after-secs needs a value")?;
                let secs = s
                    .parse::<f64>()
                    .ok()
                    .filter(|&s| s > 0.0)
                    .ok_or_else(|| format!("bad --steal-lock-after-secs value `{s}`"))?;
                options.steal_lock_after = Some(Duration::from_secs_f64(secs));
            }
            "--verify-fraction" => {
                let f = it.next().ok_or("--verify-fraction needs a value")?;
                options.verify_fraction = f
                    .parse::<f64>()
                    .ok()
                    .filter(|&f| (0.0..=1.0).contains(&f))
                    .ok_or_else(|| format!("bad --verify-fraction value `{f}` (want 0.0-1.0)"))?;
            }
            "--max-quarantined" => {
                let n = it.next().ok_or("--max-quarantined needs a count")?;
                options.max_quarantined = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("bad --max-quarantined value `{n}`"))?,
                );
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown serve option `{other}`\n\n{USAGE}")),
        }
    }
    if options.spool.as_os_str().is_empty() {
        return Err("serve needs --spool <DIR>".into());
    }
    if options.workers == 0 && options.listen.is_none() {
        return Err("--workers 0 needs --listen (no local fleet and no work queue)".into());
    }
    if options.verify_fraction > 0.0 && options.listen.is_none() {
        return Err(
            "--verify-fraction needs --listen (verification re-leases rows over the work queue)"
                .into(),
        );
    }
    if let Some(plan) = &fault_plan {
        fault::install(Some(plan))?;
        // The workers inherit the plan through the environment — in its
        // canonical `Display` form, round-tripped through `parse`, so the
        // forwarded value is normalized (defaults dropped, one spelling) no
        // matter how the flag was written. The supervisor stamps each
        // spawn's life number next to it.
        std::env::set_var(fault::FAULT_ENV, FaultPlan::parse(plan)?.to_string());
    } else {
        fault::install(None)?;
    }
    install_interrupt_handler();
    if !quiet {
        let local_workers = if options.listen.is_some() {
            options.workers
        } else {
            options.workers.max(1)
        };
        eprintln!(
            "serving spool {} into {} ({} worker processes{}{})",
            options.spool.display(),
            options.out.display(),
            local_workers,
            if options.listen.is_some() {
                ", work queue"
            } else {
                ""
            },
            if options.once { ", once" } else { "" },
        );
    }
    let outcomes = serve(&options, &mut |outcome| match &outcome.result {
        Ok(SubmissionStatus::Done(dir)) => {
            if !quiet {
                eprintln!(
                    "serve: {} (campaign `{}`) -> {}",
                    outcome.submission.display(),
                    outcome.campaign,
                    dir.display()
                );
            }
        }
        Ok(SubmissionStatus::Partial { dir, missing }) => eprintln!(
            "serve: {} (campaign `{}`) -> {} PARTIAL ({missing} rows missing)",
            outcome.submission.display(),
            outcome.campaign,
            dir.display()
        ),
        Err(reason) => eprintln!("serve: {} FAILED: {reason}", outcome.submission.display()),
    })
    .map_err(|e| format!("serve loop: {e}"))?;
    // The quarantine bound outranks plain failure: exit 5 tells the
    // operator the fleet is corrupting results, which a retry won't fix.
    let quarantined = outcomes.iter().filter(|o| o.quarantine_exceeded).count();
    if quarantined > 0 {
        eprintln!(
            "serve: {quarantined} of {} submissions exceeded the quarantine bound",
            outcomes.len()
        );
        return Ok(ExitCode::from(QUARANTINE_EXIT_CODE));
    }
    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
    if failed > 0 {
        return Err(format!("{failed} of {} submissions failed", outcomes.len()));
    }
    let partial = outcomes
        .iter()
        .filter(|o| matches!(o.result, Ok(SubmissionStatus::Partial { .. })))
        .count();
    if partial > 0 {
        eprintln!(
            "serve: {partial} of {} submissions completed partially",
            outcomes.len()
        );
        return Ok(ExitCode::from(PARTIAL_EXIT_CODE));
    }
    Ok(ExitCode::SUCCESS)
}

fn worker_command(args: &[String]) -> Result<ExitCode, String> {
    let mut options = WorkerOptions::default();
    let mut fault_plan: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                let addr = it.next().ok_or("--connect needs an address")?;
                options.connect = addr.clone();
            }
            "--worker-index" => {
                let n = it.next().ok_or("--worker-index needs a value")?;
                options.worker_index = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --worker-index value `{n}`"))?;
            }
            "--heartbeat-ms" => {
                let ms = it.next().ok_or("--heartbeat-ms needs a value")?;
                let ms = ms
                    .parse::<u64>()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| format!("bad --heartbeat-ms value `{ms}`"))?;
                options.heartbeat = Duration::from_millis(ms);
            }
            "--reconnect-ms" => {
                let ms = it.next().ok_or("--reconnect-ms needs a value")?;
                options.reconnect_base = Duration::from_millis(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad --reconnect-ms value `{ms}`"))?,
                );
            }
            "--reconnect-cap-ms" => {
                let ms = it.next().ok_or("--reconnect-cap-ms needs a value")?;
                options.reconnect_cap = Duration::from_millis(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad --reconnect-cap-ms value `{ms}`"))?,
                );
            }
            "--reconnect-tries" => {
                let n = it.next().ok_or("--reconnect-tries needs a count")?;
                options.reconnect_tries = n
                    .parse::<u32>()
                    .map_err(|_| format!("bad --reconnect-tries value `{n}`"))?;
            }
            "--artifact-cache" => {
                let dir = it.next().ok_or("--artifact-cache needs a directory")?;
                options.artifact_cache = Some(PathBuf::from(dir));
            }
            "--fault-inject" => {
                let plan = it.next().ok_or("--fault-inject needs a plan")?;
                fault_plan = Some(plan.clone());
            }
            "--quiet" => options.quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown worker option `{other}`\n\n{USAGE}")),
        }
    }
    if options.connect.is_empty() {
        return Err("worker needs --connect <ADDR>".into());
    }
    // Explicit flag or the plan a spawning serve forwarded through the
    // environment; `run_worker` registers the worker index as this
    // process's shard for `shard=` filters.
    fault::install(fault_plan.as_deref())?;
    let summary = run_worker(&options).map_err(|e| format!("worker: {e}"))?;
    if !options.quiet {
        eprintln!(
            "worker {}: {} rows over {} leases, {} reconnects; {}",
            options.worker_index,
            summary.rows,
            summary.leases,
            summary.reconnects,
            summary.shutdown_reason
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn verify_command(args: &[String]) -> Result<ExitCode, String> {
    let mut options = VerifyOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                let path = it.next().ok_or("--spec needs a file")?;
                options.spec = Some(PathBuf::from(path));
            }
            "--smoke" => options.smoke = true,
            "--recompute" => {
                let n = it.next().ok_or("--recompute needs a count")?;
                options.recompute = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --recompute value `{n}`"))?;
            }
            "--artifact-cache" => {
                let dir = it.next().ok_or("--artifact-cache needs a directory")?;
                options.artifact_cache = Some(PathBuf::from(dir));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown verify option `{other}`\n\n{USAGE}"));
            }
            dir => {
                if !options.dir.as_os_str().is_empty() {
                    return Err(format!("verify takes one directory, got `{dir}` too"));
                }
                options.dir = PathBuf::from(dir);
            }
        }
    }
    if options.dir.as_os_str().is_empty() {
        return Err(format!("verify needs a campaign directory\n\n{USAGE}"));
    }
    let report = verify_dir(&options);
    println!("{}", report.render());
    if report.passed() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

fn run_command(args: &[String], command_resume: bool) -> Result<ExitCode, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut preset: Option<String> = None;
    let mut jobs: usize = 0;
    let mut smoke = false;
    let mut out_dir = PathBuf::from("campaign-out");
    let mut quiet = false;
    let mut resume = command_resume;
    let mut force = false;
    let mut shard: Option<(usize, usize)> = None;
    let mut max_rows: Option<usize> = None;
    let mut artifact_cache: Option<PathBuf> = None;
    let mut fault_plan: Option<String> = None;
    let mut lanes: usize = 0;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let name = it.next().ok_or("--preset needs a name")?;
                preset = Some(name.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--smoke" => smoke = true,
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                out_dir = PathBuf::from(dir);
            }
            "--resume" => resume = true,
            "--force" => force = true,
            "--max-rows" => {
                let n = it.next().ok_or("--max-rows needs a count")?;
                max_rows = Some(
                    n.parse::<usize>()
                        .map_err(|_| format!("bad --max-rows value `{n}`"))?,
                );
            }
            "--shard" => {
                let v = it.next().ok_or("--shard needs I/N")?;
                shard = Some(parse_shard(v)?);
            }
            "--artifact-cache" => {
                let dir = it.next().ok_or("--artifact-cache needs a directory")?;
                artifact_cache = Some(PathBuf::from(dir));
            }
            "--lanes" => {
                let n = it.next().ok_or("--lanes needs a count")?;
                lanes = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --lanes value `{n}`"))?;
            }
            "--fault-inject" => {
                let plan = it.next().ok_or("--fault-inject needs a plan")?;
                fault_plan = Some(plan.clone());
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"));
            }
            path => {
                if spec_path.is_some() {
                    return Err("more than one spec file given".into());
                }
                spec_path = Some(PathBuf::from(path));
            }
        }
    }

    let spec = match (&spec_path, &preset) {
        (Some(_), Some(_)) => {
            return Err("give either a spec file or --preset, not both".into());
        }
        (None, None) => {
            return Err(format!("nothing to run\n\n{USAGE}"));
        }
        (None, Some(name)) => presets::find(name).map_err(|e| e.to_string())?,
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            CampaignSpec::from_toml_str(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
    };

    // Arm the fault plan (explicit flag or inherited environment) before any
    // fault point can run, and register which shard this process executes so
    // `shard=` filters can address it.
    fault::install(fault_plan.as_deref())?;
    fault::set_worker_shard(shard.map(|(index, _)| index).unwrap_or(0));

    let run = if smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let hash = spec_hash(&spec, run, smoke);
    let jobs_list = campaign::expand(&spec);
    if jobs_list.is_empty() {
        return Err("campaign expands to zero jobs".into());
    }

    // Satellite 1: an output directory already holding a campaign is never
    // silently mixed with a different spec. `--force` starts over, `--resume`
    // continues a matching one.
    match JournalReplay::existing_hash(&out_dir, &spec.name) {
        Ok(None) => {}
        Ok(Some(existing)) if existing == hash => {
            if !resume && !force {
                return Err(format!(
                    "{} already holds a checkpointed campaign `{}` for this spec; \
                     pass --resume to continue it or --force to start over",
                    out_dir.display(),
                    spec.name
                ));
            }
        }
        Ok(Some(existing)) => {
            if !force {
                return Err(format!(
                    "{} already holds campaign `{}` with spec hash {existing}, which does \
                     not match this spec's {hash} (different spec, run length or smoke \
                     setting); pass --force to clear it and start over",
                    out_dir.display(),
                    spec.name
                ));
            }
        }
        Err(e) => {
            if !force {
                return Err(format!(
                    "cannot read the existing campaign journal ({e}); pass --force to \
                     clear it and start over"
                ));
            }
        }
    }
    if force {
        Journal::remove_all(&out_dir, &spec.name)
            .map_err(|e| format!("cannot clear {}: {e}", out_dir.display()))?;
        resume = false;
    }

    // Replay whatever is already checkpointed (all shards' journals).
    let done: HashMap<usize, SimStats> = if resume {
        let replay = JournalReplay::load(&out_dir, &spec.name, &hash, &jobs_list)
            .map_err(|e| e.to_string())?;
        replay.rows
    } else {
        HashMap::new()
    };

    let plan = RunPlan {
        shard: shard.filter(|&(_, count)| count > 1),
        limit: max_rows,
    };
    let mut pending: Vec<usize> = (0..jobs_list.len())
        .filter(|i| !done.contains_key(i))
        .filter(|i| match plan.shard {
            Some((index, count)) => i % count == index,
            None => true,
        })
        .collect();
    if let Some(limit) = plan.limit {
        pending.truncate(limit);
    }

    if !quiet {
        let workers = if jobs == 0 {
            sim_core::pool::default_workers()
        } else {
            jobs
        };
        eprintln!(
            "campaign `{}`: {} jobs ({} configs x {} workloads x {} seeds, {} mechanisms + baselines) on {} workers{}{}",
            spec.name,
            jobs_list.len(),
            spec.configs.len(),
            spec.workloads.len(),
            spec.seeds.len(),
            spec.mechanisms.len(),
            workers,
            if smoke { " [smoke]" } else { "" },
            match plan.shard {
                Some((index, count)) => format!(" [shard {index}/{count}]"),
                None => String::new(),
            },
        );
        // Group structure: what lane-batching amortises. Every (workload,
        // seed) group shares one generated trace; its rows run as lanes.
        let groups = spec.workloads.len() * spec.seeds.len();
        eprintln!(
            "lane groups: {groups} x {} rows{}",
            jobs_list.len() / groups.max(1),
            if plan.shard.is_some() {
                " (sharded: per-row fallback)".to_string()
            } else {
                match lanes {
                    0 => " (lane-batched, whole groups)".to_string(),
                    1 => " (lane batching disabled)".to_string(),
                    n => format!(" (lane-batched, slabs of {n})"),
                }
            },
        );
        if let Some(labels) = custom_axis_labels(&spec) {
            eprintln!("workload axis: {labels}");
        }
        if !done.is_empty() {
            eprintln!(
                "resuming: {} of {} rows replayed from the checkpoint journal",
                done.len(),
                jobs_list.len()
            );
        }
    }

    let options = EngineOptions {
        jobs,
        smoke,
        artifact_cache,
        lanes,
        ..EngineOptions::default()
    };

    // The journal for this process: per-shard in worker mode. Reports and
    // row streams are only written by unsharded runs (the serve collector
    // merges worker journals itself).
    let journal = if resume && Journal::path_for(&out_dir, &spec.name, shard).exists() {
        Journal::append(&out_dir, &spec.name, shard)
    } else {
        Journal::create(&out_dir, &spec.name, &hash, jobs_list.len(), shard)
    }
    .map_err(|e| format!("cannot open the checkpoint journal: {e}"))?;
    let stream = if plan.shard.is_none() {
        let sink = StreamingSink::create(&spec, &out_dir)
            .map_err(|e| format!("cannot open the row streams: {e}"))?;
        // Replayed rows stream first, in canonical order (baselines lead
        // their groups, so nothing is left buffered).
        let mut replayed: Vec<usize> = done.keys().copied().collect();
        replayed.sort_unstable();
        for i in replayed {
            sink.record(&jobs_list[i], &done[&i])
                .map_err(|e| format!("cannot stream a replayed row: {e}"))?;
        }
        Some(sink)
    } else {
        None
    };

    // Simulate the missing rows, checkpointing and streaming each as it
    // completes.
    let mut stats_by_index: HashMap<usize, SimStats> = done;
    if !pending.is_empty() {
        let generated = campaign::generate_workloads(&spec, &options).map_err(|e| e.to_string())?;
        let generation = generated.generation();
        for warning in &generation.warnings {
            eprintln!("warning: {warning}");
        }
        if !quiet {
            eprintln!(
                "workload artifacts: {} cache hits, {} generated{}",
                generation.cache_hits,
                generation.generated,
                options
                    .artifact_cache
                    .as_deref()
                    .map(|d| format!(" ({})", d.display()))
                    .unwrap_or_default(),
            );
        }
        // A row the journal cannot hold is a row the campaign cannot claim:
        // a checkpoint write failure (ENOSPC, a yanked disk) must fail the
        // run, not degrade into a journal that silently resumes short. The
        // observer runs on pool workers, so the first failure is captured
        // here and surfaced once the pass drains.
        let checkpoint_error: std::sync::Mutex<Option<String>> = std::sync::Mutex::new(None);
        let on_row = |job: &Job, stats: &SimStats| {
            if let Err(e) = journal.record(job, stats) {
                let mut slot = checkpoint_error.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(format!("checkpoint write failed: {e}"));
                }
            }
            if let Some(stream) = &stream {
                if let Err(e) = stream.record(job, stats) {
                    eprintln!("warning: row stream write failed: {e}");
                }
            }
        };
        let outcome = run_generated_partial(
            &spec,
            &options,
            &generated,
            &stats_by_index,
            plan,
            Some(&on_row),
        );
        if let Some(e) = checkpoint_error.lock().unwrap().take() {
            return Err(e);
        }
        for (i, s) in outcome.stats.into_iter().enumerate() {
            if let Some(s) = s {
                stats_by_index.insert(i, s);
            }
        }
    } else if !quiet {
        eprintln!("workload artifacts: nothing to generate (all rows checkpointed)");
    }

    // Complete? Assemble the canonical report; identical bytes to an
    // uninterrupted run. Otherwise say exactly how to continue.
    if stats_by_index.len() == jobs_list.len() {
        let stats: Vec<SimStats> = (0..jobs_list.len()).map(|i| stats_by_index[&i]).collect();
        if plan.shard.is_some() {
            // A worker that happens to finish the whole campaign still only
            // owns its journal; the collector writes the reports.
            if !quiet {
                eprintln!("shard complete: all {} rows checkpointed", jobs_list.len());
            }
            return Ok(ExitCode::SUCCESS);
        }
        let report = assemble_report(&spec, &jobs_list, run, smoke, stats);
        let paths = campaign::write_reports(&report, &out_dir)
            .map_err(|e| format!("cannot write reports to {}: {e}", out_dir.display()))?;
        if !quiet {
            print!("{}", campaign::to_table(&report));
            eprintln!(
                "\nwrote {} and {}",
                paths.json.display(),
                paths.csv.display()
            );
        }
    } else {
        let checkpointed = stats_by_index.len();
        if !quiet || plan.shard.is_none() {
            eprintln!(
                "checkpointed {checkpointed} of {} rows in {}{}",
                jobs_list.len(),
                out_dir.display(),
                match plan.shard {
                    Some((index, count)) => format!(" [shard {index}/{count}]"),
                    None => format!(
                        "; continue with `boomerang-sim resume {} --out {}`",
                        spec_path
                            .as_deref()
                            .map(|p| p.display().to_string())
                            .unwrap_or_else(|| format!(
                                "--preset {}",
                                preset.as_deref().unwrap_or(&spec.name)
                            )),
                        out_dir.display()
                    ),
                },
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Parses `I/N` shard syntax; `0/1` (or any `i/1`) means "everything" and
/// behaves like no shard at all.
fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let (index, count) = value
        .split_once('/')
        .ok_or_else(|| format!("bad --shard value `{value}` (expected I/N)"))?;
    let index = index
        .parse::<usize>()
        .map_err(|_| format!("bad --shard index `{index}`"))?;
    let count = count
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("bad --shard count `{count}`"))?;
    if index >= count {
        return Err(format!(
            "--shard index {index} out of range for {count} shards"
        ));
    }
    Ok((index, count))
}
