//! `boomerang-sim` — the command-line front door to the Boomerang simulator.
//!
//! ```text
//! boomerang-sim run <spec.toml> [--jobs N] [--smoke] [--out DIR] [--quiet]
//! boomerang-sim run --preset <name> [...]
//! boomerang-sim bench [--preset <name>]... [--smoke] [--check FILE]
//! boomerang-sim list-presets
//! ```

use campaign::{presets, run_campaign, BenchOptions, CampaignSpec, EngineOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "boomerang-sim — declarative experiment campaigns for the Boomerang reproduction

USAGE:
    boomerang-sim run <spec.toml> [OPTIONS]
    boomerang-sim run --preset <name> [OPTIONS]
    boomerang-sim bench [BENCH OPTIONS]
    boomerang-sim list-presets

OPTIONS:
    --preset <name>   Run an embedded preset instead of a spec file
    --jobs <N>        Worker threads (default: all cores)
    --smoke           Replace the spec's run length with a short smoke run
    --out <DIR>       Report directory (default: campaign-out)
    --quiet           Suppress the progress banner and result table
    -h, --help        Show this help

BENCH OPTIONS (see README \"Performance\"):
    --preset <name>   Benchmark this preset (repeatable; default: figure9)
    --jobs <N>        Worker threads (default: all cores)
    --smoke           Benchmark only smoke-length entries (the CI mode)
    --full            Benchmark only full-length entries
    --iterations <K>  Timed iterations per engine (default: 3)
    --no-reference    Skip timing the per-cycle reference engine
    --out <FILE>      Bench report path (default: bench-out/bench.json; pass
                      BENCH_PR<n>.json explicitly to (re)write a committed
                      trajectory baseline)
    --check <FILE>    Fail if deterministic fields drift from this baseline
    --quiet           Suppress the summary table
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("-h") | Some("--help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list-presets") => {
            println!(
                "{:<20} {:>5} {:>10}  description",
                "preset", "jobs", "workloads"
            );
            for preset in presets::PRESETS {
                let spec = preset.spec();
                println!(
                    "{:<20} {:>5} {:>10}  {}",
                    preset.name,
                    campaign::expand(&spec).len(),
                    spec.workloads.len(),
                    preset.description
                );
                if let Some(labels) = custom_axis_labels(&spec) {
                    println!("{:<20} {:>5} {:>10}  workload axis: {labels}", "", "", "");
                }
            }
            Ok(())
        }
        Some("run") => run_command(&args[1..]),
        Some("bench") => bench_command(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// The joined workload-axis labels of a spec whose axis goes beyond the
/// paper presets (custom profile families are the part worth surfacing);
/// `None` for plain preset axes.
fn custom_axis_labels(spec: &CampaignSpec) -> Option<String> {
    spec.workloads.iter().any(|w| !w.is_preset()).then(|| {
        spec.workloads
            .iter()
            .map(|w| w.label.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    })
}

fn bench_command(args: &[String]) -> Result<(), String> {
    let mut options = BenchOptions {
        presets: Vec::new(),
        ..BenchOptions::default()
    };
    // Deliberately NOT the committed BENCH_PR<n>.json baseline: casual bench
    // runs must not silently rewrite the repo's perf trajectory.
    let mut out = PathBuf::from("bench-out/bench.json");
    let mut check: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let name = it.next().ok_or("--preset needs a name")?;
                options.presets.push(name.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                options.jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--smoke" => options.smoke_only = true,
            "--full" => options.full_only = true,
            "--iterations" => {
                let n = it.next().ok_or("--iterations needs a count")?;
                // Zero is rejected by `run_bench`, which owns the check.
                options.iterations = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --iterations value `{n}`"))?;
            }
            "--no-reference" => options.time_reference = false,
            "--out" => {
                let path = it.next().ok_or("--out needs a file path")?;
                out = PathBuf::from(path);
            }
            "--check" => {
                let path = it.next().ok_or("--check needs a file path")?;
                check = Some(PathBuf::from(path));
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => {
                return Err(format!("unknown bench option `{other}`\n\n{USAGE}"));
            }
        }
    }
    if options.presets.is_empty() {
        options.presets = BenchOptions::default().presets;
    }

    let report = campaign::run_bench(&options)?;
    let json = campaign::bench_to_json(&report);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    if !quiet {
        print!("{}", campaign::bench_to_table(&report));
        eprintln!("\nwrote {}", out.display());
    }
    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        campaign::check_against(&baseline, &report)
            .map_err(|e| format!("bench drift against {}:\n{e}", baseline_path.display()))?;
        if !quiet {
            eprintln!(
                "deterministic fields match the committed baseline {}",
                baseline_path.display()
            );
        }
    }
    Ok(())
}

fn run_command(args: &[String]) -> Result<(), String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut preset: Option<String> = None;
    let mut jobs: usize = 0;
    let mut smoke = false;
    let mut out_dir = PathBuf::from("campaign-out");
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let name = it.next().ok_or("--preset needs a name")?;
                preset = Some(name.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--smoke" => smoke = true,
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                out_dir = PathBuf::from(dir);
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"));
            }
            path => {
                if spec_path.is_some() {
                    return Err("more than one spec file given".into());
                }
                spec_path = Some(PathBuf::from(path));
            }
        }
    }

    let spec = match (&spec_path, &preset) {
        (Some(_), Some(_)) => {
            return Err("give either a spec file or --preset, not both".into());
        }
        (None, None) => {
            return Err(format!("nothing to run\n\n{USAGE}"));
        }
        (None, Some(name)) => presets::find(name).map_err(|e| e.to_string())?,
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            CampaignSpec::from_toml_str(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
    };

    let options = EngineOptions {
        jobs,
        smoke,
        ..EngineOptions::default()
    };
    let job_count = campaign::expand(&spec).len();
    if !quiet {
        let workers = if jobs == 0 {
            sim_core::pool::default_workers()
        } else {
            jobs
        };
        eprintln!(
            "campaign `{}`: {} jobs ({} configs x {} workloads x {} seeds, {} mechanisms + baselines) on {} workers{}",
            spec.name,
            job_count,
            spec.configs.len(),
            spec.workloads.len(),
            spec.seeds.len(),
            spec.mechanisms.len(),
            workers,
            if smoke { " [smoke]" } else { "" },
        );
        if let Some(labels) = custom_axis_labels(&spec) {
            eprintln!("workload axis: {labels}");
        }
    }

    let report = run_campaign(&spec, &options).map_err(|e| e.to_string())?;
    let paths = campaign::write_reports(&report, &out_dir)
        .map_err(|e| format!("cannot write reports to {}: {e}", out_dir.display()))?;
    if !quiet {
        print!("{}", campaign::to_table(&report));
        eprintln!(
            "\nwrote {} and {}",
            paths.json.display(),
            paths.csv.display()
        );
    }
    Ok(())
}
