//! `boomerang-sim` — the command-line front door to the Boomerang simulator.
//!
//! ```text
//! boomerang-sim run <spec.toml> [--jobs N] [--smoke] [--out DIR] [--quiet]
//! boomerang-sim run --preset <name> [...]
//! boomerang-sim list-presets
//! ```

use campaign::{presets, run_campaign, CampaignSpec, EngineOptions};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "boomerang-sim — declarative experiment campaigns for the Boomerang reproduction

USAGE:
    boomerang-sim run <spec.toml> [OPTIONS]
    boomerang-sim run --preset <name> [OPTIONS]
    boomerang-sim list-presets

OPTIONS:
    --preset <name>   Run an embedded preset instead of a spec file
    --jobs <N>        Worker threads (default: all cores)
    --smoke           Replace the spec's run length with a short smoke run
    --out <DIR>       Report directory (default: campaign-out)
    --quiet           Suppress the progress banner and result table
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        None | Some("-h") | Some("--help") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("list-presets") => {
            println!("{:<12} {:>5}  description", "preset", "jobs");
            for preset in presets::PRESETS {
                let spec = preset.spec();
                println!(
                    "{:<12} {:>5}  {}",
                    preset.name,
                    campaign::expand(&spec).len(),
                    preset.description
                );
            }
            Ok(())
        }
        Some("run") => run_command(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn run_command(args: &[String]) -> Result<(), String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut preset: Option<String> = None;
    let mut jobs: usize = 0;
    let mut smoke = false;
    let mut out_dir = PathBuf::from("campaign-out");
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--preset" => {
                let name = it.next().ok_or("--preset needs a name")?;
                preset = Some(name.clone());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a count")?;
                jobs = n
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value `{n}`"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--smoke" => smoke = true,
            "--out" => {
                let dir = it.next().ok_or("--out needs a directory")?;
                out_dir = PathBuf::from(dir);
            }
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`\n\n{USAGE}"));
            }
            path => {
                if spec_path.is_some() {
                    return Err("more than one spec file given".into());
                }
                spec_path = Some(PathBuf::from(path));
            }
        }
    }

    let spec = match (&spec_path, &preset) {
        (Some(_), Some(_)) => {
            return Err("give either a spec file or --preset, not both".into());
        }
        (None, None) => {
            return Err(format!("nothing to run\n\n{USAGE}"));
        }
        (None, Some(name)) => presets::find(name).map_err(|e| e.to_string())?,
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            CampaignSpec::from_toml_str(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
    };

    let options = EngineOptions { jobs, smoke };
    let job_count = campaign::expand(&spec).len();
    if !quiet {
        let workers = if jobs == 0 {
            sim_core::pool::default_workers()
        } else {
            jobs
        };
        eprintln!(
            "campaign `{}`: {} jobs ({} configs x {} workloads x {} seeds, {} mechanisms + baselines) on {} workers{}",
            spec.name,
            job_count,
            spec.configs.len(),
            spec.workloads.len(),
            spec.seeds.len(),
            spec.mechanisms.len(),
            workers,
            if smoke { " [smoke]" } else { "" },
        );
    }

    let report = run_campaign(&spec, &options).map_err(|e| e.to_string())?;
    let paths = campaign::write_reports(&report, &out_dir)
        .map_err(|e| format!("cannot write reports to {}: {e}", out_dir.display()))?;
    if !quiet {
        print!("{}", campaign::to_table(&report));
        eprintln!(
            "\nwrote {} and {}",
            paths.json.display(),
            paths.csv.display()
        );
    }
    Ok(())
}
