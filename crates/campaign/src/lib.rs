//! Declarative, sharded experiment campaigns for the Boomerang reproduction.
//!
//! The crates below this one can simulate any single (workload, mechanism,
//! configuration) cell; this crate is the layer that runs *matrices* of them
//! at scale. A campaign is described declaratively — a TOML [`spec`] naming
//! the workloads, mechanisms, configuration points, seeds and run length to
//! sweep — then:
//!
//! 1. [`expand`] turns the spec into a canonical job list (adding the
//!    no-prefetch baseline reference each group needs for speedups),
//! 2. [`engine`] shards the jobs across a work-stealing thread pool
//!    ([`sim_core::pool`]) with deterministic per-job seeds, and
//! 3. [`sink`] renders the aggregated results as JSON, CSV and a human
//!    table — byte-identical output for a given spec regardless of the
//!    worker count.
//!
//! The `boomerang-sim` binary in this crate is the command-line front door:
//! `boomerang-sim run spec.toml`, `boomerang-sim run --preset figure9`,
//! `boomerang-sim list-presets`. The paper's figure matrices ship as
//! embedded [`presets`].
//!
//! # Example
//!
//! ```
//! use campaign::{run_campaign, CampaignSpec, EngineOptions};
//!
//! let spec = CampaignSpec::from_toml_str(r#"
//! name = "quick"
//! workloads = ["nutch"]
//! mechanisms = ["fdip", "boomerang"]
//!
//! [run]
//! trace_blocks = 2000
//! warmup_blocks = 400
//! "#).unwrap();
//!
//! let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
//! // One implicit baseline + the two requested mechanisms.
//! assert_eq!(report.rows.len(), 3);
//! assert!(report.rows.iter().all(|r| r.speedup() > 0.0));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod bench;
pub mod checkpoint;
pub mod engine;
pub mod expand;
pub mod fault;
pub mod json;
pub mod presets;
pub mod proto;
pub mod serve;
pub mod sink;
pub mod spec;
pub mod supervise;
pub mod toml;
pub mod verify;
pub mod worker;

pub use artifact::{artifact_key, ArtifactCache, ArtifactError, ARTIFACT_FORMAT, ARTIFACT_MAGIC};
pub use bench::{
    bench_to_json, bench_to_table, check_against, fnv1a64, run_bench, BenchEntry, BenchOptions,
    BenchReport,
};
pub use checkpoint::{
    journal_progress, spec_hash, CheckpointError, Journal, JournalReplay, JOURNAL_FORMAT,
};
pub use engine::{
    assemble_partial_report, assemble_report, derive_seed, generate_workloads, run_campaign,
    run_generated, run_generated_partial, CampaignReport, EngineOptions, GeneratedWorkloads,
    GenerationSummary, PartialReport, PartialRow, RowResult, RunOutcome, RunPlan,
};
pub use expand::{expand, Job};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FAULT_ENV, FAULT_EXIT_CODE, FAULT_LIFE_ENV};
pub use presets::{Preset, PRESETS};
pub use proto::{Message, ProtoError, MAX_PAYLOAD, PROTO_MAGIC, PROTO_VERSION};
pub use sink::{
    to_csv, to_csv_partial, to_json, to_json_partial, to_table, write_partial_reports,
    write_reports, ReportPaths, StreamingSink,
};
pub use spec::{
    mechanism_token, parse_mechanism, parse_predictor, parse_workload, CampaignSpec,
    ConfigOverride, ConfigPoint, NocSel, SpecError, WorkloadPoint, MAX_WORKLOAD_POINTS,
};
pub use supervise::{
    supervise, supervise_with_stop, ShardOutcome, ShardReport, SuperviseOptions, SupervisedRun,
};
pub use verify::{verify_dir, CheckResult, VerifyOptions, VerifyReport};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
