//! The `boomerang-sim bench` harness: the repo's committed performance
//! trajectory.
//!
//! A bench run times one or more campaign presets over the work-stealing
//! pool, once per simulation engine — the event-horizon engine that ships,
//! and the retained per-cycle reference — and emits a machine-readable JSON
//! report (`BENCH_*.json` at the repo root) that later perf PRs extend into
//! a trajectory.
//!
//! Every report entry separates two kinds of fields:
//!
//! * **`deterministic`** — a pure function of the preset: an FNV-1a digest
//!   of the campaign's JSON report plus total simulated cycles and
//!   instructions. CI re-runs the smoke entries and fails if these drift
//!   from the committed baseline, which pins stats parity forever.
//! * **`timing`** — wall-clock measurements, machine-dependent by nature and
//!   never compared byte-for-byte. Since `bench_format` 2 the phases are
//!   timed separately: `generation_ms` covers one *cold* workload-generation
//!   pass (spec expansion + layout/trace/latency-stream generation), and
//!   each engine's `simulation_ms` samples cover the simulate + aggregate
//!   phases over those generated workloads. Since `bench_format` 3 a
//!   `generation_warm_ms` sample rides along: the same generation pass
//!   served entirely from a warm content-addressed artifact cache
//!   ([`crate::artifact`]), committed evidence of what the cache buys.
//!   Since `bench_format` 4 each entry also records the lane A/B: the
//!   campaign's first (workload, seed) group timed lane-batched against one
//!   of its rows simulated alone (interleaved back-to-back samples, `lanes`
//!   and `group_rows` recorded), whose best-vs-best ratio
//!   `group_lane_vs_row` is the ROADMAP item-3 amortisation headline.
//!   The headline `best_ms` is
//!   `generation_ms + min(simulation_ms)` — the cold-equivalent campaign
//!   wall time, directly comparable to the single `wall_ms` of
//!   `bench_format` 1 entries, per the ROADMAP note that at least one
//!   generation-cold measurement must anchor every trajectory point.
//!
//! The harness also cross-checks the engines against each other on every
//! entry: both must produce byte-identical campaign reports, or the run
//! fails.

use crate::engine::{generate_workloads, run_generated, EngineOptions};
use crate::json::Json;
use crate::presets;
use crate::sink::to_json;
use frontend::SimEngine;
use sim_core::pool;
use std::fmt::Write as _;
use std::time::Instant;

/// What to benchmark and how hard.
#[derive(Clone, Debug)]
pub struct BenchOptions {
    /// Preset names to benchmark.
    pub presets: Vec<String>,
    /// Worker threads; 0 means all cores.
    pub jobs: usize,
    /// Benchmark only smoke-length entries (CI mode).
    pub smoke_only: bool,
    /// Benchmark only full-length entries.
    pub full_only: bool,
    /// Timed iterations per engine; the best (minimum) wall time is the
    /// headline number.
    pub iterations: usize,
    /// Also time the per-cycle reference engine (the parity cross-check
    /// always runs it at least once regardless).
    pub time_reference: bool,
    /// Lane cap for lane-batched group execution (see
    /// [`EngineOptions::lanes`]); `0` runs whole groups as one lane slab.
    pub lanes: usize,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            presets: vec!["figure9".to_string()],
            jobs: 0,
            smoke_only: false,
            full_only: false,
            iterations: 3,
            time_reference: true,
            lanes: 0,
        }
    }
}

/// Simulation-phase wall-clock samples for one engine on one entry.
#[derive(Clone, Debug)]
pub struct EngineTiming {
    /// Engine token (see [`SimEngine::token`]).
    pub engine: &'static str,
    /// One simulation-phase wall-time sample per iteration, in milliseconds
    /// (workload generation excluded — it is timed once per entry as
    /// [`BenchEntry::generation_ms`]).
    pub simulation_ms: Vec<f64>,
}

impl EngineTiming {
    /// Best (minimum) simulation wall time in milliseconds.
    pub fn best_simulation_ms(&self) -> f64 {
        self.simulation_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// One benchmarked (preset, run-length) entry.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Preset name.
    pub preset: String,
    /// Whether the entry ran at smoke length.
    pub smoke: bool,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs in the expanded campaign.
    pub campaign_jobs: usize,
    /// Total simulated cycles across all campaign rows (deterministic).
    pub cycles_total: u64,
    /// Total simulated instructions across all rows (deterministic).
    pub instructions_total: u64,
    /// FNV-1a-64 digest of the campaign's JSON report (deterministic).
    pub report_digest: String,
    /// Wall time of the entry's single cold workload-generation pass, in
    /// milliseconds.
    pub generation_ms: f64,
    /// Wall time of a workload-generation pass served entirely from a warm
    /// content-addressed artifact cache, in milliseconds (`bench_format` 3).
    pub generation_warm_ms: f64,
    /// Event-horizon engine timings.
    pub event_horizon: EngineTiming,
    /// Per-cycle reference engine timings (absent under `--no-reference`).
    pub reference: Option<EngineTiming>,
    /// Rows in the campaign's first (workload, seed) group — the group the
    /// lane A/B below times (`bench_format` 4).
    pub group_rows: usize,
    /// Effective lanes per slab in the lane-batched group A/B run
    /// (`group_rows` when the cap is 0/auto).
    pub lanes: usize,
    /// Wall-time samples of the whole first group run lane-batched, in
    /// milliseconds (interleaved back-to-back with `group_row_ms`).
    pub group_lane_ms: Vec<f64>,
    /// Wall-time samples of the group's first row simulated alone, in
    /// milliseconds.
    pub group_row_ms: Vec<f64>,
}

impl BenchEntry {
    /// Simulation-phase speedup of the event-horizon engine over the
    /// per-cycle reference, if the reference was timed.
    ///
    /// Computed **best-vs-best**: the reference's minimum `simulation_ms`
    /// sample divided by the event-horizon's minimum sample. Minima, not
    /// means or same-iteration pairs, because on a shared box each engine's
    /// best sample is the least-perturbed measurement of its true cost —
    /// pairing iteration `i` against iteration `i` would fold one engine's
    /// scheduling noise into the other's number. Pinned by
    /// `speedup_vs_reference_is_best_over_best`.
    pub fn speedup_vs_reference(&self) -> Option<f64> {
        let reference = self.reference.as_ref()?;
        Some(reference.best_simulation_ms() / self.event_horizon.best_simulation_ms())
    }

    /// The headline number: cold generation plus the best event-horizon
    /// simulation, i.e. the best wall time a cold full campaign run takes.
    /// Directly comparable to `bench_format` 1's whole-campaign `best_ms`.
    pub fn best_ms(&self) -> f64 {
        self.generation_ms + self.event_horizon.best_simulation_ms()
    }

    /// Simulated megacycles per wall-clock second on the event-horizon
    /// engine, over the cold-equivalent campaign wall time.
    pub fn mcycles_per_second(&self) -> f64 {
        self.cycles_total as f64 / 1e6 / (self.best_ms() / 1e3)
    }

    /// Best (minimum) lane-batched wall time of the first group, in
    /// milliseconds.
    pub fn best_group_lane_ms(&self) -> f64 {
        self.group_lane_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Best (minimum) single-row wall time of the first group's first row,
    /// in milliseconds.
    pub fn best_group_row_ms(&self) -> f64 {
        self.group_row_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The lane-amortisation headline: whole-group lane-batched wall over
    /// single-row wall, best-vs-best from interleaved samples. A group of
    /// `n` rows costs `n`x single-row without lane batching; the ROADMAP
    /// item-3 target is ≤ 2x for the figure9 group of 6 mechanism rows
    /// (plus its baseline).
    pub fn group_lane_vs_row(&self) -> f64 {
        self.best_group_lane_ms() / self.best_group_row_ms()
    }
}

/// A full bench run.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// One entry per (preset, run length).
    pub entries: Vec<BenchEntry>,
}

/// FNV-1a 64-bit digest (deterministic, dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs the bench matrix.
///
/// # Errors
///
/// Returns a message on unknown presets, on campaign failures, and on any
/// engine-parity violation (the two engines must render byte-identical
/// campaign reports).
pub fn run_bench(options: &BenchOptions) -> Result<BenchReport, String> {
    if options.iterations == 0 {
        return Err("--iterations must be at least 1".into());
    }
    if options.smoke_only && options.full_only {
        return Err("give either --smoke or --full, not both".into());
    }
    let workers = if options.jobs == 0 {
        pool::default_workers()
    } else {
        options.jobs
    };
    let mut entries = Vec::new();
    for name in &options.presets {
        let spec = presets::find(name).map_err(|e| e.to_string())?;
        let mut lengths: Vec<bool> = vec![false, true]; // full, then smoke
        if options.smoke_only {
            lengths = vec![true];
        } else if options.full_only {
            lengths = vec![false];
        }
        for smoke in lengths {
            // One *cold* generation pass per entry, timed separately; every
            // simulation iteration below reuses it. The ROADMAP's
            // trajectory-comparability note is honoured by `best_ms`, which
            // always re-includes this cold generation time.
            let gen_opts = EngineOptions {
                jobs: options.jobs,
                smoke,
                engine: SimEngine::EventHorizon,
                artifact_cache: None,
                lanes: options.lanes,
            };
            let gen_started = Instant::now();
            let generated = generate_workloads(&spec, &gen_opts).map_err(|e| e.to_string())?;
            let generation_ms = gen_started.elapsed().as_secs_f64() * 1e3;

            // Warm-cache generation (bench_format 3): populate a scratch
            // artifact cache untimed, then time a pass that decodes every
            // workload from it. The cold/warm pair is the committed evidence
            // of what the content-addressed cache buys.
            let cache_dir =
                std::env::temp_dir().join(format!("boomerang-bench-cache-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&cache_dir);
            let warm_opts = EngineOptions {
                artifact_cache: Some(cache_dir.clone()),
                ..gen_opts.clone()
            };
            generate_workloads(&spec, &warm_opts).map_err(|e| e.to_string())?;
            let warm_started = Instant::now();
            let warm = generate_workloads(&spec, &warm_opts).map_err(|e| e.to_string())?;
            let generation_warm_ms = warm_started.elapsed().as_secs_f64() * 1e3;
            let _ = std::fs::remove_dir_all(&cache_dir);
            if warm.generation().cache_hits != warm.workload_count() {
                return Err(format!(
                    "artifact cache missed on preset `{name}`: {} hits for {} workloads",
                    warm.generation().cache_hits,
                    warm.workload_count()
                ));
            }

            let run = |engine: SimEngine| -> (crate::CampaignReport, String, f64) {
                let opts = EngineOptions {
                    jobs: options.jobs,
                    smoke,
                    engine,
                    artifact_cache: None,
                    lanes: options.lanes,
                };
                let started = Instant::now();
                let report = run_generated(&spec, &opts, &generated);
                let wall_ms = started.elapsed().as_secs_f64() * 1e3;
                let json = to_json(&report);
                (report, json, wall_ms)
            };

            let mut event_horizon = EngineTiming {
                engine: SimEngine::EventHorizon.token(),
                simulation_ms: Vec::new(),
            };
            let mut rendered = String::new();
            let mut campaign_report = None;
            for _ in 0..options.iterations {
                let (report, json, wall_ms) = run(SimEngine::EventHorizon);
                event_horizon.simulation_ms.push(wall_ms);
                rendered = json;
                campaign_report = Some(report);
            }

            // Parity cross-check (and optional timing) for the reference.
            let reference_iterations = if options.time_reference {
                options.iterations
            } else {
                1
            };
            let mut reference = EngineTiming {
                engine: SimEngine::PerCycleReference.token(),
                simulation_ms: Vec::new(),
            };
            for _ in 0..reference_iterations {
                let (_, json, wall_ms) = run(SimEngine::PerCycleReference);
                reference.simulation_ms.push(wall_ms);
                if json != rendered {
                    return Err(format!(
                        "engine parity violation on preset `{name}`{}: the per-cycle \
                         reference rendered a different campaign report than the \
                         event-horizon engine",
                        if smoke { " (smoke)" } else { "" },
                    ));
                }
            }

            // Lane A/B (bench_format 4): time the campaign's first
            // (workload, seed) group lane-batched against one of its rows
            // simulated alone, interleaved back-to-back so the samples share
            // whatever the box is doing; best-vs-best is the headline ratio.
            let jobs = generated.jobs();
            let group_key = (jobs[0].workload, jobs[0].seed);
            let built_configs: Vec<_> = spec.configs.iter().map(|c| c.build()).collect();
            let group_rows: Vec<_> = jobs
                .iter()
                .filter(|j| (j.workload, j.seed) == group_key)
                .map(|j| (j.mechanism, &built_configs[j.config]))
                .collect();
            let data = generated
                .data_for(group_key.0, group_key.1)
                .expect("the first job's workload was generated");
            let lanes = if options.lanes == 0 {
                group_rows.len()
            } else {
                options.lanes.min(group_rows.len())
            };
            let mut group_lane_ms = Vec::new();
            let mut group_row_ms = Vec::new();
            for _ in 0..options.iterations {
                let started = Instant::now();
                let lane_stats = data.run_group_with_predictor_engine(
                    &group_rows,
                    spec.predictor,
                    SimEngine::EventHorizon,
                    options.lanes,
                );
                group_lane_ms.push(started.elapsed().as_secs_f64() * 1e3);
                let started = Instant::now();
                let row_stats = data.run_with_predictor_engine(
                    group_rows[0].0,
                    group_rows[0].1,
                    spec.predictor,
                    SimEngine::EventHorizon,
                );
                group_row_ms.push(started.elapsed().as_secs_f64() * 1e3);
                if lane_stats[0] != row_stats {
                    return Err(format!(
                        "lane parity violation on preset `{name}`{}: lane-batched \
                         statistics differ from the single-row run",
                        if smoke { " (smoke)" } else { "" },
                    ));
                }
            }

            // Deterministic fields come from the (parity-checked) report.
            let report = campaign_report.expect("at least one iteration ran");
            let cycles_total = report.rows.iter().map(|r| r.stats.cycles).sum();
            let instructions_total = report.rows.iter().map(|r| r.stats.instructions).sum();

            entries.push(BenchEntry {
                preset: name.clone(),
                smoke,
                workers,
                campaign_jobs: report.rows.len(),
                cycles_total,
                instructions_total,
                report_digest: format!("fnv1a64:{:016x}", fnv1a64(rendered.as_bytes())),
                generation_ms,
                generation_warm_ms,
                event_horizon,
                reference: options.time_reference.then_some(reference),
                group_rows: group_rows.len(),
                lanes,
                group_lane_ms,
                group_row_ms,
            });
        }
    }
    Ok(BenchReport { entries })
}

/// Renders the bench report as JSON.
pub fn bench_to_json(report: &BenchReport) -> String {
    let entries: Vec<Json> = report
        .entries
        .iter()
        .map(|entry| {
            let mut timing = Json::object()
                .field("iterations", entry.event_horizon.simulation_ms.len())
                .field("generation_ms", round_ms(entry.generation_ms))
                .field("generation_warm_ms", round_ms(entry.generation_warm_ms))
                .field(
                    "engines",
                    vec![engine_json(&entry.event_horizon)]
                        .into_iter()
                        .chain(entry.reference.as_ref().map(engine_json))
                        .collect::<Vec<Json>>(),
                )
                // Cold generation + best simulation: the number comparable
                // to bench_format 1's whole-campaign best wall time.
                .field("best_ms", round_ms(entry.best_ms()))
                .field("event_horizon_mcycles_per_s", entry.mcycles_per_second())
                // Lane A/B (bench_format 4): the first group lane-batched
                // vs one of its rows alone, interleaved samples.
                .field("lanes", entry.lanes)
                .field("group_rows", entry.group_rows)
                .field(
                    "group_lane_ms",
                    entry
                        .group_lane_ms
                        .iter()
                        .map(|&ms| Json::Float(round_ms(ms)))
                        .collect::<Vec<Json>>(),
                )
                .field(
                    "group_row_ms",
                    entry
                        .group_row_ms
                        .iter()
                        .map(|&ms| Json::Float(round_ms(ms)))
                        .collect::<Vec<Json>>(),
                )
                .field("best_group_lane_ms", round_ms(entry.best_group_lane_ms()))
                .field("best_group_row_ms", round_ms(entry.best_group_row_ms()))
                .field("group_lane_vs_row", entry.group_lane_vs_row());
            if let Some(speedup) = entry.speedup_vs_reference() {
                timing = timing.field("speedup_vs_reference", speedup);
            }
            Json::object()
                .field("preset", entry.preset.as_str())
                .field("smoke", entry.smoke)
                .field("workers", entry.workers)
                .field("campaign_jobs", entry.campaign_jobs)
                .field(
                    "deterministic",
                    Json::object()
                        .field("report_digest", entry.report_digest.as_str())
                        .field("cycles_total", entry.cycles_total)
                        .field("instructions_total", entry.instructions_total),
                )
                .field("timing", timing)
        })
        .collect();
    Json::object()
        .field("bench", "boomerang-sim bench")
        .field("bench_format", 4u64)
        .field("entries", entries)
        .pretty()
}

fn engine_json(timing: &EngineTiming) -> Json {
    Json::object()
        .field("engine", timing.engine)
        .field(
            "simulation_ms",
            timing
                .simulation_ms
                .iter()
                .map(|&ms| Json::Float(round_ms(ms)))
                .collect::<Vec<Json>>(),
        )
        .field("best_simulation_ms", round_ms(timing.best_simulation_ms()))
}

fn round_ms(ms: f64) -> f64 {
    (ms * 1000.0).round() / 1000.0
}

/// Renders a short human-readable summary table.
pub fn bench_to_table(report: &BenchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>6} {:>8} {:>8} {:>12} {:>14} {:>9} {:>10} {:>12} {:>9}",
        "preset",
        "smoke",
        "jobs",
        "gen ms",
        "warm ms",
        "horizon ms",
        "reference ms",
        "speedup",
        "best ms",
        "Mcycles/s",
        "grp/row"
    );
    for entry in &report.entries {
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>6} {:>8.1} {:>8.1} {:>12.1} {:>14} {:>9} {:>10.1} {:>12.1} {:>9}",
            entry.preset,
            entry.smoke,
            entry.campaign_jobs,
            entry.generation_ms,
            entry.generation_warm_ms,
            entry.event_horizon.best_simulation_ms(),
            entry
                .reference
                .as_ref()
                .map(|r| format!("{:.1}", r.best_simulation_ms()))
                .unwrap_or_else(|| "-".into()),
            entry
                .speedup_vs_reference()
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".into()),
            entry.best_ms(),
            entry.mcycles_per_second(),
            format!("{:.2}x", entry.group_lane_vs_row()),
        );
    }
    out
}

/// The deterministic triple of one committed bench entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct CommittedEntry {
    preset: String,
    smoke: bool,
    report_digest: String,
    cycles_total: u64,
    instructions_total: u64,
}

/// Extracts the deterministic fields of each entry from a committed bench
/// JSON file. The file is our own deterministic writer's output, so a
/// line-oriented scan is exact.
fn extract_committed(text: &str) -> Vec<CommittedEntry> {
    let mut entries = Vec::new();
    let chunks: Vec<&str> = text.split("\"preset\": \"").skip(1).collect();
    for chunk in chunks {
        let Some(preset) = chunk.split('"').next() else {
            continue;
        };
        let field = |key: &str| -> Option<&str> {
            let tail = &chunk[chunk.find(key)? + key.len()..];
            Some(tail.split([',', '\n', '"']).next().unwrap_or("").trim())
        };
        let string_field = |key: &str| -> Option<&str> {
            let tail = &chunk[chunk.find(key)? + key.len()..];
            tail.split('"').next()
        };
        let (Some(smoke), Some(digest), Some(cycles), Some(instructions)) = (
            field("\"smoke\": ").and_then(|v| v.parse::<bool>().ok()),
            string_field("\"report_digest\": \""),
            field("\"cycles_total\": ").and_then(|v| v.parse::<u64>().ok()),
            field("\"instructions_total\": ").and_then(|v| v.parse::<u64>().ok()),
        ) else {
            continue;
        };
        entries.push(CommittedEntry {
            preset: preset.to_string(),
            smoke,
            report_digest: digest.to_string(),
            cycles_total: cycles,
            instructions_total: instructions,
        });
    }
    entries
}

/// Verifies a fresh bench run against a committed baseline file: every entry
/// the fresh run produced must exist in the baseline with identical
/// deterministic fields.
///
/// # Errors
///
/// Returns one message per drifted or missing entry.
pub fn check_against(committed: &str, fresh: &BenchReport) -> Result<(), String> {
    let baseline = extract_committed(committed);
    let mut problems = Vec::new();
    for entry in &fresh.entries {
        let found = baseline
            .iter()
            .find(|c| c.preset == entry.preset && c.smoke == entry.smoke);
        match found {
            None => problems.push(format!(
                "baseline has no entry for preset `{}` (smoke: {})",
                entry.preset, entry.smoke
            )),
            Some(committed) => {
                if committed.report_digest != entry.report_digest
                    || committed.cycles_total != entry.cycles_total
                    || committed.instructions_total != entry.instructions_total
                {
                    problems.push(format!(
                        "deterministic drift on preset `{}` (smoke: {}): committed \
                         {}/{} cycles/instructions digest {}, fresh {}/{} digest {}",
                        entry.preset,
                        entry.smoke,
                        committed.cycles_total,
                        committed.instructions_total,
                        committed.report_digest,
                        entry.cycles_total,
                        entry.instructions_total,
                        entry.report_digest,
                    ));
                }
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench() -> BenchReport {
        run_bench(&BenchOptions {
            presets: vec!["llc-sweep".into()],
            jobs: 2,
            smoke_only: true,
            iterations: 1,
            ..BenchOptions::default()
        })
        .expect("bench must run")
    }

    #[test]
    fn speedup_vs_reference_is_best_over_best() {
        // The headline engine comparison divides minima, not means and not
        // same-index sample pairs.
        let entry = BenchEntry {
            preset: "p".into(),
            smoke: true,
            workers: 1,
            campaign_jobs: 1,
            cycles_total: 1,
            instructions_total: 1,
            report_digest: "fnv1a64:0".into(),
            generation_ms: 5.0,
            generation_warm_ms: 1.0,
            event_horizon: EngineTiming {
                engine: "event-horizon",
                simulation_ms: vec![10.0, 8.0, 12.0],
            },
            reference: Some(EngineTiming {
                engine: "per-cycle-reference",
                simulation_ms: vec![30.0, 24.0, 40.0],
            }),
            group_rows: 3,
            lanes: 3,
            group_lane_ms: vec![6.0, 4.0],
            group_row_ms: vec![2.5, 2.0],
        };
        // 24.0 / 8.0; a first-sample or mean pairing would give 3.0 only by
        // accident of these numbers — check the minima are what is used.
        assert_eq!(entry.speedup_vs_reference(), Some(3.0));
        assert_eq!(entry.event_horizon.best_simulation_ms(), 8.0);
        // And best_ms is cold generation + the event-horizon's best sample.
        assert_eq!(entry.best_ms(), 13.0);
        // The lane A/B ratio is likewise best-vs-best: 4.0 / 2.0.
        assert_eq!(entry.best_group_lane_ms(), 4.0);
        assert_eq!(entry.best_group_row_ms(), 2.0);
        assert_eq!(entry.group_lane_vs_row(), 2.0);
        let without_reference = BenchEntry {
            reference: None,
            ..entry
        };
        assert_eq!(without_reference.speedup_vs_reference(), None);
    }

    #[test]
    fn fnv_digest_is_the_reference_constant() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn bench_runs_and_round_trips_through_check() {
        let report = tiny_bench();
        assert_eq!(report.entries.len(), 1);
        let entry = &report.entries[0];
        assert!(entry.smoke);
        assert!(entry.cycles_total > 0);
        assert!(entry.instructions_total > 0);
        assert!(entry.report_digest.starts_with("fnv1a64:"));
        assert!(entry.speedup_vs_reference().is_some());

        let json = bench_to_json(&report);
        assert!(json.contains("\"preset\": \"llc-sweep\""));
        // The committed form of this very report must pass the drift check.
        check_against(&json, &report).expect("self-check must pass");

        // A tampered digest must fail it.
        let tampered = json.replace("fnv1a64:", "fnv1a64:ff");
        assert!(check_against(&tampered, &report).is_err());

        // A missing entry must fail it.
        assert!(check_against("{}", &report).is_err());
    }

    #[test]
    fn table_renders_every_entry() {
        let report = tiny_bench();
        let table = bench_to_table(&report);
        assert!(table.contains("llc-sweep"));
        assert!(table.contains("speedup"));
    }
}
