//! Worker-fleet supervision: restart-with-backoff, hang detection, and
//! orphan-free shutdown for sharded campaign workers.
//!
//! The previous service dispatch was spawn-all / `wait()`-all: one crashed
//! worker failed the whole submission and one hung worker wedged it forever.
//! [`supervise`] replaces that with a poll loop (`try_wait`) over a fleet of
//! shard slots. A slot whose child exits nonzero is respawned after an
//! exponential backoff, up to `max_retries` restarts; a slot whose progress
//! probe (journal bytes — monotonic while the worker runs) stops moving for
//! `worker_timeout` is killed and the kill counts as a retry. Because
//! workers checkpoint every row and `--resume` replays the journal, a
//! restarted shard re-runs only its unfinished jobs, and the merged report
//! stays byte-identical to an uninterrupted run's.
//!
//! Every spawn carries the worker's **life number** (1-based) in
//! [`fault::FAULT_LIFE_ENV`], so a deterministic fault plan
//! ([`crate::fault`]) can arm a fault for the first life only — the retry
//! then recovers — or for every life (`lives=all`) to model a persistent
//! failure that exhausts the budget.
//!
//! The fleet is dropped-safe: [`Fleet`]'s `Drop` kills any still-running
//! children, so a supervisor panic, an early `?`, or a Ctrl-C (see
//! [`install_interrupt_handler`]) never strands orphan workers behind the
//! service.

use crate::fault::FAULT_LIFE_ENV;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Retry, timeout and pacing policy for one supervised fleet.
#[derive(Clone, Debug)]
pub struct SuperviseOptions {
    /// Restarts allowed per shard after its first life (so a shard runs at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
    /// Kill a worker whose progress probe has not moved for this long. The
    /// kill consumes a retry.
    pub worker_timeout: Duration,
    /// Backoff before the first restart; doubles per subsequent restart of
    /// the same shard.
    pub backoff_base: Duration,
    /// Upper bound on the doubled backoff.
    pub backoff_cap: Duration,
    /// Poll interval between `try_wait` sweeps.
    pub poll: Duration,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            max_retries: 2,
            worker_timeout: Duration::from_secs(300),
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(10),
            poll: Duration::from_millis(25),
        }
    }
}

/// Why a shard slot reached its terminal state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardOutcome {
    /// The worker exited successfully (possibly after restarts).
    Completed,
    /// Every life failed; the retry budget is spent.
    Exhausted {
        /// Lives used (first run + restarts).
        attempts: u32,
        /// The last life's failure, e.g. `exited with exit status: 113` or
        /// `hung (no journal progress for 2s)`.
        last_failure: String,
    },
    /// The worker binary could not be spawned at all — an environment
    /// problem retries cannot fix.
    SpawnFailed(String),
    /// The supervisor was interrupted (Ctrl-C) before this shard finished;
    /// its worker was killed, its checkpointed rows remain.
    Interrupted,
}

/// One shard's terminal report.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// The shard index in the canonical expansion.
    pub shard: usize,
    /// Lives used (1 = no restarts).
    pub lives: u32,
    /// How many of those lives ended in a hang kill.
    pub hangs: u32,
    /// The terminal state.
    pub outcome: ShardOutcome,
}

/// The supervisor's verdict on a whole fleet.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// One report per shard, in shard order.
    pub shards: Vec<ShardReport>,
}

impl SupervisedRun {
    /// `true` when every shard completed.
    pub fn all_complete(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.outcome == ShardOutcome::Completed)
    }

    /// `true` when any shard was cut short by an interrupt.
    pub fn interrupted(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.outcome == ShardOutcome::Interrupted)
    }

    /// Human-readable descriptions of every non-completed shard.
    pub fn failures(&self) -> Vec<String> {
        self.shards
            .iter()
            .filter_map(|s| match &s.outcome {
                ShardOutcome::Completed => None,
                ShardOutcome::Exhausted {
                    attempts,
                    last_failure,
                } => Some(format!(
                    "worker shard {} failed after {attempts} attempt(s): {last_failure}",
                    s.shard
                )),
                ShardOutcome::SpawnFailed(e) => {
                    Some(format!("cannot spawn worker shard {}: {e}", s.shard))
                }
                ShardOutcome::Interrupted => Some(format!("worker shard {} interrupted", s.shard)),
            })
            .collect()
    }

    /// The shard indices that did not complete (their rows may be missing
    /// from the journals — the graceful-degradation path marks them).
    pub fn incomplete_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.outcome != ShardOutcome::Completed)
            .map(|s| s.shard)
            .collect()
    }
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn interrupt_flag_handler(_signum: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT/SIGTERM handler that sets the supervisor's interrupt
/// flag, so a Ctrl-C on the service drains through the poll loop — killing
/// every worker — instead of killing only the parent and stranding orphans.
/// Call once from the CLI before entering serve mode; a no-op off unix.
pub fn install_interrupt_handler() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(
                SIGINT,
                interrupt_flag_handler as extern "C" fn(i32) as usize,
            );
            signal(
                SIGTERM,
                interrupt_flag_handler as extern "C" fn(i32) as usize,
            );
        }
    }
}

/// `true` once an interrupt has been received (see
/// [`install_interrupt_handler`]). The serve loop also polls this between
/// submissions.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Test hook: clears the interrupt flag.
#[doc(hidden)]
pub fn reset_interrupt_for_tests() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

/// One shard slot's supervision state.
enum Slot {
    Running {
        child: Child,
        /// Progress-probe reading at the last observed change.
        last_progress: u64,
        /// When the probe last moved (or the child was spawned).
        last_change: Instant,
    },
    Waiting {
        until: Instant,
    },
    Terminal(ShardOutcome),
}

/// The live fleet; its `Drop` kills every still-running child.
struct Fleet {
    slots: Vec<(Slot, ShardStats)>,
}

#[derive(Clone, Copy, Default)]
struct ShardStats {
    lives: u32,
    hangs: u32,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for (slot, _) in &mut self.slots {
            if let Slot::Running { child, .. } = slot {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Runs `shards` worker processes to completion under the retry/backoff/
/// timeout policy in `options`.
///
/// `make_command` builds the command for one shard (it is called once per
/// life; the supervisor adds the [`FAULT_LIFE_ENV`] life number before
/// spawning). `progress` is the shard's monotonic progress probe — journal
/// bytes in the real service; the baseline is re-read at every spawn, so a
/// restart that truncates a torn journal tail cannot look like progress or
/// trip the hang detector. `log` receives one line per supervision event
/// (crash, backoff, hang kill, exhaustion).
///
/// Never blocks on a wedged child and never returns with a child still
/// running: every slot ends [`ShardOutcome::Completed`], `Exhausted`,
/// `SpawnFailed`, or — if Ctrl-C arrives — `Interrupted`.
pub fn supervise(
    shards: usize,
    make_command: &mut dyn FnMut(usize) -> Command,
    progress: &mut dyn FnMut(usize) -> u64,
    options: &SuperviseOptions,
    log: &mut dyn FnMut(&str),
) -> SupervisedRun {
    supervise_with_stop(shards, make_command, progress, options, log, &mut || false)
}

/// [`supervise`] with an external stop signal, polled once per sweep.
///
/// When `stop` returns `true` the remaining queue is treated as drained:
/// running and waiting slots are killed and marked [`ShardOutcome::Completed`]
/// (their work is done or was done by someone else — the broker uses this
/// when TCP workers finish the queue while local shards still run). Slots
/// already terminal keep their outcome. The `stop` closure doubles as a
/// per-poll tick, so a caller can piggyback periodic work (the broker's
/// lease-expiry sweep) on it.
pub fn supervise_with_stop(
    shards: usize,
    make_command: &mut dyn FnMut(usize) -> Command,
    progress: &mut dyn FnMut(usize) -> u64,
    options: &SuperviseOptions,
    log: &mut dyn FnMut(&str),
    stop: &mut dyn FnMut() -> bool,
) -> SupervisedRun {
    let mut fleet = Fleet { slots: Vec::new() };
    for shard in 0..shards {
        let mut stats = ShardStats::default();
        let slot = spawn_life(shard, make_command, progress, &mut stats, log);
        fleet.slots.push((slot, stats));
    }

    loop {
        let mut all_terminal = true;
        for (shard, (slot, stats)) in fleet.slots.iter_mut().enumerate() {
            match slot {
                Slot::Terminal(_) => continue,
                Slot::Running {
                    child,
                    last_progress,
                    last_change,
                } => {
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => {
                            *slot = Slot::Terminal(ShardOutcome::Completed);
                            continue;
                        }
                        Ok(Some(status)) => {
                            let failure = format!("exited with {status}");
                            *slot = after_failure(shard, stats, &failure, options, log);
                        }
                        Err(e) => {
                            let failure = format!("cannot wait: {e}");
                            let _ = child.kill();
                            let _ = child.wait();
                            *slot = after_failure(shard, stats, &failure, options, log);
                        }
                        Ok(None) => {
                            let now_progress = progress(shard);
                            if now_progress > *last_progress {
                                *last_progress = now_progress;
                                *last_change = Instant::now();
                            } else if now_progress < *last_progress {
                                // A shrink (torn-tail truncation across a
                                // restart) re-baselines the probe but is NOT
                                // progress: the hang clock keeps running.
                                *last_progress = now_progress;
                            } else if last_change.elapsed() >= options.worker_timeout {
                                stats.hangs += 1;
                                let _ = child.kill();
                                let _ = child.wait();
                                let failure = format!(
                                    "hung (no journal progress for {:?})",
                                    options.worker_timeout
                                );
                                *slot = after_failure(shard, stats, &failure, options, log);
                            }
                        }
                    }
                    if !matches!(slot, Slot::Terminal(_)) {
                        all_terminal = false;
                    }
                }
                Slot::Waiting { until } => {
                    if Instant::now() >= *until {
                        *slot = spawn_life(shard, make_command, progress, stats, log);
                    }
                    if !matches!(slot, Slot::Terminal(_)) {
                        all_terminal = false;
                    }
                }
            }
        }
        if all_terminal {
            break;
        }
        if stop() {
            log("supervisor: queue drained externally, stopping local workers");
            for (slot, _) in &mut fleet.slots {
                if let Slot::Running { child, .. } = slot {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                if !matches!(slot, Slot::Terminal(_)) {
                    *slot = Slot::Terminal(ShardOutcome::Completed);
                }
            }
            break;
        }
        if interrupted() {
            log("supervisor: interrupt received, stopping workers");
            for (slot, _) in &mut fleet.slots {
                if let Slot::Running { child, .. } = slot {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                if !matches!(slot, Slot::Terminal(_)) {
                    *slot = Slot::Terminal(ShardOutcome::Interrupted);
                }
            }
            break;
        }
        std::thread::sleep(options.poll);
    }

    let shards = fleet
        .slots
        .iter()
        .enumerate()
        .map(|(shard, (slot, stats))| ShardReport {
            shard,
            lives: stats.lives,
            hangs: stats.hangs,
            outcome: match slot {
                Slot::Terminal(outcome) => outcome.clone(),
                // Unreachable: the loop only exits with every slot terminal.
                _ => ShardOutcome::Interrupted,
            },
        })
        .collect();
    SupervisedRun { shards }
}

/// Spawns the next life of `shard`, stamping its life number into the
/// environment and re-reading the progress baseline.
fn spawn_life(
    shard: usize,
    make_command: &mut dyn FnMut(usize) -> Command,
    progress: &mut dyn FnMut(usize) -> u64,
    stats: &mut ShardStats,
    log: &mut dyn FnMut(&str),
) -> Slot {
    stats.lives += 1;
    let mut cmd = make_command(shard);
    cmd.env(FAULT_LIFE_ENV, stats.lives.to_string());
    match cmd.spawn() {
        Ok(child) => {
            if stats.lives > 1 {
                log(&format!(
                    "supervisor: shard {shard} restarted (life {})",
                    stats.lives
                ));
            }
            Slot::Running {
                child,
                last_progress: progress(shard),
                last_change: Instant::now(),
            }
        }
        Err(e) => {
            log(&format!("supervisor: cannot spawn shard {shard}: {e}"));
            Slot::Terminal(ShardOutcome::SpawnFailed(e.to_string()))
        }
    }
}

/// Decides a failed life's fate: backoff-and-restart while the retry budget
/// lasts, terminal exhaustion after.
fn after_failure(
    shard: usize,
    stats: &ShardStats,
    failure: &str,
    options: &SuperviseOptions,
    log: &mut dyn FnMut(&str),
) -> Slot {
    let restarts_used = stats.lives - 1;
    if restarts_used < options.max_retries {
        let backoff = options
            .backoff_base
            .saturating_mul(1u32 << restarts_used.min(20))
            .min(options.backoff_cap);
        log(&format!(
            "supervisor: shard {shard} {failure}; retrying in {backoff:?} \
             ({} of {} retries used)",
            restarts_used + 1,
            options.max_retries
        ));
        Slot::Waiting {
            until: Instant::now() + backoff,
        }
    } else {
        log(&format!(
            "supervisor: shard {shard} {failure}; retry budget exhausted \
             ({} attempt(s))",
            stats.lives
        ));
        Slot::Terminal(ShardOutcome::Exhausted {
            attempts: stats.lives,
            last_failure: failure.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-supervise-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_options() -> SuperviseOptions {
        SuperviseOptions {
            max_retries: 2,
            worker_timeout: Duration::from_secs(30),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
            poll: Duration::from_millis(5),
        }
    }

    fn sh(script: String) -> Command {
        let mut cmd = Command::new("/bin/sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    #[test]
    fn clean_fleet_completes_first_life() {
        let run = supervise(
            3,
            &mut |_| sh("exit 0".into()),
            &mut |_| 0,
            &fast_options(),
            &mut |_| {},
        );
        assert!(run.all_complete());
        assert!(run.failures().is_empty());
        assert!(run.shards.iter().all(|s| s.lives == 1 && s.hangs == 0));
    }

    #[test]
    fn crash_then_success_uses_one_retry() {
        let dir = temp_dir("retry");
        let marker = dir.join("marker");
        let script = format!(
            "if [ -f {m} ]; then exit 0; else : > {m}; exit 113; fi",
            m = marker.display()
        );
        let mut logs = Vec::new();
        let run = supervise(
            1,
            &mut |_| sh(script.clone()),
            &mut |_| 0,
            &fast_options(),
            &mut |line| logs.push(line.to_string()),
        );
        assert!(run.all_complete());
        assert_eq!(run.shards[0].lives, 2);
        assert!(
            logs.iter().any(|l| l.contains("retrying")),
            "logs: {logs:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_crash_exhausts_budget() {
        let run = supervise(
            1,
            &mut |_| sh("exit 7".into()),
            &mut |_| 0,
            &fast_options(),
            &mut |_| {},
        );
        assert!(!run.all_complete());
        let ShardOutcome::Exhausted {
            attempts,
            last_failure,
        } = &run.shards[0].outcome
        else {
            panic!("expected Exhausted, got {:?}", run.shards[0].outcome);
        };
        assert_eq!(*attempts, 3);
        assert!(last_failure.contains("exited"), "{last_failure}");
        assert_eq!(run.incomplete_shards(), [0]);
    }

    #[test]
    fn stalled_progress_is_killed_and_counts_as_retry() {
        let options = SuperviseOptions {
            max_retries: 0,
            worker_timeout: Duration::from_millis(100),
            ..fast_options()
        };
        let start = Instant::now();
        let run = supervise(
            1,
            &mut |_| sh("sleep 30".into()),
            &mut |_| 42, // never moves
            &options,
            &mut |_| {},
        );
        assert!(start.elapsed() < Duration::from_secs(10), "hang not killed");
        assert_eq!(run.shards[0].hangs, 1);
        let ShardOutcome::Exhausted { last_failure, .. } = &run.shards[0].outcome else {
            panic!("expected Exhausted, got {:?}", run.shards[0].outcome);
        };
        assert!(last_failure.contains("hung"), "{last_failure}");
    }

    #[test]
    fn moving_progress_defers_the_hang_timeout() {
        let options = SuperviseOptions {
            max_retries: 0,
            worker_timeout: Duration::from_millis(150),
            ..fast_options()
        };
        let mut ticks = 0u64;
        let run = supervise(
            1,
            // Outlives several timeout windows, but the probe keeps moving.
            &mut |_| sh("sleep 0.5; exit 0".into()),
            &mut |_| {
                ticks += 1;
                ticks
            },
            &options,
            &mut |_| {},
        );
        assert!(run.all_complete(), "{:?}", run.failures());
        assert_eq!(run.shards[0].hangs, 0);
    }

    #[test]
    fn shrinking_progress_is_not_progress() {
        // A torn-tail truncation makes the probe go *down*; that must not
        // reset the hang clock, or a worker that only ever truncates could
        // dodge the detector forever by alternating probe values.
        let options = SuperviseOptions {
            max_retries: 0,
            worker_timeout: Duration::from_millis(150),
            ..fast_options()
        };
        let mut probe = 1000u64;
        let start = Instant::now();
        let run = supervise(
            1,
            &mut |_| sh("sleep 30".into()),
            &mut |_| {
                // Strictly decreasing: every poll sees a different, smaller
                // value. Under the old `!=` rule this counted as progress.
                probe = probe.saturating_sub(1);
                probe
            },
            &options,
            &mut |_| {},
        );
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shrinking probe dodged the hang detector"
        );
        assert_eq!(run.shards[0].hangs, 1);
        let ShardOutcome::Exhausted { last_failure, .. } = &run.shards[0].outcome else {
            panic!("expected Exhausted, got {:?}", run.shards[0].outcome);
        };
        assert!(last_failure.contains("hung"), "{last_failure}");
    }

    #[test]
    fn external_stop_drains_the_fleet_as_completed() {
        let options = fast_options();
        let mut polls = 0u32;
        let mut logs = Vec::new();
        let start = Instant::now();
        let run = supervise_with_stop(
            2,
            &mut |_| sh("sleep 30".into()),
            &mut |_| 0,
            &options,
            &mut |line| logs.push(line.to_string()),
            &mut || {
                polls += 1;
                polls >= 3
            },
        );
        assert!(start.elapsed() < Duration::from_secs(10), "stop ignored");
        assert!(run.all_complete(), "{:?}", run.failures());
        assert!(logs.iter().any(|l| l.contains("drained")), "logs: {logs:?}");
    }

    #[test]
    fn each_life_sees_its_life_number() {
        let dir = temp_dir("life");
        let lives = dir.join("lives");
        let script = format!("echo ${FAULT_LIFE_ENV} >> {f}; exit 1", f = lives.display());
        let run = supervise(
            1,
            &mut |_| sh(script.clone()),
            &mut |_| 0,
            &fast_options(),
            &mut |_| {},
        );
        assert!(!run.all_complete());
        let seen = std::fs::read_to_string(&lives).unwrap();
        assert_eq!(seen, "1\n2\n3\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spawn_failure_is_terminal_not_retried() {
        let run = supervise(
            1,
            &mut |_| Command::new("/nonexistent-binary-for-supervise-test"),
            &mut |_| 0,
            &fast_options(),
            &mut |_| {},
        );
        assert!(matches!(
            run.shards[0].outcome,
            ShardOutcome::SpawnFailed(_)
        ));
        assert_eq!(run.shards[0].lives, 1);
        assert!(
            run.failures()[0].contains("cannot spawn"),
            "{:?}",
            run.failures()
        );
    }
}
