//! Row-level campaign checkpointing: an append-only JSONL journal.
//!
//! A campaign writes one journal line per completed job, flushed to disk the
//! moment the row exists. If the process is killed, `resume` replays the
//! journal(s) in the output directory, re-runs only the missing jobs, and the
//! merged report is byte-identical to an uninterrupted run — reports are a
//! pure function of the spec, and the journal just caches finished rows.
//!
//! # File format
//!
//! One campaign directory holds `<name>.journal.jsonl` (or, for sharded
//! workers, `<name>.journal-<i>.jsonl` per shard). The first line is a header
//! object pinning the format version, the campaign name, the [`spec_hash`] of
//! the spec + run length, and the canonical job count:
//!
//! ```text
//! {"journal_format":2,"campaign":"figure9","spec_hash":"fnv1a64:…","jobs":45,"shard_index":0,"shard_count":1}
//! {"job":0,"mechanism":"baseline","seed":0,"row_fnv":…,"instructions":…,…}
//! ```
//!
//! Every subsequent line is one completed job: its canonical index, the
//! mechanism token and seed (cross-checked against the expanded job list on
//! replay — a journal can never be applied to a different spec), a `row_fnv`
//! checksum (FNV-1a-64 over the canonical `index|mechanism|seed|stats`
//! encoding, re-verified on replay so at-rest bit damage can never replay
//! silently into a report), and the full set of [`SimStats`] counters. A
//! truncated **final** line (the process died mid-write) is ignored on
//! replay; corruption anywhere else is an error. Format-1 journals (no
//! `row_fnv`) still replay, with a warning that their rows are unverified.

use crate::bench::fnv1a64;
use crate::expand::Job;
use crate::fault;
use crate::json::Json;
use crate::spec::{mechanism_token, CampaignSpec};
use boomerang::RunLength;
use frontend::stats::{MissBreakdown, SquashStats};
use frontend::SimStats;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version stamp written in every journal header. Bump on any change to the
/// line schema. Format 2 added the per-row `row_fnv` checksum; format-1
/// journals are still replayed (their rows predate checksums) with a
/// warning, anything else is rejected rather than misread.
pub const JOURNAL_FORMAT: u64 = 2;

/// Oldest journal format this build still replays.
const JOURNAL_FORMAT_MIN: u64 = 1;

/// A checkpoint journal could not be read or does not belong to this
/// campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError {
    /// The journal file involved.
    pub path: PathBuf,
    /// 1-based line number, or 0 for file-level problems (I/O, header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl CheckpointError {
    fn file(path: &Path, message: impl Into<String>) -> Self {
        CheckpointError {
            path: path.to_path_buf(),
            line: 0,
            message: message.into(),
        }
    }

    fn at(path: &Path, line: usize, message: impl Into<String>) -> Self {
        CheckpointError {
            path: path.to_path_buf(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "journal {}: {}", self.path.display(), self.message)
        } else {
            write!(
                f,
                "journal {}:{}: {}",
                self.path.display(),
                self.line,
                self.message
            )
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Content hash identifying a (spec, run length, smoke) triple.
///
/// This is what makes journals and output directories self-describing: a
/// journal written for one campaign can never be replayed into another, and
/// `run --out` refuses to mix outputs from different specs (satellite 1).
/// The hash covers the spec's canonical TOML rendering plus the *effective*
/// run length, so `--smoke` and a full run never share a hash.
pub fn spec_hash(spec: &CampaignSpec, run: RunLength, smoke: bool) -> String {
    let mut text = spec.to_toml_string();
    text.push_str(&format!(
        "\n# effective-run trace_blocks={} warmup_blocks={} smoke={}\n",
        run.trace_blocks, run.warmup_blocks, smoke
    ));
    format!("fnv1a64:{:016x}", fnv1a64(text.as_bytes()))
}

/// One journal column: its field name and the counter it reads.
type StatField = (&'static str, fn(&SimStats) -> u64);

/// The 17 stat counters, in journal column order, with their field names.
/// Shared by the writer and the replayer so the two can never drift.
const STAT_FIELDS: [StatField; 17] = [
    ("instructions", |s| s.instructions),
    ("cycles", |s| s.cycles),
    ("fetch_stall_cycles", |s| s.fetch_stall_cycles),
    ("squash_stall_cycles", |s| s.squash_stall_cycles),
    ("ftq_empty_cycles", |s| s.ftq_empty_cycles),
    ("rob_full_cycles", |s| s.rob_full_cycles),
    ("squashes_btb_miss", |s| s.squashes.btb_miss),
    ("squashes_misprediction", |s| s.squashes.misprediction),
    ("btb_lookups", |s| s.btb_lookups),
    ("btb_misses", |s| s.btb_misses),
    ("prefetch_buffer_hits", |s| s.prefetch_buffer_hits),
    ("prefetches_issued", |s| s.prefetches_issued),
    ("conditional_predictions", |s| s.conditional_predictions),
    ("conditional_mispredictions", |s| {
        s.conditional_mispredictions
    }),
    ("miss_breakdown_sequential", |s| s.miss_breakdown.sequential),
    ("miss_breakdown_conditional", |s| {
        s.miss_breakdown.conditional
    }),
    ("miss_breakdown_unconditional", |s| {
        s.miss_breakdown.unconditional
    }),
];

/// Number of stat counters a journal row (and a `RowDone` protocol frame)
/// carries — the arity both ends of the wire check against.
pub(crate) const STAT_FIELD_COUNT: usize = STAT_FIELDS.len();

/// Flattens stats into the canonical journal column order, for transport in
/// a `RowDone` frame.
pub(crate) fn stats_to_array(stats: &SimStats) -> [u64; STAT_FIELD_COUNT] {
    let mut values = [0u64; STAT_FIELD_COUNT];
    for (slot, (_, read)) in values.iter_mut().zip(STAT_FIELDS.iter()) {
        *slot = read(stats);
    }
    values
}

/// Rebuilds stats from the canonical journal column order — the inverse of
/// [`stats_to_array`]. Returns `None` on arity mismatch.
pub(crate) fn stats_from_array(values: &[u64]) -> Option<SimStats> {
    if values.len() != STAT_FIELD_COUNT {
        return None;
    }
    stats_from_fields(|name| {
        STAT_FIELDS
            .iter()
            .position(|(field, _)| *field == name)
            .map(|i| values[i])
    })
}

/// The checksum every completed row carries, in the journal (`row_fnv`
/// field) and on the wire (`RowDone` frame): FNV-1a-64 over the canonical
/// `index|mechanism|seed|stat|stat|…` encoding, stats in [`STAT_FIELDS`]
/// column order. Writer, broker, replayer and auditor all compute it from
/// the same inputs, so a row whose bytes changed anywhere along the path —
/// a flipped stat digit, a corrupted frame payload, at-rest bitrot — can
/// never verify.
pub(crate) fn row_checksum(index: usize, mechanism: &str, seed: u64, stats: &[u64]) -> u64 {
    let mut text = format!("{index}|{mechanism}|{seed}");
    for value in stats {
        text.push('|');
        text.push_str(&value.to_string());
    }
    fnv1a64(text.as_bytes())
}

fn stats_from_fields(get: impl Fn(&'static str) -> Option<u64>) -> Option<SimStats> {
    Some(SimStats {
        instructions: get("instructions")?,
        cycles: get("cycles")?,
        fetch_stall_cycles: get("fetch_stall_cycles")?,
        miss_breakdown: MissBreakdown {
            sequential: get("miss_breakdown_sequential")?,
            conditional: get("miss_breakdown_conditional")?,
            unconditional: get("miss_breakdown_unconditional")?,
        },
        squash_stall_cycles: get("squash_stall_cycles")?,
        ftq_empty_cycles: get("ftq_empty_cycles")?,
        rob_full_cycles: get("rob_full_cycles")?,
        squashes: SquashStats {
            btb_miss: get("squashes_btb_miss")?,
            misprediction: get("squashes_misprediction")?,
        },
        btb_lookups: get("btb_lookups")?,
        btb_misses: get("btb_misses")?,
        prefetch_buffer_hits: get("prefetch_buffer_hits")?,
        prefetches_issued: get("prefetches_issued")?,
        conditional_predictions: get("conditional_predictions")?,
        conditional_mispredictions: get("conditional_mispredictions")?,
    })
}

/// An open, append-only checkpoint journal.
///
/// `record` is safe to call from the engine's worker threads (it locks an
/// internal mutex and writes the whole line in one call), so a `&Journal`
/// works directly as the `on_row` callback of
/// [`crate::engine::run_generated_partial`].
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// The journal path for `campaign` in `dir`: `<name>.journal.jsonl`, or
    /// `<name>.journal-<i>.jsonl` when this process runs shard `i` of a
    /// multi-worker campaign.
    pub fn path_for(dir: &Path, campaign: &str, shard: Option<(usize, usize)>) -> PathBuf {
        match shard {
            Some((index, count)) if count > 1 => {
                dir.join(format!("{campaign}.journal-{index}.jsonl"))
            }
            _ => dir.join(format!("{campaign}.journal.jsonl")),
        }
    }

    /// Creates (truncating) the journal for a fresh run and writes the
    /// header line.
    ///
    /// The header is written to a `.tmp-<pid>` sibling and renamed into
    /// place, so a concurrently starting sibling shard (whose spec-mismatch
    /// check scans *every* journal in the directory) can never observe a
    /// created-but-headerless journal file.
    pub fn create(
        dir: &Path,
        campaign: &str,
        hash: &str,
        jobs: usize,
        shard: Option<(usize, usize)>,
    ) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = Journal::path_for(dir, campaign, shard);
        let tmp = path.with_extension(format!("jsonl.tmp-{}", std::process::id()));
        let (shard_index, shard_count) = shard.unwrap_or((0, 1));
        let header = Json::object()
            .field("journal_format", JOURNAL_FORMAT)
            .field("campaign", campaign)
            .field("spec_hash", hash)
            .field("jobs", jobs)
            .field("shard_index", shard_index)
            .field("shard_count", shard_count);
        let mut file = File::create(&tmp)?;
        writeln!(file, "{}", header.compact())?;
        // A full disk often only surfaces at sync time; swallowing it here
        // would rename an incomplete header into place as if it were durable.
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, &path)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Reopens an existing journal in append mode (resume). The caller is
    /// expected to have validated the header via [`JournalReplay::load`]
    /// first.
    ///
    /// A process killed mid-`record` leaves an unterminated final line, which
    /// replay tolerates — but appending *after* it would weld the new row
    /// onto the torn prefix, turning tolerated tail damage into fatal
    /// interior corruption. So the reopen first truncates the file back to
    /// the end of its last complete (newline-terminated) line.
    pub fn append(
        dir: &Path,
        campaign: &str,
        shard: Option<(usize, usize)>,
    ) -> io::Result<Journal> {
        let path = Journal::path_for(dir, campaign, shard);
        let bytes = std::fs::read(&path)?;
        let keep = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last_newline) => last_newline + 1,
            None => 0,
        };
        let file = OpenOptions::new().append(true).open(&path)?;
        if keep < bytes.len() {
            file.set_len(keep as u64)?;
        }
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed job. The full line is written in a single
    /// syscall so a kill can at worst truncate the final line — which replay
    /// tolerates — never interleave two rows.
    ///
    /// This is also the worker row loop's fault point: an armed
    /// [`crate::fault`] plan can tear the line mid-write, exit after the
    /// durable write, or hang here — the three crash signatures the
    /// supervisor must survive.
    pub fn record(&self, job: &Job, stats: &SimStats) -> io::Result<()> {
        let mechanism = mechanism_token(job.mechanism);
        let values = stats_to_array(stats);
        let checksum = row_checksum(job.index, &mechanism, job.seed, &values);
        let mut row = Json::object()
            .field("job", job.index)
            .field("mechanism", mechanism)
            .field("seed", job.seed)
            .field("row_fnv", checksum);
        for (name, read) in STAT_FIELDS {
            row = row.field(name, read(stats));
        }
        let mut line = row.compact().into_bytes();
        line.push(b'\n');
        let faults = fault::on_row_append();
        if faults.bitrot {
            // At-rest damage: one stat digit flips *after* `row_fnv` was
            // computed — the line still parses, but can never verify.
            flip_last_digit(&mut line);
        }
        let mut file = self.file.lock().expect("journal mutex poisoned");
        if faults.torn_tail {
            // The mid-`write` kill signature: a prefix of the line, no
            // newline, then death.
            let torn = &line[..line.len() / 2];
            file.write_all(torn)?;
            file.flush()?;
            fault::exit_now();
        }
        append_durable(&mut *file, &line)?;
        drop(file);
        if faults.exit {
            fault::exit_now();
        }
        if faults.hang {
            fault::hang_now();
        }
        Ok(())
    }

    /// Deletes every journal file for `campaign` in `dir` (the `--force`
    /// path). Missing directory or files are fine.
    pub fn remove_all(dir: &Path, campaign: &str) -> io::Result<()> {
        for path in journal_files(dir, campaign)? {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }
}

/// One durable row append: the whole line in a single write, then a flush.
/// Both errors are surfaced — a full disk (ENOSPC) is often only reported
/// when buffered bytes hit the device, and swallowing it would let a
/// campaign "complete" with rows that were never written.
fn append_durable(file: &mut dyn io::Write, line: &[u8]) -> io::Result<()> {
    file.write_all(line)?;
    file.flush()
}

/// Flips the last ASCII digit of `line` to a different digit — the
/// `journal-bitrot` fault effect. The last digit of a row line is always a
/// stat value, so the damaged line still parses but fails its `row_fnv`.
fn flip_last_digit(line: &mut [u8]) {
    if let Some(byte) = line.iter_mut().rev().find(|b| b.is_ascii_digit()) {
        *byte = if *byte == b'9' { b'0' } else { *byte + 1 };
    }
}

/// A cheap, monotonic progress probe for hang detection: the total byte size
/// of every journal file for `campaign` in `dir`. Journals are append-only
/// while a worker runs, so a growing number means rows are landing and a
/// static one means the fleet is stalled. Unreadable files count as zero —
/// the supervisor polls this between `try_wait`s and must never error out.
pub fn journal_progress(dir: &Path, campaign: &str) -> u64 {
    journal_files(dir, campaign)
        .unwrap_or_default()
        .iter()
        .filter_map(|path| std::fs::metadata(path).ok())
        .map(|meta| meta.len())
        .sum()
}

/// All journal files for `campaign` in `dir`, sorted by name for
/// deterministic replay order. Missing directory → empty list.
pub(crate) fn journal_files(dir: &Path, campaign: &str) -> io::Result<Vec<PathBuf>> {
    let prefix = format!("{campaign}.journal");
    let mut files = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        // Exactly `.jsonl` or `-<digits>.jsonl` — not another campaign whose
        // name happens to extend this one.
        let shard_ok = rest
            .strip_prefix('-')
            .and_then(|r| r.strip_suffix(".jsonl"))
            .is_some_and(|digits| !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()));
        if rest == ".jsonl" || shard_ok {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

/// The merged result of replaying every journal for a campaign.
#[derive(Clone, Debug, Default)]
pub struct JournalReplay {
    /// Completed rows by canonical job index (last occurrence wins).
    pub rows: HashMap<usize, SimStats>,
    /// The journal files that were read, in replay order.
    pub files: Vec<PathBuf>,
}

impl JournalReplay {
    /// Reads the spec hash from the first journal found for `campaign` in
    /// `dir`, or `None` if no journal exists yet. This is how `run --out`
    /// detects that a directory already belongs to a different spec.
    pub fn existing_hash(dir: &Path, campaign: &str) -> Result<Option<String>, CheckpointError> {
        let files = journal_files(dir, campaign)
            .map_err(|e| CheckpointError::file(dir, format!("scanning directory: {e}")))?;
        let Some(path) = files.first() else {
            return Ok(None);
        };
        let header = read_header(path)?;
        Ok(Some(header.spec_hash))
    }

    /// Replays every journal for `campaign` in `dir`, validating each file's
    /// header against `expected_hash` and each row against the canonical
    /// `jobs` expansion. Rows for the same job are deduplicated **last
    /// occurrence wins**: shard files never overlap (the stats are identical
    /// by construction when they do), and within one broker journal a later
    /// row for the same job is a correction — the re-run that replaced a
    /// quarantined session's suspect row.
    pub fn load(
        dir: &Path,
        campaign: &str,
        expected_hash: &str,
        jobs: &[Job],
    ) -> Result<JournalReplay, CheckpointError> {
        let files = journal_files(dir, campaign)
            .map_err(|e| CheckpointError::file(dir, format!("scanning directory: {e}")))?;
        let mut replay = JournalReplay::default();
        for path in files {
            replay_file(&path, campaign, expected_hash, jobs, &mut replay.rows)?;
            replay.files.push(path);
        }
        Ok(replay)
    }

    /// How many distinct jobs have checkpointed rows.
    pub fn completed(&self) -> usize {
        self.rows.len()
    }
}

struct Header {
    format: u64,
    spec_hash: String,
    jobs: u64,
}

/// What a standalone integrity scan of one journal file found — the
/// spec-free subset of replay used by the offline auditor
/// ([`crate::verify`]): header shape, row shape, and every `row_fnv`.
pub(crate) struct JournalScan {
    /// The campaign the header claims.
    pub campaign: String,
    /// The spec hash the header claims.
    pub spec_hash: String,
    /// The header's `journal_format`.
    pub format: u64,
    /// The job-expansion size the header claims.
    pub jobs: u64,
    /// Rows whose `row_fnv` was recomputed and matched.
    pub rows_checked: usize,
    /// Format-1 rows carrying no checksum (parsed, not verifiable).
    pub rows_unverified: usize,
}

/// Scans one journal file without a spec: validates the header shape and
/// format range, parses every row, bounds-checks its job index against the
/// header's own `jobs` claim, and recomputes every `row_fnv`. The torn-tail
/// tolerance matches replay — a damaged *final* line is the expected
/// crash signature, a damaged interior line is corruption.
pub(crate) fn scan_journal(path: &Path) -> Result<JournalScan, CheckpointError> {
    let text = read_file(path)?;
    let mut lines = text.lines();
    let first = lines
        .next()
        .ok_or_else(|| CheckpointError::file(path, "empty journal"))?;
    let fields = parse_flat_object(first)
        .map_err(|e| CheckpointError::at(path, 1, format!("malformed header: {e}")))?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let format = get("journal_format")
        .and_then(Scalar::as_u64)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `journal_format` missing"))?;
    if !(JOURNAL_FORMAT_MIN..=JOURNAL_FORMAT).contains(&format) {
        return Err(CheckpointError::at(
            path,
            1,
            format!(
                "journal_format {format} (this build reads \
                 {JOURNAL_FORMAT_MIN}..={JOURNAL_FORMAT})"
            ),
        ));
    }
    let campaign = get("campaign")
        .and_then(Scalar::as_str)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `campaign` missing"))?
        .to_string();
    let spec_hash = get("spec_hash")
        .and_then(Scalar::as_str)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `spec_hash` missing"))?
        .to_string();
    let jobs = get("jobs")
        .and_then(Scalar::as_u64)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `jobs` missing"))?;
    let row_lines: Vec<&str> = lines.collect();
    let mut scan = JournalScan {
        campaign,
        spec_hash,
        format,
        jobs,
        rows_checked: 0,
        rows_unverified: 0,
    };
    for (i, line) in row_lines.iter().enumerate() {
        let lineno = i + 2;
        let last = i + 1 == row_lines.len();
        let fields = match parse_flat_object(line) {
            Ok(fields) => fields,
            Err(_) if last => break,
            Err(e) => {
                return Err(CheckpointError::at(
                    path,
                    lineno,
                    format!("malformed row: {e}"),
                ))
            }
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (Some(index), Some(mechanism), Some(seed)) = (
            get("job").and_then(Scalar::as_u64),
            get("mechanism").and_then(Scalar::as_str),
            get("seed").and_then(Scalar::as_u64),
        ) else {
            if last {
                break;
            }
            return Err(CheckpointError::at(
                path,
                lineno,
                "row missing job/mechanism/seed",
            ));
        };
        if index >= jobs {
            return Err(CheckpointError::at(
                path,
                lineno,
                format!("job index {index} out of range (header claims {jobs} jobs)"),
            ));
        }
        let stats = match stats_from_fields(|name| get(name).and_then(Scalar::as_u64)) {
            Some(stats) => stats,
            None if last => break,
            None => {
                return Err(CheckpointError::at(path, lineno, "row missing stat fields"));
            }
        };
        if format < 2 {
            scan.rows_unverified += 1;
            continue;
        }
        let recorded = match get("row_fnv").and_then(Scalar::as_u64) {
            Some(v) => v,
            None if last => break,
            None => {
                return Err(CheckpointError::at(
                    path,
                    lineno,
                    "row field `row_fnv` missing",
                ));
            }
        };
        let computed = row_checksum(index as usize, mechanism, seed, &stats_to_array(&stats));
        if recorded != computed {
            return Err(CheckpointError::at(
                path,
                lineno,
                format!(
                    "row_fnv {recorded:016x} does not match the row's contents \
                     (recomputed {computed:016x}): the row was damaged after it \
                     was written"
                ),
            ));
        }
        scan.rows_checked += 1;
    }
    Ok(scan)
}

fn read_file(path: &Path) -> Result<String, CheckpointError> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| CheckpointError::file(path, format!("reading: {e}")))?;
    Ok(text)
}

fn parse_header(path: &Path, campaign: &str, line: &str) -> Result<Header, CheckpointError> {
    let fields = parse_flat_object(line)
        .map_err(|e| CheckpointError::at(path, 1, format!("malformed header: {e}")))?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let format = get("journal_format")
        .and_then(Scalar::as_u64)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `journal_format` missing"))?;
    if !(JOURNAL_FORMAT_MIN..=JOURNAL_FORMAT).contains(&format) {
        return Err(CheckpointError::at(
            path,
            1,
            format!(
                "journal_format {format} (this build reads \
                 {JOURNAL_FORMAT_MIN}..={JOURNAL_FORMAT})"
            ),
        ));
    }
    let name = get("campaign")
        .and_then(Scalar::as_str)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `campaign` missing"))?;
    if name != campaign {
        return Err(CheckpointError::at(
            path,
            1,
            format!("belongs to campaign `{name}`, expected `{campaign}`"),
        ));
    }
    let spec_hash = get("spec_hash")
        .and_then(Scalar::as_str)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `spec_hash` missing"))?
        .to_string();
    let jobs = get("jobs")
        .and_then(Scalar::as_u64)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `jobs` missing"))?;
    Ok(Header {
        format,
        spec_hash,
        jobs,
    })
}

fn read_header(path: &Path) -> Result<Header, CheckpointError> {
    let text = read_file(path)?;
    let first = text
        .lines()
        .next()
        .ok_or_else(|| CheckpointError::file(path, "empty journal"))?;
    let fields = parse_flat_object(first)
        .map_err(|e| CheckpointError::at(path, 1, format!("malformed header: {e}")))?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let spec_hash = get("spec_hash")
        .and_then(Scalar::as_str)
        .ok_or_else(|| CheckpointError::at(path, 1, "header field `spec_hash` missing"))?
        .to_string();
    let jobs = get("jobs").and_then(Scalar::as_u64).unwrap_or(0);
    let format = get("journal_format")
        .and_then(Scalar::as_u64)
        .unwrap_or(JOURNAL_FORMAT);
    Ok(Header {
        format,
        spec_hash,
        jobs,
    })
}

fn replay_file(
    path: &Path,
    campaign: &str,
    expected_hash: &str,
    jobs: &[Job],
    rows: &mut HashMap<usize, SimStats>,
) -> Result<(), CheckpointError> {
    let text = read_file(path)?;
    let lines: Vec<&str> = text.lines().collect();
    let Some((&header_line, row_lines)) = lines.split_first() else {
        return Err(CheckpointError::file(path, "empty journal"));
    };
    let header = parse_header(path, campaign, header_line)?;
    if header.spec_hash != expected_hash {
        return Err(CheckpointError::at(
            path,
            1,
            format!(
                "spec hash {} does not match this spec's {expected_hash}",
                header.spec_hash
            ),
        ));
    }
    if header.jobs != jobs.len() as u64 {
        return Err(CheckpointError::at(
            path,
            1,
            format!(
                "header says {} jobs, spec expands to {}",
                header.jobs,
                jobs.len()
            ),
        ));
    }
    if header.format < 2 {
        eprintln!(
            "warning: journal {} is format {} (predates row checksums); \
             replaying its rows unverified",
            path.display(),
            header.format
        );
    }
    for (i, line) in row_lines.iter().enumerate() {
        let lineno = i + 2;
        let last = i + 1 == row_lines.len();
        let fields = match parse_flat_object(line) {
            Ok(fields) => fields,
            // A truncated final line is the expected signature of a killed
            // process — drop it; the job will simply re-run.
            Err(_) if last => break,
            Err(e) => {
                return Err(CheckpointError::at(
                    path,
                    lineno,
                    format!("malformed row: {e}"),
                ))
            }
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let (Some(index), Some(mechanism), Some(seed)) = (
            get("job").and_then(Scalar::as_u64),
            get("mechanism").and_then(Scalar::as_str),
            get("seed").and_then(Scalar::as_u64),
        ) else {
            if last {
                break;
            }
            return Err(CheckpointError::at(
                path,
                lineno,
                "row missing job/mechanism/seed",
            ));
        };
        let index = index as usize;
        let Some(job) = jobs.get(index) else {
            return Err(CheckpointError::at(
                path,
                lineno,
                format!("job index {index} out of range ({} jobs)", jobs.len()),
            ));
        };
        let expected_mechanism = mechanism_token(job.mechanism);
        if mechanism != expected_mechanism || seed != job.seed {
            return Err(CheckpointError::at(
                path,
                lineno,
                format!(
                    "row ({mechanism}, seed {seed}) does not match job {index} \
                     ({expected_mechanism}, seed {})",
                    job.seed
                ),
            ));
        }
        let stats = match stats_from_fields(|name| get(name).and_then(Scalar::as_u64)) {
            Some(stats) => stats,
            None if last => break,
            None => {
                return Err(CheckpointError::at(path, lineno, "row missing stat fields"));
            }
        };
        if header.format >= 2 {
            let recorded = match get("row_fnv").and_then(Scalar::as_u64) {
                Some(v) => v,
                None if last => break,
                None => {
                    return Err(CheckpointError::at(
                        path,
                        lineno,
                        "row field `row_fnv` missing",
                    ));
                }
            };
            let computed = row_checksum(index, mechanism, seed, &stats_to_array(&stats));
            if recorded != computed {
                return Err(CheckpointError::at(
                    path,
                    lineno,
                    format!(
                        "row_fnv {recorded:016x} does not match the row's contents \
                         (recomputed {computed:016x}): the row was damaged after it \
                         was written"
                    ),
                ));
            }
        }
        rows.insert(index, stats);
    }
    Ok(())
}

/// A value in a flat journal line: the only shapes the format uses.
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    Str(String),
    UInt(u64),
    Bool(bool),
}

impl Scalar {
    fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::UInt(u) => Some(*u),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one journal line: a single-level JSON object whose values are
/// strings, unsigned integers or booleans. Exactly the grammar [`Journal`]
/// writes — anything else is corruption.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected `,` or `}`".into()),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        if self.next() == Some(want) {
            Ok(())
        } else {
            Err(format!("expected `{}`", want as char))
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => self.literal("true").map(|()| Scalar::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Scalar::Bool(false)),
            Some(b'0'..=b'9') => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()
                    .and_then(|s| s.parse::<u64>().ok())
                    .map(Scalar::UInt)
                    .ok_or_else(|| "integer out of range".to_string())
            }
            _ => Err("expected string, integer or boolean".into()),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}`"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next().ok_or("unterminated string")? {
                b'"' => return Ok(out),
                b'\\' => match self.next().ok_or("unterminated escape")? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        self.pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                    }
                    b => return Err(format!("bad escape `\\{}`", b as char)),
                },
                b => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or("bad UTF-8")?;
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| "bad UTF-8".to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("boomerang-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> CampaignSpec {
        CampaignSpec::from_toml_str(
            "name = \"jtest\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\"]\nseeds = [0, 1]\n",
        )
        .unwrap()
    }

    fn stats(n: u64) -> SimStats {
        SimStats {
            instructions: 1000 + n,
            cycles: 2000 + n,
            fetch_stall_cycles: 300 + n,
            miss_breakdown: MissBreakdown {
                sequential: 100,
                conditional: 100 + n,
                unconditional: 100,
            },
            squash_stall_cycles: 10,
            ftq_empty_cycles: 11,
            rob_full_cycles: 12,
            squashes: SquashStats {
                btb_miss: 5,
                misprediction: 6 + n,
            },
            btb_lookups: 500,
            btb_misses: 50,
            prefetch_buffer_hits: 7,
            prefetches_issued: 8,
            conditional_predictions: 400,
            conditional_mispredictions: 20,
        }
    }

    #[test]
    fn journal_roundtrips_rows_exactly() {
        let dir = temp_dir("roundtrip");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        journal.record(&jobs[2], &stats(2)).unwrap();
        drop(journal);

        let replay = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap();
        assert_eq!(replay.completed(), 2);
        assert_eq!(replay.rows[&0], stats(0));
        assert_eq!(replay.rows[&2], stats(2));
        assert!(!replay.rows.contains_key(&1));
        assert_eq!(
            JournalReplay::existing_hash(&dir, &spec.name).unwrap(),
            Some(hash)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped_not_fatal() {
        let dir = temp_dir("truncated");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Simulate a kill mid-write: chop the file in the middle of row 2.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();
        let replay = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap();
        assert_eq!(replay.completed(), 1);
        assert_eq!(replay.rows[&0], stats(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_torn_tail_truncates_not_welds() {
        let dir = temp_dir("tornappend");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Kill mid-write of row 2: an unterminated prefix at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"job\":1,\"mechanism\":\"fd");
        std::fs::write(&path, &text).unwrap();

        // Resume must drop the torn prefix, not weld the new row onto it
        // (which would be fatal interior corruption on the next replay).
        let journal = Journal::append(&dir, &spec.name, None).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        drop(journal);
        let replay = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap();
        assert_eq!(replay.completed(), 2);
        assert_eq!(replay.rows[&1], stats(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn progress_probe_grows_with_rows_and_tolerates_absence() {
        let dir = temp_dir("progress");
        let spec = spec();
        assert_eq!(journal_progress(&dir, &spec.name), 0);
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        let after_header = journal_progress(&dir, &spec.name);
        assert!(after_header > 0);
        journal.record(&jobs[0], &stats(0)).unwrap();
        assert!(journal_progress(&dir, &spec.name) > after_header);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn progress_probe_shrinks_when_resume_drops_a_torn_tail() {
        // A worker killed mid-write leaves a torn prefix; the restarted
        // worker's `Journal::append` truncates it away, so the probe value
        // goes *down* between two supervisor polls. The supervisor must not
        // read that shrink as progress (see `supervise`), and the probe
        // itself must faithfully report the smaller size.
        let dir = temp_dir("shrink");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        let clean = journal_progress(&dir, &spec.name);

        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"job\":1,\"mechanism\":\"fd");
        std::fs::write(&path, &text).unwrap();
        let torn = journal_progress(&dir, &spec.name);
        assert!(torn > clean);

        let journal = Journal::append(&dir, &spec.name, None).unwrap();
        let truncated = journal_progress(&dir, &spec.name);
        assert_eq!(truncated, clean, "append must drop exactly the torn tail");
        assert!(truncated < torn, "the probe must report the shrink");
        drop(journal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_array_round_trips_in_column_order() {
        let original = stats(7);
        let values = stats_to_array(&original);
        assert_eq!(values.len(), STAT_FIELD_COUNT);
        assert_eq!(stats_from_array(&values), Some(original));
        assert_eq!(stats_from_array(&values[..STAT_FIELD_COUNT - 1]), None);
        // The array shares column order with the journal writer.
        assert_eq!(values[0], original.instructions);
        assert_eq!(values[1], original.cycles);
    }

    #[test]
    fn mismatching_spec_hash_is_rejected() {
        let dir = temp_dir("hash");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();

        let other = spec_hash(&spec, RunLength::paper_default(), false);
        assert_ne!(hash, other);
        let err = JournalReplay::load(&dir, &spec.name, &other, &jobs).unwrap_err();
        assert!(err.message.contains("spec hash"), "{err}");
        assert_eq!(err.line, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_interior_row_is_an_error() {
        let dir = temp_dir("corrupt");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Splice a garbage line between the two valid rows so it is interior.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.insert(2, "{\"job\": not json");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap_err();
        assert!(err.message.contains("malformed row"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rows_from_a_different_expansion_are_rejected() {
        let dir = temp_dir("expansion");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        // Write a row whose seed contradicts the canonical job at index 0.
        let mut fake = jobs[0];
        fake.seed = 99;
        journal.record(&fake, &stats(0)).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        drop(journal);

        let err = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap_err();
        assert!(err.message.contains("does not match job"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_journals_merge() {
        let dir = temp_dir("shards");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        for shard in 0..2usize {
            let journal =
                Journal::create(&dir, &spec.name, &hash, jobs.len(), Some((shard, 2))).unwrap();
            for job in jobs.iter().filter(|j| j.index % 2 == shard) {
                journal.record(job, &stats(job.index as u64)).unwrap();
            }
        }
        let replay = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap();
        assert_eq!(replay.completed(), jobs.len());
        assert_eq!(replay.files.len(), 2);
        for job in &jobs {
            assert_eq!(replay.rows[&job.index], stats(job.index as u64));
        }
        Journal::remove_all(&dir, &spec.name).unwrap();
        assert_eq!(
            JournalReplay::existing_hash(&dir, &spec.name).unwrap(),
            None
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_row_fails_its_checksum_on_replay() {
        let dir = temp_dir("bitflip");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Flip one stat digit of row 1 (an *interior* line, so torn-tail
        // tolerance cannot excuse it). The line still parses as JSON.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let mut row = lines[1].clone().into_bytes();
        flip_last_digit(&mut row);
        lines[1] = String::from_utf8(row).unwrap();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap_err();
        assert!(err.message.contains("row_fnv"), "{err}");
        assert_eq!(err.line, 2, "the error must name the damaged line");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_row_fnv_field_is_also_rejected() {
        let dir = temp_dir("fnvfield");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        journal.record(&jobs[1], &stats(1)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        // Damage the checksum itself instead of a stat: same rejection.
        // The *last* digit flips — bumping the leading digit of a u64 near
        // the top of its range would overflow the parser instead.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let start = lines[1].find("\"row_fnv\":").unwrap() + "\"row_fnv\":".len();
        let mut row = lines[1].clone().into_bytes();
        let end = (start..row.len())
            .take_while(|&i| row[i].is_ascii_digit())
            .last()
            .unwrap();
        row[end] = if row[end] == b'9' { b'0' } else { row[end] + 1 };
        lines[1] = String::from_utf8(row).unwrap();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap_err();
        assert!(err.message.contains("row_fnv"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_1_journals_replay_unverified() {
        // A journal written by a pre-checksum build: format 1 header, rows
        // without `row_fnv`. It must still replay (warning, not error).
        let dir = temp_dir("format1");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        journal.record(&jobs[0], &stats(0)).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);

        let text = std::fs::read_to_string(&path).unwrap();
        let downgraded: String = text
            .lines()
            .map(|line| {
                let mut line = line.replace("\"journal_format\":2", "\"journal_format\":1");
                // Strip the checksum field the old writer never produced.
                if let Some(start) = line.find(",\"row_fnv\":") {
                    let value_start = start + ",\"row_fnv\":".len();
                    let value_end = line[value_start..]
                        .find(|c: char| !c.is_ascii_digit())
                        .map_or(line.len(), |o| value_start + o);
                    line.replace_range(start..value_end, "");
                }
                format!("{line}\n")
            })
            .collect();
        std::fs::write(&path, downgraded).unwrap();

        let replay = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap();
        assert_eq!(replay.completed(), 1);
        assert_eq!(replay.rows[&0], stats(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_future_format_is_rejected() {
        let dir = temp_dir("future");
        let spec = spec();
        let jobs = crate::expand::expand(&spec);
        let hash = spec_hash(&spec, RunLength::smoke_test(), true);
        let journal = Journal::create(&dir, &spec.name, &hash, jobs.len(), None).unwrap();
        let path = journal.path().to_path_buf();
        drop(journal);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"journal_format\":2", "\"journal_format\":9");
        std::fs::write(&path, text).unwrap();
        let err = JournalReplay::load(&dir, &spec.name, &hash, &jobs).unwrap_err();
        assert!(err.message.contains("journal_format 9"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn row_checksum_is_sensitive_to_every_input() {
        let values = stats_to_array(&stats(3));
        let base = row_checksum(4, "fdip", 1, &values);
        assert_ne!(base, row_checksum(5, "fdip", 1, &values));
        assert_ne!(base, row_checksum(4, "boomerang", 1, &values));
        assert_ne!(base, row_checksum(4, "fdip", 2, &values));
        let mut off = values;
        off[STAT_FIELD_COUNT - 1] += 1;
        assert_ne!(base, row_checksum(4, "fdip", 1, &off));
        assert_eq!(base, row_checksum(4, "fdip", 1, &values));
    }

    /// A writer that accepts bytes but reports a full disk at flush time —
    /// the shape ENOSPC actually takes with buffered files.
    struct FullDisk;

    impl io::Write for FullDisk {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::from_raw_os_error(28)) // ENOSPC
        }
    }

    #[test]
    fn deferred_enospc_surfaces_instead_of_being_swallowed() {
        let err = append_durable(&mut FullDisk, b"{\"job\":0}\n").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "{err}");
    }

    #[test]
    fn flat_parser_handles_escapes_and_rejects_junk() {
        let fields =
            parse_flat_object("{\"a\":\"x\\\"y\\u00e9\",\"b\":7,\"c\":true,\"d\":false}").unwrap();
        assert_eq!(fields[0].1, Scalar::Str("x\"y\u{e9}".into()));
        assert_eq!(fields[1].1, Scalar::UInt(7));
        assert_eq!(fields[2].1, Scalar::Bool(true));
        assert_eq!(fields[3].1, Scalar::Bool(false));
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("{\"a\":}").is_err());
        assert!(parse_flat_object("{\"a\":-1}").is_err());
        assert!(parse_flat_object("[1]").is_err());
        assert!(parse_flat_object("{\"a\":1").is_err());
    }
}
