//! The TCP campaign worker: connect to a broker, lease jobs, run rows,
//! survive the network.
//!
//! `boomerang-sim worker --connect ADDR` runs [`run_worker`]: an outer
//! reconnect loop (capped exponential backoff, so a broker restart is a
//! pause, not a death) around a per-connection session. Each session
//! handshakes ([`Message::Hello`] → [`Message::Welcome`]), then loops
//! requesting leases. A leased job names the campaign by spec hash and
//! carries the canonical TOML, so the worker needs no shared filesystem: it
//! re-expands the spec locally, recomputes the hash (a mismatch is a
//! terminal error — the two ends disagree about what the campaign *is*),
//! and generates each distinct (workload, seed) point once per process,
//! optionally through the same content-addressed artifact cache the local
//! path uses.
//!
//! A heartbeat thread shares the socket (writes serialised by a mutex;
//! heartbeats are the protocol's only fire-and-forget frame, so the session
//! thread's request-reply reads never race a heartbeat's non-existent
//! reply) and refreshes whichever lease the session currently holds. If the
//! worker stalls — the injectable `heartbeat-stall` fault, or a real wedge —
//! the heartbeats stop and the broker's lease timeout reclaims the job.
//!
//! Completed rows are transmitted as [`Message::RowDone`] with the stat
//! counters in canonical journal column order plus the row's `row_fnv`
//! checksum, computed here over the stats the simulation actually produced
//! — the broker recomputes it from the received fields, so a row corrupted
//! anywhere between this process's simulator and the broker's journal can
//! never be recorded. The broker journals and acks. Row submission is
//! idempotent on the broker side, so the worker retransmits freely after a
//! reconnect — at worst the broker replies with a dedup ack.

use crate::artifact::ArtifactCache;
use crate::checkpoint::{row_checksum, spec_hash, stats_to_array};
use crate::engine::derive_seed;
use crate::expand::{expand, Job};
use crate::fault;
use crate::proto::{read_message, write_message, Message};
use crate::spec::{mechanism_token, CampaignSpec};
use boomerang::{RunLength, WorkloadData};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Connection and pacing policy for one worker process.
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Broker address (`host:port`).
    pub connect: String,
    /// This worker's index, quoted in the handshake and registered as the
    /// process's fault shard (so `shard=N` plans can address one worker).
    pub worker_index: usize,
    /// Heartbeat interval while a lease is held.
    pub heartbeat: Duration,
    /// Backoff before the first reconnect; doubles per consecutive failure.
    pub reconnect_base: Duration,
    /// Upper bound on the doubled reconnect backoff.
    pub reconnect_cap: Duration,
    /// Consecutive connection failures tolerated before giving up. A
    /// successful handshake resets the count, so this bounds one outage, not
    /// the process lifetime.
    pub reconnect_tries: u32,
    /// Directory of the content-addressed workload artifact cache; `None`
    /// generates in-process.
    pub artifact_cache: Option<PathBuf>,
    /// Suppress per-row log lines.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            connect: String::new(),
            worker_index: 0,
            heartbeat: Duration::from_secs(2),
            reconnect_base: Duration::from_millis(250),
            reconnect_cap: Duration::from_secs(10),
            reconnect_tries: 6,
            artifact_cache: None,
            quiet: false,
        }
    }
}

/// What one worker process accomplished.
#[derive(Clone, Debug, Default)]
pub struct WorkerSummary {
    /// Rows completed and acked.
    pub rows: u64,
    /// Leases accepted.
    pub leases: u64,
    /// Successful connections after the first (broker restarts ridden out).
    pub reconnects: u64,
    /// The broker's shutdown reason.
    pub shutdown_reason: String,
}

/// Per-campaign state a worker builds once per spec hash and reuses for
/// every lease of that campaign.
struct CampaignState {
    spec: CampaignSpec,
    run: RunLength,
    jobs: Vec<Job>,
    configs: Vec<sim_core::MicroarchConfig>,
    /// Generated (workload axis index, seed) points, built lazily.
    data: HashMap<(usize, u64), WorkloadData>,
}

/// How a connection session ended.
enum SessionEnd {
    /// The broker said shutdown; the worker exits cleanly.
    Shutdown(String),
    /// The connection failed; reconnect with backoff.
    Lost(io::Error),
}

/// Runs the worker to completion: until the broker sends
/// [`Message::Shutdown`] (clean exit) or the reconnect budget is exhausted.
///
/// # Errors
///
/// Returns a message on terminal failures: the reconnect budget spent
/// against an unreachable broker, a spec whose TOML does not parse, or a
/// recomputed spec hash that contradicts the broker's (version/config skew —
/// retrying cannot fix either end).
pub fn run_worker(options: &WorkerOptions) -> Result<WorkerSummary, String> {
    fault::set_worker_shard(options.worker_index);
    let cache = match &options.artifact_cache {
        Some(dir) => Some(
            ArtifactCache::open(dir)
                .map_err(|e| format!("cannot open artifact cache {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let mut summary = WorkerSummary::default();
    let mut campaigns: HashMap<String, CampaignState> = HashMap::new();
    let mut failures: u32 = 0;
    let mut connected_before = false;
    loop {
        match TcpStream::connect(&options.connect) {
            Ok(stream) => {
                match session(stream, options, &cache, &mut campaigns, &mut summary) {
                    Ok(SessionEnd::Shutdown(reason)) => {
                        summary.shutdown_reason = reason;
                        return Ok(summary);
                    }
                    Ok(SessionEnd::Lost(e)) => {
                        // The handshake succeeded before the loss: the
                        // outage counter restarts.
                        if connected_before {
                            summary.reconnects += 1;
                        }
                        connected_before = true;
                        failures = 1;
                        if !options.quiet {
                            eprintln!(
                                "worker {}: connection lost ({e}); reconnecting",
                                options.worker_index
                            );
                        }
                    }
                    Err(terminal) => return Err(terminal),
                }
            }
            Err(e) => {
                failures += 1;
                if !options.quiet {
                    eprintln!(
                        "worker {}: cannot connect to {} ({e}); attempt {}/{}",
                        options.worker_index, options.connect, failures, options.reconnect_tries
                    );
                }
            }
        }
        if failures > options.reconnect_tries {
            return Err(format!(
                "broker {} unreachable after {} consecutive attempts",
                options.connect, options.reconnect_tries
            ));
        }
        let backoff = options
            .reconnect_base
            .saturating_mul(1u32 << failures.saturating_sub(1).min(20))
            .min(options.reconnect_cap);
        std::thread::sleep(backoff);
    }
}

/// One connection's lifetime: handshake, then the lease/run/submit loop.
/// `Ok(SessionEnd)` covers both clean shutdown and recoverable loss;
/// `Err(String)` is terminal (spec skew — reconnecting cannot help).
fn session(
    stream: TcpStream,
    options: &WorkerOptions,
    cache: &Option<ArtifactCache>,
    campaigns: &mut HashMap<String, CampaignState>,
    summary: &mut WorkerSummary,
) -> Result<SessionEnd, String> {
    let mut reader = stream;
    let _ = reader.set_nodelay(true);
    let _ = reader.set_read_timeout(Some(Duration::from_secs(60)));
    let writer = match reader.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => return Ok(SessionEnd::Lost(e)),
    };

    // Handshake first, so a failed connect never spawns a heartbeat thread.
    let hello = Message::Hello {
        worker: format!("worker-{}", options.worker_index),
        pid: std::process::id() as u64,
    };
    if let Err(e) = write_message(&mut *lock_writer(&writer)?, &hello) {
        return Ok(SessionEnd::Lost(e));
    }
    match read_message(&mut reader) {
        Ok(Message::Welcome { .. }) => {}
        Ok(other) => {
            return Ok(SessionEnd::Lost(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            )))
        }
        Err(e) => return Ok(SessionEnd::Lost(e)),
    }

    // The heartbeat thread refreshes whatever lease the session currently
    // holds (0 = none). It dies with the connection: any write error or the
    // stop flag ends it, and `hb_stop` is always set before this function
    // returns.
    let current_lease = Arc::new(AtomicU64::new(0));
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_handle = {
        let writer = Arc::clone(&writer);
        let current_lease = Arc::clone(&current_lease);
        let hb_stop = Arc::clone(&hb_stop);
        let interval = options.heartbeat;
        std::thread::spawn(move || {
            while !hb_stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                let lease = current_lease.load(Ordering::Relaxed);
                if lease == 0 || hb_stop.load(Ordering::Relaxed) {
                    continue;
                }
                let beat = Message::Heartbeat { lease };
                // A poisoned writer lock means a sender thread panicked
                // mid-frame; stop heartbeating — the session thread will
                // classify the poison as a terminal error.
                let Ok(mut w) = writer.lock() else { break };
                if write_message(&mut *w, &beat).is_err() {
                    break;
                }
            }
        })
    };
    let result = lease_loop(
        &mut reader,
        &writer,
        &current_lease,
        options,
        cache,
        campaigns,
        summary,
    );
    hb_stop.store(true, Ordering::Relaxed);
    current_lease.store(0, Ordering::Relaxed);
    let _ = reader.shutdown(std::net::Shutdown::Both);
    let _ = hb_handle.join();
    result
}

/// Locks the shared socket writer, classifying a poisoned mutex — a sender
/// thread panicked mid-frame, leaving the socket's write state unknowable —
/// as a terminal session error instead of propagating the panic and taking
/// the whole worker process down without a diagnosis.
fn lock_writer<'a>(
    writer: &'a Arc<Mutex<TcpStream>>,
) -> Result<std::sync::MutexGuard<'a, TcpStream>, String> {
    writer.lock().map_err(|_| {
        "socket writer lock poisoned (a sender thread panicked mid-frame); \
         the connection state is unknowable — terminating the session"
            .to_string()
    })
}

/// The session's request-reply loop. Every protocol read/write error is a
/// recoverable `SessionEnd::Lost`.
fn lease_loop(
    reader: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    current_lease: &AtomicU64,
    options: &WorkerOptions,
    cache: &Option<ArtifactCache>,
    campaigns: &mut HashMap<String, CampaignState>,
    summary: &mut WorkerSummary,
) -> Result<SessionEnd, String> {
    macro_rules! send {
        ($msg:expr) => {
            if let Err(e) = write_message(&mut *lock_writer(writer)?, $msg) {
                return Ok(SessionEnd::Lost(e));
            }
        };
    }
    macro_rules! recv {
        () => {
            match read_message(reader) {
                Ok(msg) => msg,
                Err(e) => return Ok(SessionEnd::Lost(e)),
            }
        };
    }
    loop {
        send!(&Message::LeaseRequest);
        match recv!() {
            Message::NoWork { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 5_000)));
            }
            Message::Shutdown { reason } => return Ok(SessionEnd::Shutdown(reason)),
            Message::Reject { reason } => {
                // The broker refuses this *session* further leases (it was
                // quarantined after a failed row verification). Drop the
                // connection; a reconnect opens a fresh session.
                if !options.quiet {
                    eprintln!(
                        "worker {}: lease request rejected: {reason}",
                        options.worker_index
                    );
                }
                return Ok(SessionEnd::Lost(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("broker rejected this session: {reason}"),
                )));
            }
            Message::Lease {
                lease,
                job,
                smoke,
                spec_hash: wanted_hash,
                spec_toml,
            } => {
                summary.leases += 1;
                if fault::stall_this_lease() {
                    // The injected wedge: heartbeats stop (lease stays 0),
                    // the process stays alive, the broker's lease timeout
                    // must reclaim the job.
                    if !options.quiet {
                        eprintln!(
                            "worker {}: injected heartbeat stall on lease {lease}",
                            options.worker_index
                        );
                    }
                    fault::hang_now();
                }
                current_lease.store(lease, Ordering::Relaxed);
                let state = campaign_state(campaigns, &wanted_hash, &spec_toml, smoke)?;
                let job_index = job as usize;
                if job_index >= state.jobs.len() {
                    // A broker this confused is not one to keep talking to.
                    return Ok(SessionEnd::Lost(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "leased job {job} outside the {}-job expansion",
                            state.jobs.len()
                        ),
                    )));
                }
                let leased = state.jobs[job_index];
                let stats = run_row(state, &leased, cache);
                let row_faults = fault::on_worker_row();
                let mechanism = mechanism_token(leased.mechanism).to_string();
                let mut values = stats_to_array(&stats).to_vec();
                let row_fnv = row_checksum(job_index, &mechanism, leased.seed, &values);
                if row_faults.corrupt {
                    // Injected result corruption: one stat flips *after* the
                    // checksum was taken over the true values — the exact
                    // damage the broker's re-verification must catch (and
                    // quarantine this session for).
                    values[0] ^= 1;
                    if !options.quiet {
                        eprintln!(
                            "worker {}: injected row corruption on job {job}",
                            options.worker_index
                        );
                    }
                }
                let done = Message::RowDone {
                    lease,
                    job,
                    spec_hash: wanted_hash.clone(),
                    mechanism,
                    seed: leased.seed,
                    row_fnv,
                    stats: values,
                };
                let transmissions = if row_faults.duplicate { 2 } else { 1 };
                for _ in 0..transmissions {
                    send!(&done);
                }
                if row_faults.conn_drop {
                    // Drop the socket before reading the ack: the broker has
                    // (or will have) journaled the row; the retransmission
                    // after reconnect must dedup.
                    current_lease.store(0, Ordering::Relaxed);
                    return Ok(SessionEnd::Lost(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected connection drop before ack",
                    )));
                }
                let mut acked = false;
                for _ in 0..transmissions {
                    match recv!() {
                        Message::RowAck { .. } => acked = true,
                        Message::Reject { reason } => {
                            if !options.quiet {
                                eprintln!(
                                    "worker {}: row {job} rejected: {reason}",
                                    options.worker_index
                                );
                            }
                        }
                        other => {
                            return Ok(SessionEnd::Lost(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("expected RowAck/Reject, got {other:?}"),
                            )))
                        }
                    }
                }
                current_lease.store(0, Ordering::Relaxed);
                if acked {
                    summary.rows += 1;
                    if !options.quiet {
                        eprintln!(
                            "worker {}: row {job} done ({}/{} jobs of {})",
                            options.worker_index,
                            summary.rows,
                            state.jobs.len(),
                            state.spec.name
                        );
                    }
                }
                if row_faults.exit {
                    fault::exit_now();
                }
                if row_faults.hang {
                    fault::hang_now();
                }
            }
            other => {
                return Ok(SessionEnd::Lost(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Lease/NoWork/Shutdown, got {other:?}"),
                )))
            }
        }
    }
}

/// Fetches (or builds and caches) the per-campaign state for a spec hash.
/// Terminal errors: unparseable TOML, or a recomputed hash that contradicts
/// the broker's.
fn campaign_state<'a>(
    campaigns: &'a mut HashMap<String, CampaignState>,
    wanted_hash: &str,
    spec_toml: &str,
    smoke: bool,
) -> Result<&'a mut CampaignState, String> {
    if !campaigns.contains_key(wanted_hash) {
        let spec = CampaignSpec::from_toml_str(spec_toml)
            .map_err(|e| format!("leased spec does not parse: {e}"))?;
        let run = if smoke {
            RunLength::smoke_test()
        } else {
            spec.run
        };
        let computed = spec_hash(&spec, run, smoke);
        if computed != wanted_hash {
            return Err(format!(
                "spec hash skew: broker leased {wanted_hash}, this worker computes {computed} \
                 — mismatched binaries?"
            ));
        }
        let jobs = expand(&spec);
        let configs = spec.configs.iter().map(|c| c.build()).collect();
        campaigns.insert(
            wanted_hash.to_string(),
            CampaignState {
                spec,
                run,
                jobs,
                configs,
                data: HashMap::new(),
            },
        );
    }
    // The insert above (or an earlier lease) guarantees presence; classify
    // the impossible miss instead of panicking the worker process.
    campaigns
        .get_mut(wanted_hash)
        .ok_or_else(|| "internal error: campaign state missing after insert".to_string())
}

/// Runs one row, generating (or cache-loading) its workload point on first
/// use — the same per-point recipe as the local engine, so the stats are
/// bit-identical to an in-process run.
fn run_row(
    state: &mut CampaignState,
    job: &Job,
    cache: &Option<ArtifactCache>,
) -> frontend::SimStats {
    let key = (job.workload, job.seed);
    if !state.data.contains_key(&key) {
        let profile = &state.spec.workloads[job.workload].profile;
        let effective = derive_seed(profile.seed, job.seed);
        let profile = profile.clone().with_seed(effective);
        let data = match cache {
            Some(cache) => match cache.load(&profile, state.run) {
                Ok(Some(data)) => data,
                _ => {
                    let data = WorkloadData::generate_from_profile(&profile, state.run);
                    let _ = cache.store(&profile, state.run, &data);
                    data
                }
            },
            None => WorkloadData::generate_from_profile(&profile, state.run),
        };
        state.data.insert(key, data);
    }
    let data = &state.data[&key];
    data.run_with_predictor_engine(
        job.mechanism,
        &state.configs[job.config],
        state.spec.predictor,
        frontend::SimEngine::default(),
    )
}
