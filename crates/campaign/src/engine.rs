//! The sweep engine: expand, shard, execute, aggregate.
//!
//! [`run_campaign`] turns a [`CampaignSpec`] into a [`CampaignReport`] in
//! three deterministic phases:
//!
//! 1. **Workload generation** — the distinct (workload, seed) pairs of the
//!    job list are generated once each, in parallel on the
//!    [`sim_core::pool`] work-stealing pool, and shared by every job that
//!    uses them.
//! 2. **Job execution** — every job (one simulator run) is a pool task;
//!    the work-stealing deques re-balance the heavily skewed job costs
//!    (an OLTP workload at paper length costs ~10x a smoke-length web
//!    workload).
//! 3. **Aggregation** — results are joined with their group's no-prefetch
//!    baseline in canonical job order, so the report is a pure function of
//!    the spec: `--jobs 1` and `--jobs 64` produce byte-identical output.

use crate::artifact::{artifact_key, ArtifactCache};
use crate::expand::{expand, Job};
use crate::spec::{CampaignSpec, SpecError};
use boomerang::{Mechanism, RunLength, WorkloadData};
use frontend::SimStats;
use sim_core::pool;
use std::collections::HashMap;

/// Execution options orthogonal to the spec.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// Worker threads; 0 means [`pool::default_workers`].
    pub jobs: usize,
    /// Replace the spec's run length with [`RunLength::smoke_test`] (CI and
    /// quick sanity runs).
    pub smoke: bool,
    /// Which simulation engine drives each job. Both engines produce
    /// bit-identical reports; the per-cycle reference exists for the bench
    /// harness and for differential testing.
    pub engine: frontend::SimEngine,
    /// Directory of the content-addressed workload artifact cache (see
    /// [`crate::artifact`]). `None` generates everything in-process, every
    /// time.
    pub artifact_cache: Option<std::path::PathBuf>,
    /// Lane cap for lane-batched group execution
    /// ([`WorkloadData::run_group_with_predictor_engine`]): `0` (the
    /// default) runs each whole (workload, seed) group as one lane slab, `1`
    /// disables lane batching (every row simulates alone), `n > 1` splits
    /// groups into consecutive slabs of at most `n` lanes. Purely a
    /// schedule: reports are byte-identical for every setting. Lane batching
    /// only applies to full groups on the event-horizon engine — resume
    /// holes, `--shard` splits, row limits and the per-cycle reference
    /// engine all fall back to per-row execution.
    pub lanes: usize,
}

/// Derives the effective workload-profile seed for a seed offset.
///
/// Offset 0 keeps the workload's paper seed so campaign results line up with
/// the figure reproductions; any other offset mixes the paper seed with a
/// SplitMix64-scrambled offset, giving an independent but fully deterministic
/// layout + trace sample of the same workload.
pub fn derive_seed(base: u64, offset: u64) -> u64 {
    if offset == 0 {
        return base;
    }
    let mut z = offset.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    base ^ (z ^ (z >> 31))
}

/// One finished cell: its job description plus measured and baseline stats.
#[derive(Clone, Debug)]
pub struct RowResult {
    /// The job this row reports.
    pub job: Job,
    /// Label of the job's config point.
    pub config_label: String,
    /// Label of the job's workload-axis point (the paper name for presets,
    /// the spec's `[[workload]]` label — with any list-expansion suffix —
    /// for custom profiles).
    pub workload_label: String,
    /// Simulation statistics of the job itself.
    pub stats: SimStats,
    /// Statistics of the group's no-prefetch baseline run (equal to `stats`
    /// for baseline rows).
    pub baseline: SimStats,
}

impl RowResult {
    /// Speedup over the group baseline.
    pub fn speedup(&self) -> f64 {
        self.stats.speedup_vs(&self.baseline)
    }

    /// Front-end stall-cycle coverage over the group baseline.
    pub fn coverage(&self) -> f64 {
        self.stats.stall_coverage_vs(&self.baseline)
    }
}

/// The aggregated outcome of a campaign run.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The spec that produced the report.
    pub spec: CampaignSpec,
    /// The run length actually simulated (differs from the spec under
    /// `--smoke`).
    pub effective_run: RunLength,
    /// Whether the run was a smoke run.
    pub smoke: bool,
    /// One row per job, in canonical job order.
    pub rows: Vec<RowResult>,
}

/// How a generation phase obtained its workloads: generated in-process or
/// loaded from the artifact cache, plus any warnings about rejected cache
/// files.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenerationSummary {
    /// Workload points generated in-process.
    pub generated: usize,
    /// Workload points loaded from the artifact cache.
    pub cache_hits: usize,
    /// Human-readable warnings (corrupt artifacts rejected and regenerated,
    /// failed stores). Never fatal.
    pub warnings: Vec<String>,
}

/// The output of the campaign's generation phase: the expanded job list plus
/// every distinct (workload axis point, seed) generated once. Reusable
/// across multiple [`run_generated`] calls, so the bench harness can time
/// generation and simulation separately and re-simulate without
/// regenerating.
pub struct GeneratedWorkloads {
    jobs: Vec<Job>,
    keys: Vec<(usize, u64)>,
    data: Vec<WorkloadData>,
    run: RunLength,
    smoke: bool,
    summary: GenerationSummary,
}

impl GeneratedWorkloads {
    /// Number of jobs the campaign expands to.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of distinct generated (workload, seed) points.
    pub fn workload_count(&self) -> usize {
        self.data.len()
    }

    /// The expanded jobs, in canonical order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The run length the workloads were generated for.
    pub fn effective_run(&self) -> RunLength {
        self.run
    }

    /// How the generation phase obtained its workloads (cache hits vs.
    /// in-process generation).
    pub fn generation(&self) -> &GenerationSummary {
        &self.summary
    }

    /// The generated data of one distinct (workload axis point, seed) pair,
    /// if the campaign uses it. The bench harness uses this to time one
    /// group's lane-batched A/B in isolation.
    pub fn data_for(&self, workload: usize, seed: u64) -> Option<&WorkloadData> {
        self.keys
            .iter()
            .position(|&k| k == (workload, seed))
            .map(|at| &self.data[at])
    }
}

/// The campaign's generation phase: expands the spec and generates each
/// distinct (workload axis point, seed) once, in parallel on the pool.
/// Keyed by the axis *index*, not the workload kind: two custom
/// `[[workload]]` points may share a base kind while describing different
/// profiles, and a kind-keyed cache would silently hand one point the
/// other's generated code.
///
/// # Errors
///
/// Returns a [`SpecError`] if the spec expands to nothing (empty axes are
/// already rejected at parse time, so this indicates a hand-constructed
/// spec).
pub fn generate_workloads(
    spec: &CampaignSpec,
    options: &EngineOptions,
) -> Result<GeneratedWorkloads, SpecError> {
    let jobs = expand(spec);
    if jobs.is_empty() {
        return Err(SpecError::Invalid("campaign expands to zero jobs".into()));
    }
    let workers = if options.jobs == 0 {
        pool::default_workers()
    } else {
        options.jobs
    };
    let run = if options.smoke {
        RunLength::smoke_test()
    } else {
        spec.run
    };
    let mut keys: Vec<(usize, u64)> = jobs.iter().map(|j| (j.workload, j.seed)).collect();
    keys.sort_unstable();
    keys.dedup();
    let cache = match &options.artifact_cache {
        Some(dir) => Some(ArtifactCache::open(dir).map_err(|e| {
            SpecError::Invalid(format!("cannot open artifact cache {}: {e}", dir.display()))
        })?),
        None => None,
    };
    let results = pool::run_indexed(workers, &keys, |_, &(workload, seed)| {
        let profile = &spec.workloads[workload].profile;
        let effective = derive_seed(profile.seed, seed);
        let profile = profile.clone().with_seed(effective);
        let Some(cache) = &cache else {
            let data = WorkloadData::generate_from_profile(&profile, run);
            return (data, false, Vec::new());
        };
        let mut warnings = Vec::new();
        match cache.load(&profile, run) {
            Ok(Some(data)) => return (data, true, warnings),
            Ok(None) => {}
            Err(e) => warnings.push(format!(
                "rejected {}: {e}; regenerating",
                cache.path_for(artifact_key(&profile, run)).display()
            )),
        }
        let data = WorkloadData::generate_from_profile(&profile, run);
        if let Err(e) = cache.store(&profile, run, &data) {
            warnings.push(format!(
                "cannot store {}: {e}",
                cache.path_for(artifact_key(&profile, run)).display()
            ));
        }
        (data, false, warnings)
    });
    let mut data = Vec::with_capacity(results.len());
    let mut summary = GenerationSummary::default();
    for (d, hit, warnings) in results {
        if hit {
            summary.cache_hits += 1;
        } else {
            summary.generated += 1;
        }
        summary.warnings.extend(warnings);
        data.push(d);
    }
    Ok(GeneratedWorkloads {
        jobs,
        keys,
        data,
        run,
        smoke: options.smoke,
        summary,
    })
}

/// Runs a campaign to completion.
///
/// # Errors
///
/// Returns a [`SpecError`] if the spec expands to nothing (empty axes are
/// already rejected at parse time, so this indicates a hand-constructed
/// spec).
pub fn run_campaign(
    spec: &CampaignSpec,
    options: &EngineOptions,
) -> Result<CampaignReport, SpecError> {
    let generated = generate_workloads(spec, options)?;
    Ok(run_generated(spec, options, &generated))
}

/// The campaign's simulation + aggregation phases over already-generated
/// workloads (see [`generate_workloads`]). Pure with respect to `generated`:
/// re-running produces the identical report. The report's run length and
/// smoke flag come from `generated` (the options that produced the
/// workloads), so a caller passing different `options.smoke` cannot create
/// a self-inconsistent report; `options` only supplies the worker count and
/// engine choice here.
pub fn run_generated(
    spec: &CampaignSpec,
    options: &EngineOptions,
    generated: &GeneratedWorkloads,
) -> CampaignReport {
    let outcome = run_generated_partial(
        spec,
        options,
        generated,
        &HashMap::new(),
        RunPlan::default(),
        None,
    );
    let stats: Vec<SimStats> = outcome
        .stats
        .into_iter()
        .map(|s| s.expect("an unrestricted plan executes every job"))
        .collect();
    assemble_report(spec, &generated.jobs, generated.run, generated.smoke, stats)
}

/// Which subset of the expanded jobs one execution pass covers.
///
/// The default plan covers everything. Sharding restricts the pass to the
/// job indices `i` with `i % count == index` over the canonical expansion —
/// the `serve` worker protocol — and `limit` caps how many *missing* jobs
/// the pass executes, which is how a resumable interruption is produced
/// deterministically (in tests and in CI).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunPlan {
    /// `(index, count)`: only execute jobs whose canonical index is
    /// congruent to `index` modulo `count`.
    pub shard: Option<(usize, usize)>,
    /// Execute at most this many missing jobs, in canonical order.
    pub limit: Option<usize>,
}

/// The per-job statistics known after a (possibly partial) execution pass:
/// one slot per job in canonical order, `None` where the plan did not cover
/// the job and no prior result was supplied.
pub struct RunOutcome {
    /// Per-job statistics, indexed by canonical job index.
    pub stats: Vec<Option<SimStats>>,
    /// Jobs actually executed by this pass (excludes replayed results).
    pub executed: usize,
}

impl RunOutcome {
    /// Number of jobs with known statistics.
    pub fn completed(&self) -> usize {
        self.stats.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when every job has statistics and a report can be assembled.
    pub fn is_complete(&self) -> bool {
        self.stats.iter().all(Option::is_some)
    }
}

/// The per-row completion hook of [`run_generated_partial`]: invoked from
/// the pool workers as each job finishes, in completion order.
pub type RowObserver<'a> = dyn Fn(&Job, &SimStats) + Sync + 'a;

/// The campaign's simulation phase over a subset of the jobs.
///
/// `done` supplies results replayed from a checkpoint journal (keyed by
/// canonical job index); those jobs are not re-executed. `on_row` — if given
/// — is invoked from the pool workers as each job completes, in completion
/// order; this is the hook the streaming sinks and the checkpoint journal
/// hang off. Per-job statistics are deterministic, so the final merged
/// report is byte-identical no matter how the work was split across passes,
/// shards or worker counts.
pub fn run_generated_partial(
    spec: &CampaignSpec,
    options: &EngineOptions,
    generated: &GeneratedWorkloads,
    done: &HashMap<usize, SimStats>,
    plan: RunPlan,
    on_row: Option<&RowObserver<'_>>,
) -> RunOutcome {
    let workers = if options.jobs == 0 {
        pool::default_workers()
    } else {
        options.jobs
    };
    let jobs = &generated.jobs;
    let data_by_key: HashMap<(usize, u64), &WorkloadData> = generated
        .keys
        .iter()
        .copied()
        .zip(generated.data.iter())
        .collect();

    let mut pending: Vec<usize> = (0..jobs.len())
        .filter(|i| !done.contains_key(i))
        .filter(|i| match plan.shard {
            Some((index, count)) => i % count.max(1) == index,
            None => true,
        })
        .collect();
    if let Some(limit) = plan.limit {
        pending.truncate(limit);
    }

    let configs: Vec<_> = spec.configs.iter().map(|c| c.build()).collect();
    let units = plan_units(jobs, &pending, options, plan);
    let results: Vec<Vec<(usize, SimStats)>> =
        pool::run_indexed(workers, &units, |_, unit| match unit {
            ExecUnit::Row(i) => {
                let job = &jobs[*i];
                let data = data_by_key[&(job.workload, job.seed)];
                let stats = data.run_with_predictor_engine(
                    job.mechanism,
                    &configs[job.config],
                    spec.predictor,
                    options.engine,
                );
                if let Some(on_row) = on_row {
                    on_row(job, &stats);
                }
                vec![(*i, stats)]
            }
            ExecUnit::Group(members) => {
                let first = &jobs[members[0]];
                let data = data_by_key[&(first.workload, first.seed)];
                let rows: Vec<(Mechanism, &sim_core::MicroarchConfig)> = members
                    .iter()
                    .map(|&j| (jobs[j].mechanism, &configs[jobs[j].config]))
                    .collect();
                let stats = data.run_group_with_predictor_engine(
                    &rows,
                    spec.predictor,
                    options.engine,
                    options.lanes,
                );
                let out: Vec<(usize, SimStats)> = members.iter().copied().zip(stats).collect();
                if let Some(on_row) = on_row {
                    // Journal/checkpoint rows are still emitted per lane, in
                    // canonical order within the group.
                    for (j, s) in &out {
                        on_row(&jobs[*j], s);
                    }
                }
                out
            }
        });

    let mut stats: Vec<Option<SimStats>> = vec![None; jobs.len()];
    for (&i, s) in done {
        stats[i] = Some(*s);
    }
    for (i, s) in results.into_iter().flatten() {
        stats[i] = Some(s);
    }
    RunOutcome {
        stats,
        executed: pending.len(),
    }
}

/// One pool task of an execution pass: a lone job, or a whole lane-batched
/// (workload, seed) group.
enum ExecUnit {
    Row(usize),
    Group(Vec<usize>),
}

/// Partitions the pending job indices into pool execution units.
///
/// A (workload, seed) group becomes one lane-batched [`ExecUnit::Group`]
/// only when *every* job of the group is pending in this pass — a group with
/// resume holes (some rows already journaled), a `--shard` split (the
/// canonical round-robin scatters each group across shards) or a row-limit
/// cut runs per-row, exactly as before lane batching existed. The pool thus
/// shards whole groups across workers while lanes fill within a group.
/// Units are emitted in canonical order of their first job index, and a
/// group's members are in canonical order, so journal emission order within
/// a unit is deterministic.
fn plan_units(
    jobs: &[Job],
    pending: &[usize],
    options: &EngineOptions,
    plan: RunPlan,
) -> Vec<ExecUnit> {
    let lane_batching = options.lanes != 1
        && options.engine == frontend::SimEngine::EventHorizon
        && plan.shard.is_none();
    if !lane_batching {
        return pending.iter().map(|&i| ExecUnit::Row(i)).collect();
    }
    let mut members: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        members.entry((job.workload, job.seed)).or_default().push(i);
    }
    let mut is_pending = vec![false; jobs.len()];
    for &i in pending {
        is_pending[i] = true;
    }
    let mut claimed = vec![false; jobs.len()];
    let mut units = Vec::new();
    for &i in pending {
        if claimed[i] {
            continue;
        }
        let group = &members[&(jobs[i].workload, jobs[i].seed)];
        if group.len() > 1 && group.iter().all(|&j| is_pending[j]) {
            for &j in group {
                claimed[j] = true;
            }
            units.push(ExecUnit::Group(group.clone()));
        } else {
            claimed[i] = true;
            units.push(ExecUnit::Row(i));
        }
    }
    units
}

/// The campaign's aggregation phase: joins each job's statistics with its
/// group's no-prefetch baseline, in canonical job order, producing the
/// report. A pure function of `(spec, jobs, stats)` — which is what makes
/// checkpoint-resumed, sharded and streamed campaigns byte-identical to
/// one-shot runs. It deliberately does *not* need the generated workloads:
/// a merge over fully-checkpointed journals (the `serve` collector path)
/// can assemble the report without generating anything.
///
/// # Panics
///
/// Panics if `stats` does not hold one entry per expanded job (callers
/// check [`RunOutcome::is_complete`] first).
pub fn assemble_report(
    spec: &CampaignSpec,
    jobs: &[Job],
    run: RunLength,
    smoke: bool,
    stats: Vec<SimStats>,
) -> CampaignReport {
    assert_eq!(
        stats.len(),
        jobs.len(),
        "assemble_report needs statistics for every job"
    );
    let mut baselines: HashMap<(usize, usize, u64), SimStats> = HashMap::new();
    for (job, s) in jobs.iter().zip(&stats) {
        if job.mechanism == Mechanism::Baseline {
            baselines.insert((job.config, job.workload, job.seed), *s);
        }
    }
    let rows = jobs
        .iter()
        .zip(&stats)
        .map(|(job, s)| {
            let baseline = *baselines
                .get(&(job.config, job.workload, job.seed))
                .expect("every group has a baseline job by construction");
            RowResult {
                job: *job,
                config_label: spec.configs[job.config].label.clone(),
                workload_label: spec.workloads[job.workload].label.clone(),
                stats: *s,
                baseline,
            }
        })
        .collect();

    CampaignReport {
        spec: spec.clone(),
        effective_run: run,
        smoke,
        rows,
    }
}

/// One row of a degraded report: present with its baseline, present without
/// it, or lost with its shard.
#[derive(Clone, Debug)]
pub enum PartialRow {
    /// The job and its group baseline both checkpointed — a full row.
    Present(RowResult),
    /// The job checkpointed but its group's baseline row did not, so the
    /// derived metrics (speedup, coverage) cannot be computed.
    NoBaseline {
        /// The job this row reports.
        job: Job,
        /// Label of the job's config point.
        config_label: String,
        /// Label of the job's workload-axis point.
        workload_label: String,
        /// The job's own statistics (absolute counters are still valid).
        stats: SimStats,
    },
    /// The job never checkpointed (its shard exhausted its retries).
    Missing {
        /// The job this row stands in for.
        job: Job,
        /// Label of the job's config point.
        config_label: String,
        /// Label of the job's workload-axis point.
        workload_label: String,
    },
}

impl PartialRow {
    /// The row's status token as rendered in the JSON/CSV `status` column.
    pub fn status(&self) -> &'static str {
        match self {
            PartialRow::Present(_) => "ok",
            PartialRow::NoBaseline { .. } => "no-baseline",
            PartialRow::Missing { .. } => "missing",
        }
    }
}

/// A campaign report assembled from incomplete statistics — the graceful-
/// degradation output of `--allow-partial`. Every canonical job appears
/// exactly once, explicitly marked, so a reader can see precisely which
/// cells are trustworthy and which died with their shard.
#[derive(Clone, Debug)]
pub struct PartialReport {
    /// The spec that produced the report.
    pub spec: CampaignSpec,
    /// The run length actually simulated.
    pub effective_run: RunLength,
    /// Whether the run was a smoke run.
    pub smoke: bool,
    /// One row per job, in canonical job order.
    pub rows: Vec<PartialRow>,
    /// Why the report is partial (one note per supervision failure).
    pub degraded: Vec<String>,
}

impl PartialReport {
    /// Number of jobs with no checkpointed statistics.
    pub fn missing(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, PartialRow::Missing { .. }))
            .count()
    }
}

/// The graceful-degradation counterpart of [`assemble_report`]: accepts a
/// statistics slot per job with holes (`None`) where a shard died, and
/// classifies every row instead of panicking. Present rows join their group
/// baseline exactly as the full path does — a partial report's `ok` rows
/// carry the same numbers the complete report would.
pub fn assemble_partial_report(
    spec: &CampaignSpec,
    jobs: &[Job],
    run: RunLength,
    smoke: bool,
    stats: &[Option<SimStats>],
    degraded: Vec<String>,
) -> PartialReport {
    assert_eq!(
        stats.len(),
        jobs.len(),
        "assemble_partial_report needs a statistics slot for every job"
    );
    let mut baselines: HashMap<(usize, usize, u64), SimStats> = HashMap::new();
    for (job, s) in jobs.iter().zip(stats) {
        if job.mechanism == Mechanism::Baseline {
            if let Some(s) = s {
                baselines.insert((job.config, job.workload, job.seed), *s);
            }
        }
    }
    let rows = jobs
        .iter()
        .zip(stats)
        .map(|(job, s)| {
            let config_label = spec.configs[job.config].label.clone();
            let workload_label = spec.workloads[job.workload].label.clone();
            match s {
                None => PartialRow::Missing {
                    job: *job,
                    config_label,
                    workload_label,
                },
                Some(s) => match baselines.get(&(job.config, job.workload, job.seed)) {
                    Some(&baseline) => PartialRow::Present(RowResult {
                        job: *job,
                        config_label,
                        workload_label,
                        stats: *s,
                        baseline,
                    }),
                    None => PartialRow::NoBaseline {
                        job: *job,
                        config_label,
                        workload_label,
                        stats: *s,
                    },
                },
            }
        })
        .collect();
    PartialReport {
        spec: spec.clone(),
        effective_run: run,
        smoke,
        rows,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_offset_sensitive() {
        assert_eq!(derive_seed(42, 0), 42);
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 1), derive_seed(42, 2));
        assert_ne!(derive_seed(42, 1), 42);
        // Distinct bases stay distinct under the same offset.
        assert_ne!(derive_seed(1, 5), derive_seed(2, 5));
    }

    #[test]
    fn smoke_campaign_produces_joined_rows() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"t\"\nworkloads = [\"nutch\"]\nmechanisms = [\"fdip\", \"boomerang\"]\n\n[run]\ntrace_blocks = 3000\nwarmup_blocks = 500\n",
        )
        .unwrap();
        let report = run_campaign(
            &spec,
            &EngineOptions {
                jobs: 2,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.rows.len(), 3); // baseline + 2 mechanisms
        let base = &report.rows[0];
        assert!(base.job.implicit_baseline);
        assert_eq!(base.stats, base.baseline);
        assert!((base.speedup() - 1.0).abs() < 1e-12);
        for row in &report.rows {
            assert!(row.stats.instructions > 0);
            assert_eq!(row.baseline, base.stats);
        }
    }

    #[test]
    fn partial_assembly_classifies_every_hole() {
        let spec = CampaignSpec::from_toml_str(
            "name = \"t\"\nworkloads = [\"nutch\", \"zeus\"]\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = 2000\nwarmup_blocks = 400\n",
        )
        .unwrap();
        let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
        // 4 jobs: (nutch, zeus) x (baseline, fdip). Drop zeus's baseline
        // (index 2) and nutch's fdip (index 1).
        let mut stats: Vec<Option<SimStats>> = report.rows.iter().map(|r| Some(r.stats)).collect();
        stats[1] = None;
        stats[2] = None;
        let jobs: Vec<Job> = report.rows.iter().map(|r| r.job).collect();
        let partial = assemble_partial_report(
            &spec,
            &jobs,
            report.effective_run,
            report.smoke,
            &stats,
            vec!["shard 1 failed".into()],
        );
        let statuses: Vec<&str> = partial.rows.iter().map(PartialRow::status).collect();
        assert_eq!(statuses, ["ok", "missing", "missing", "no-baseline"]);
        assert_eq!(partial.missing(), 2);
        // The surviving full row carries the same numbers as the complete
        // report's.
        let PartialRow::Present(row) = &partial.rows[0] else {
            panic!("row 0 should be present");
        };
        assert_eq!(row.stats, report.rows[0].stats);
        assert_eq!(row.baseline, report.rows[0].baseline);
    }

    #[test]
    fn same_kind_custom_workloads_do_not_share_generated_code() {
        // Regression: the generation cache used to be keyed (WorkloadKind,
        // seed), so two axis points with the same base kind collided and one
        // silently simulated the other's layout. Keyed by axis index, the
        // two footprints below must produce different baselines.
        let spec = CampaignSpec::from_toml_str(
            "name = \"t\"\nmechanisms = [\"fdip\"]\n\n[run]\ntrace_blocks = 3000\nwarmup_blocks = 500\n\n[[workload]]\nlabel = \"small\"\nbase = \"nutch\"\nfootprint_bytes = 131072\n\n[[workload]]\nlabel = \"large\"\nbase = \"nutch\"\nfootprint_bytes = 1048576\n",
        )
        .unwrap();
        let report = run_campaign(&spec, &EngineOptions::default()).unwrap();
        assert_eq!(report.rows.len(), 4); // 2 workloads x (baseline + fdip)
        let baseline_cycles: Vec<u64> = report
            .rows
            .iter()
            .filter(|r| r.job.implicit_baseline)
            .map(|r| r.stats.cycles)
            .collect();
        assert_eq!(baseline_cycles.len(), 2);
        assert_ne!(
            baseline_cycles[0], baseline_cycles[1],
            "same-kind workload points must simulate their own layouts"
        );
        let labels: Vec<&str> = report
            .rows
            .iter()
            .map(|r| r.workload_label.as_str())
            .collect();
        assert_eq!(labels, vec!["small", "small", "large", "large"]);
    }
}
