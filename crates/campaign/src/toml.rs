//! A small TOML subset parser and writer for campaign specs.
//!
//! The offline environment has no registry `toml` crate, so this module
//! implements exactly the dialect the campaign specs use — and rejects
//! everything else with a line-numbered error instead of guessing:
//!
//! * top-level `key = value` pairs,
//! * `[table]` and `[[array-of-tables]]` headers (single-level names),
//! * one level of sub-tables: a `[parent.child]` header following `[parent]`
//!   or `[[parent]]` attaches `child` to that table (for arrays of tables,
//!   to the most recent element) — this is what lets a `[[workload]]` entry
//!   carry `[workload.terminators]` / `[workload.backend]` overrides,
//! * values: basic strings, integers, floats, booleans, and flat arrays of
//!   those scalars,
//! * `#` comments and blank lines.
//!
//! Order is preserved everywhere so that a parse → write → parse round trip
//! is the identity on the document model.

use std::fmt;

/// A scalar or flat-array TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic (double-quoted) string.
    Str(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a float (integers coerce), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// An ordered set of `key = value` pairs, plus one level of named
/// sub-tables (`[parent.child]` headers).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Table {
    /// The pairs in document order.
    pub entries: Vec<(String, Value)>,
    /// Sub-tables in document order. Always empty for sub-tables themselves
    /// (the dialect allows exactly one level of nesting).
    pub subtables: Vec<(String, Table)>,
}

impl Table {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Appends a pair.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// The keys in document order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Looks a sub-table up.
    pub fn subtable(&self, name: &str) -> Option<&Table> {
        self.subtables
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Appends a sub-table and returns a mutable reference to it.
    pub fn insert_subtable(&mut self, name: impl Into<String>) -> &mut Table {
        self.subtables.push((name.into(), Table::default()));
        &mut self.subtables.last_mut().expect("just pushed").1
    }
}

/// A parsed document: root pairs, named tables, and arrays of tables.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Document {
    /// Top-level `key = value` pairs.
    pub root: Table,
    /// `[name]` tables, in document order.
    pub tables: Vec<(String, Table)>,
    /// `[[name]]` arrays of tables, in document order of first appearance.
    pub arrays: Vec<(String, Vec<Table>)>,
}

impl Document {
    /// Looks a `[name]` table up.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Looks a `[[name]]` array of tables up (empty slice if absent).
    pub fn array(&self, name: &str) -> &[Table] {
        self.arrays
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A parse error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

/// Parses a document.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for any construct
/// outside the supported subset (nested tables, inline tables, multi-line
/// strings, dates, duplicate keys, ...).
pub fn parse(input: &str) -> Result<Document, TomlError> {
    let mut doc = Document::default();
    // Where new `key = value` pairs currently land. The `Sub` variants point
    // at the most recently opened `[parent.child]` sub-table of a `[table]`
    // or of the last `[[array]]` element.
    enum Target {
        Root,
        Table(usize),
        Array(usize),
        TableSub(usize),
        ArraySub(usize),
    }
    let mut target = Target::Root;

    for (idx, raw_line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line, lineno)?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[table]] header"))?
                .trim();
            validate_key(name, lineno)?;
            let pos = match doc.arrays.iter().position(|(n, _)| n == name) {
                Some(pos) => pos,
                None => {
                    doc.arrays.push((name.to_string(), Vec::new()));
                    doc.arrays.len() - 1
                }
            };
            doc.arrays[pos].1.push(Table::default());
            target = Target::Array(pos);
        } else if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [table] header"))?
                .trim();
            if let Some((parent, child)) = name.split_once('.') {
                let (parent, child) = (parent.trim(), child.trim());
                validate_key(parent, lineno)?;
                validate_key(child, lineno)?;
                // A sub-table attaches to the table the cursor is currently
                // in, so `[a.b]` must directly follow `[a]` / `[[a]]` (or a
                // sibling sub-table of the same parent).
                let parent_table = match target {
                    Target::Table(i) | Target::TableSub(i) if doc.tables[i].0 == parent => {
                        target = Target::TableSub(i);
                        &mut doc.tables[i].1
                    }
                    Target::Array(i) | Target::ArraySub(i) if doc.arrays[i].0 == parent => {
                        target = Target::ArraySub(i);
                        doc.arrays[i].1.last_mut().expect("array header pushed")
                    }
                    _ => {
                        return Err(err(
                            lineno,
                            format!(
                            "sub-table [{parent}.{child}] must follow [{parent}] or [[{parent}]]"
                        ),
                        ))
                    }
                };
                if parent_table.subtable(child).is_some() {
                    return Err(err(
                        lineno,
                        format!("duplicate sub-table [{parent}.{child}]"),
                    ));
                }
                if parent_table.get(child).is_some() {
                    return Err(err(
                        lineno,
                        format!("sub-table [{parent}.{child}] collides with key `{child}`"),
                    ));
                }
                parent_table.insert_subtable(child);
                continue;
            }
            validate_key(name, lineno)?;
            if doc.tables.iter().any(|(n, _)| n == name) {
                return Err(err(lineno, format!("duplicate table [{name}]")));
            }
            doc.tables.push((name.to_string(), Table::default()));
            target = Target::Table(doc.tables.len() - 1);
        } else {
            let eq = line
                .find('=')
                .ok_or_else(|| err(lineno, "expected `key = value`"))?;
            let key = line[..eq].trim();
            validate_key(key, lineno)?;
            let value = parse_value(line[eq + 1..].trim(), lineno)?;
            let table = match target {
                Target::Root => &mut doc.root,
                Target::Table(i) => &mut doc.tables[i].1,
                Target::Array(i) => {
                    let tables = &mut doc.arrays[i].1;
                    tables.last_mut().expect("array header pushed a table")
                }
                Target::TableSub(i) => {
                    let subs = &mut doc.tables[i].1.subtables;
                    &mut subs.last_mut().expect("sub-table header pushed").1
                }
                Target::ArraySub(i) => {
                    let element = doc.arrays[i].1.last_mut().expect("array header pushed");
                    let subs = &mut element.subtables;
                    &mut subs.last_mut().expect("sub-table header pushed").1
                }
            };
            if table.get(key).is_some() {
                return Err(err(lineno, format!("duplicate key `{key}`")));
            }
            table.insert(key, value);
        }
    }
    Ok(doc)
}

/// Removes a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str, lineno: usize) -> Result<&str, TomlError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return Ok(&line[..i]),
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return Err(err(lineno, "unterminated string"));
    }
    Ok(line)
}

fn validate_key(key: &str, lineno: usize) -> Result<(), TomlError> {
    if key.is_empty() {
        return Err(err(lineno, "empty key"));
    }
    if !key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(
            lineno,
            format!("unsupported key `{key}` (bare ASCII keys only, no dotted names)"),
        ));
    }
    Ok(())
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array (arrays must be single-line)"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner, lineno)? {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            let item = parse_value(part, lineno)?;
            if matches!(item, Value::Array(_)) {
                return Err(err(lineno, "nested arrays are not supported"));
            }
            items.push(item);
        }
        return Ok(Value::Array(items));
    }
    if text.starts_with('"') {
        return parse_string(text, lineno);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML permits `_` in numbers only between digits (`10_000`, not `_1`,
    // `1_` or `1__0`); anything else falls through to the error below.
    if underscores_between_digits(text) {
        let cleaned = text.replace('_', "");
        if let Ok(i) = cleaned.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        if (cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E'))
            && !cleaned.ends_with('.')
        {
            if let Ok(f) = cleaned.parse::<f64>() {
                return Ok(Value::Float(f));
            }
        }
    }
    Err(err(lineno, format!("unsupported value `{text}`")))
}

/// `true` when every `_` in `text` sits between two ASCII digits.
fn underscores_between_digits(text: &str) -> bool {
    let bytes = text.as_bytes();
    bytes.iter().enumerate().all(|(i, &c)| {
        c != b'_'
            || (i > 0
                && bytes[i - 1].is_ascii_digit()
                && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
    })
}

/// Splits the inside of an array on commas that are not inside strings.
fn split_array_items(inner: &str, lineno: usize) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return Err(err(lineno, "unterminated string in array"));
    }
    items.push(&inner[start..]);
    Ok(items)
}

fn parse_string(text: &str, lineno: usize) -> Result<Value, TomlError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(lineno, "unterminated string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(err(lineno, "unexpected `\"` inside string"));
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => {
                return Err(err(lineno, format!("unsupported escape `\\{other}`")));
            }
            None => return Err(err(lineno, "dangling escape at end of string")),
        }
    }
    Ok(Value::Str(out))
}

/// Serialises a document in the same subset [`parse`] reads.
pub fn write(doc: &Document) -> String {
    let mut out = String::new();
    write_pairs(&mut out, &doc.root);
    for (name, table) in &doc.tables {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("[{name}]\n"));
        write_pairs(&mut out, table);
        write_subtables(&mut out, name, table);
    }
    for (name, tables) in &doc.arrays {
        for table in tables {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("[[{name}]]\n"));
            write_pairs(&mut out, table);
            write_subtables(&mut out, name, table);
        }
    }
    out
}

fn write_subtables(out: &mut String, parent: &str, table: &Table) {
    for (child, sub) in &table.subtables {
        out.push('\n');
        out.push_str(&format!("[{parent}.{child}]\n"));
        write_pairs(out, sub);
    }
}

fn write_pairs(out: &mut String, table: &Table) {
    for (key, value) in &table.entries {
        out.push_str(key);
        out.push_str(" = ");
        write_value(out, value);
        out.push('\n');
    }
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // TOML floats must carry a decimal point or exponent.
            if !s.contains('.') && !s.contains('e') && !s.contains('E') && !s.contains("inf") {
                out.push_str(".0");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_value(out, item);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A campaign
name = "demo"
seeds = [0, 1, 2]
scale = 1.5
fast = true

[run]
trace_blocks = 10_000

[[config]]
label = "a"
noc = "mesh"

[[config]]
label = "b"
llc_latency = 18
"#;

    #[test]
    fn parses_the_supported_subset() {
        let doc = parse(SAMPLE).unwrap();
        assert_eq!(doc.root.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(doc.root.get("seeds").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.root.get("scale").unwrap().as_f64(), Some(1.5));
        assert_eq!(doc.root.get("fast").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.table("run")
                .unwrap()
                .get("trace_blocks")
                .unwrap()
                .as_u64(),
            Some(10_000)
        );
        let configs = doc.array("config");
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[1].get("llc_latency").unwrap().as_u64(), Some(18));
    }

    #[test]
    fn round_trips_through_write() {
        let doc = parse(SAMPLE).unwrap();
        let text = write(&doc);
        let again = parse(&text).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let doc = parse("s = \"a \\\"quoted\\\" \\\\ path\\nnext\"").unwrap();
        assert_eq!(
            doc.root.get("s").unwrap().as_str(),
            Some("a \"quoted\" \\ path\nnext")
        );
        let again = parse(&write(&doc)).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn comments_and_hash_in_strings() {
        let doc = parse("k = \"a # not comment\" # real comment").unwrap();
        assert_eq!(doc.root.get("k").unwrap().as_str(), Some("a # not comment"));
    }

    #[test]
    fn subtables_attach_to_their_parent() {
        let doc = parse(
            "[[workload]]\nlabel = \"a\"\n\n[workload.terminators]\ncall = 0.1\n\n[workload.backend]\nbase_latency = 2\n\n[[workload]]\nlabel = \"b\"\n\n[workload.backend]\nbase_latency = 3\n",
        )
        .unwrap();
        let entries = doc.array("workload");
        assert_eq!(entries.len(), 2);
        assert_eq!(
            entries[0]
                .subtable("terminators")
                .unwrap()
                .get("call")
                .unwrap()
                .as_f64(),
            Some(0.1)
        );
        assert_eq!(
            entries[0]
                .subtable("backend")
                .unwrap()
                .get("base_latency")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert!(entries[1].subtable("terminators").is_none());
        assert_eq!(
            entries[1]
                .subtable("backend")
                .unwrap()
                .get("base_latency")
                .unwrap()
                .as_u64(),
            Some(3)
        );

        // Plain [table] parents work too, and the writer round-trips both.
        let doc = parse("[run]\nx = 1\n\n[run.sub]\ny = 2\n").unwrap();
        assert_eq!(
            doc.table("run")
                .unwrap()
                .subtable("sub")
                .unwrap()
                .get("y")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        let again = parse(&write(&doc)).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn subtables_round_trip_through_write() {
        let text = "[[w]]\nl = \"a\"\n\n[w.t]\ncall = 0.5\n";
        let doc = parse(text).unwrap();
        let written = write(&doc);
        assert_eq!(parse(&written).unwrap(), doc);
        // A second generation is a byte-level fixed point.
        assert_eq!(write(&parse(&written).unwrap()), written);
    }

    #[test]
    fn rejects_bad_subtables() {
        // Sub-table with no preceding parent.
        assert!(parse("[a.b]\nk = 1").is_err());
        // Wrong parent.
        assert!(parse("[x]\n\n[a.b]\nk = 1").is_err());
        // Duplicate sub-table of the same element.
        assert!(parse("[[a]]\n\n[a.b]\n\n[a.b]\n").is_err());
        // Collision with an existing key of the parent.
        assert!(parse("[[a]]\nb = 1\n\n[a.b]\n").is_err());
        // More than one level of nesting.
        assert!(parse("[[a]]\n\n[a.b.c]\n").is_err());
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse("k = {a = 1}").is_err());
        assert!(parse("k = [[1, 2], [3]]").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
        assert!(parse("k = 1979-05-27").is_err());
        // Underscores only between digits.
        assert!(parse("k = _1").is_err());
        assert!(parse("k = 1_").is_err());
        assert!(parse("k = 1__0").is_err());
        assert_eq!(
            parse("k = 10_000").unwrap().root.get("k").unwrap().as_u64(),
            Some(10_000)
        );
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
