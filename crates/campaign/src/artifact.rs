//! Content-addressed workload artifact cache.
//!
//! Generating a multi-megabyte workload (layout + trace) costs ~0.2 s per
//! (profile, seed) point — paid again by every campaign and every worker
//! process that touches the point. The artifact cache pays it once ever: a
//! generated [`WorkloadData`] is serialized (via [`workloads::codec`]) to a
//! file named by a *content address* — the FNV-1a-64 hash of the resolved
//! profile's canonical fingerprint plus the run length — so any campaign
//! over the same workload point, in any process, loads the bytes instead of
//! regenerating.
//!
//! # File format
//!
//! Every artifact starts with a fixed 32-byte header:
//!
//! | offset | size | field         | value                                   |
//! |--------|------|---------------|-----------------------------------------|
//! | 0      | 4    | `magic`       | `"BMWL"`                                |
//! | 4      | 4    | `format`      | [`ARTIFACT_FORMAT`], little-endian      |
//! | 8      | 8    | `key`         | the content address, little-endian      |
//! | 16     | 8    | `payload_len` | payload byte count, little-endian       |
//! | 24     | 8    | `payload_fnv` | FNV-1a-64 of the payload, little-endian |
//!
//! followed by `payload_len` bytes of [`workloads::codec::encode_workload`]
//! output. Every header field is validated on load with a field-level
//! [`ArtifactError`] (same discipline as the spec TOML parser and
//! [`workloads::ProfileError`]); corrupt, truncated or wrong-version files
//! are *rejected, never trusted and never panicked on* — the engine falls
//! back to regeneration and overwrites the bad file.
//!
//! The key incorporates every profile field (see
//! [`workloads::profile_fingerprint`]) and the run length, so smoke and
//! full-length artifacts of the same point coexist, and any profile change
//! changes the address. [`ARTIFACT_FORMAT`] must be bumped whenever the
//! fingerprint listing, the codec, or this header changes shape.
//!
//! Stores are atomic (write to a process-unique temp file, then rename), so
//! concurrent worker processes racing to fill the same cache entry are safe:
//! both write identical bytes and the losing rename simply overwrites.

use crate::bench::fnv1a64;
use boomerang::{RunLength, WorkloadData};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use workloads::{codec, profile_fingerprint, WorkloadProfile};

/// Magic bytes opening every workload artifact file.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"BMWL";

/// Artifact format version this build reads and writes.
pub const ARTIFACT_FORMAT: u32 = 1;

const HEADER_LEN: usize = 32;

/// A rejected artifact file: which header or payload field was bad, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactError {
    /// Dotted path of the offending field.
    pub field: &'static str,
    /// What was wrong with it.
    pub message: String,
}

impl ArtifactError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        ArtifactError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "artifact field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ArtifactError {}

/// The content address of a (resolved profile, run length) point.
///
/// The profile must already carry its *effective* seed (after
/// [`crate::engine::derive_seed`]); the campaign engine resolves seeds
/// before generation, so the key sees exactly what generation sees.
pub fn artifact_key(profile: &WorkloadProfile, run: RunLength) -> u64 {
    let identity = format!(
        "{} trace_blocks={} warmup_blocks={}",
        profile_fingerprint(profile),
        run.trace_blocks,
        run.warmup_blocks
    );
    fnv1a64(identity.as_bytes())
}

/// An open artifact-cache directory.
#[derive(Clone, Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// Opens (creating if necessary) the cache directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ArtifactCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an artifact with this content address lives at.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("wl-{key:016x}.wla"))
    }

    /// Attempts to load the artifact for `(profile, run)`.
    ///
    /// Returns `Ok(None)` on a clean miss (no file). Returns an
    /// [`ArtifactError`] naming the offending field if a file exists but is
    /// corrupt, truncated, wrong-version, or describes a different workload
    /// — callers treat that as a miss (regenerate and overwrite), surfacing
    /// the error as a warning.
    pub fn load(
        &self,
        profile: &WorkloadProfile,
        run: RunLength,
    ) -> Result<Option<WorkloadData>, ArtifactError> {
        let key = artifact_key(profile, run);
        let path = self.path_for(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(ArtifactError::new(
                    "file",
                    format!("cannot read {}: {e}", path.display()),
                ))
            }
        };
        let payload = check_header(&bytes, key)?;
        let (layout, trace) =
            codec::decode_workload(payload).map_err(|e| ArtifactError::new(e.field, e.message))?;
        if layout.profile() != profile {
            return Err(ArtifactError::new(
                "payload.profile",
                "stored profile differs from the requested one (content-address collision \
                 or stale fingerprint)"
                    .to_string(),
            ));
        }
        let expected_blocks = run.trace_blocks + run.warmup_blocks;
        if trace.len() != expected_blocks {
            return Err(ArtifactError::new(
                "payload.trace",
                format!(
                    "stored trace has {} blocks, run length needs {expected_blocks}",
                    trace.len()
                ),
            ));
        }
        Ok(Some(WorkloadData::from_parts(layout, trace, run)))
    }

    /// Stores the artifact for `(profile, run)` atomically.
    ///
    /// `data` must be the generation output for exactly that profile and run
    /// length.
    pub fn store(
        &self,
        profile: &WorkloadProfile,
        run: RunLength,
        data: &WorkloadData,
    ) -> io::Result<()> {
        let key = artifact_key(profile, run);
        let mut payload = Vec::new();
        codec::encode_workload(&data.layout, &data.trace, &mut payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
        file.extend_from_slice(&ARTIFACT_MAGIC);
        file.extend_from_slice(&ARTIFACT_FORMAT.to_le_bytes());
        file.extend_from_slice(&key.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        // Artifact-store fault point: flip one payload byte *after* the
        // checksum was computed, producing exactly the on-disk damage a
        // later load must reject and regenerate past.
        if crate::fault::corrupt_this_artifact_store() {
            let last = file.len() - 1;
            file[last] ^= 0x01;
        }

        let path = self.path_for(key);
        let tmp = self
            .dir
            .join(format!("wl-{key:016x}.tmp-{}", std::process::id()));
        fs::write(&tmp, &file)?;
        let renamed = fs::rename(&tmp, &path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }
}

/// Validates the artifact header against the expected content address and
/// returns the payload slice. Shared with the offline auditor
/// ([`crate::verify`]), which walks a cache directory and checks every
/// `wl-*.wla` against the key its filename claims.
pub(crate) fn check_header(bytes: &[u8], key: u64) -> Result<&[u8], ArtifactError> {
    if bytes.len() < HEADER_LEN {
        return Err(ArtifactError::new(
            "header",
            format!(
                "truncated: {} bytes, header needs {HEADER_LEN}",
                bytes.len()
            ),
        ));
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    if bytes[..4] != ARTIFACT_MAGIC {
        return Err(ArtifactError::new(
            "header.magic",
            format!("expected {ARTIFACT_MAGIC:?}, found {:?}", &bytes[..4]),
        ));
    }
    let format = u32_at(4);
    if format != ARTIFACT_FORMAT {
        return Err(ArtifactError::new(
            "header.format",
            format!("file is format version {format}, this build reads {ARTIFACT_FORMAT}"),
        ));
    }
    let stored_key = u64_at(8);
    if stored_key != key {
        return Err(ArtifactError::new(
            "header.key",
            format!("file claims key {stored_key:016x}, content address is {key:016x}"),
        ));
    }
    let payload_len = u64_at(16);
    let available = (bytes.len() - HEADER_LEN) as u64;
    if payload_len != available {
        return Err(ArtifactError::new(
            "header.payload_len",
            format!("header says {payload_len} payload bytes, file holds {available}"),
        ));
    }
    let payload = &bytes[HEADER_LEN..];
    let checksum = u64_at(24);
    let actual = fnv1a64(payload);
    if checksum != actual {
        return Err(ArtifactError::new(
            "header.payload_fnv",
            format!("header checksum {checksum:016x}, payload hashes to {actual:016x}"),
        ));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadProfile;

    fn tiny_data(seed: u64, run: RunLength) -> (WorkloadProfile, WorkloadData) {
        let profile = WorkloadProfile::tiny(seed);
        let data = WorkloadData::generate_from_profile(&profile, run);
        (profile, data)
    }

    fn load_err(cache: &ArtifactCache, profile: &WorkloadProfile, run: RunLength) -> ArtifactError {
        match cache.load(profile, run) {
            Err(e) => e,
            Ok(_) => panic!("expected the artifact to be rejected"),
        }
    }

    const RUN: RunLength = RunLength {
        trace_blocks: 800,
        warmup_blocks: 200,
    };

    #[test]
    fn key_separates_profiles_seeds_and_run_lengths() {
        let a = WorkloadProfile::tiny(1);
        let b = WorkloadProfile::tiny(2);
        assert_ne!(artifact_key(&a, RUN), artifact_key(&b, RUN));
        assert_ne!(
            artifact_key(&a, RUN),
            artifact_key(
                &a,
                RunLength {
                    trace_blocks: 801,
                    warmup_blocks: 200
                }
            )
        );
        assert_eq!(artifact_key(&a, RUN), artifact_key(&a.clone(), RUN));
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir =
            std::env::temp_dir().join(format!("boomerang-artifact-rt-{}", std::process::id()));
        let cache = ArtifactCache::open(&dir).unwrap();
        let (profile, data) = tiny_data(5, RUN);
        assert!(cache.load(&profile, RUN).unwrap().is_none());
        cache.store(&profile, RUN, &data).unwrap();
        let loaded = cache.load(&profile, RUN).unwrap().expect("hit");
        assert_eq!(loaded.layout.blocks(), data.layout.blocks());
        assert_eq!(loaded.trace, data.trace);
        assert_eq!(loaded.kind, data.kind);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_truncated_and_wrong_version_files_are_rejected_with_fields() {
        let dir =
            std::env::temp_dir().join(format!("boomerang-artifact-bad-{}", std::process::id()));
        let cache = ArtifactCache::open(&dir).unwrap();
        let (profile, data) = tiny_data(9, RUN);
        cache.store(&profile, RUN, &data).unwrap();
        let path = cache.path_for(artifact_key(&profile, RUN));
        let good = std::fs::read(&path).unwrap();

        // Truncated mid-payload.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let err = load_err(&cache, &profile, RUN);
        assert_eq!(err.field, "header.payload_len");

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(load_err(&cache, &profile, RUN).field, "header.magic");

        // Wrong format version.
        let mut bad = good.clone();
        bad[4] = ARTIFACT_FORMAT as u8 + 1;
        std::fs::write(&path, &bad).unwrap();
        let err = load_err(&cache, &profile, RUN);
        assert_eq!(err.field, "header.format");
        assert!(err.to_string().contains("format version"));

        // Payload bit-flip fails the checksum.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(load_err(&cache, &profile, RUN).field, "header.payload_fnv");

        // Header shorter than 32 bytes.
        std::fs::write(&path, &good[..10]).unwrap();
        assert_eq!(load_err(&cache, &profile, RUN).field, "header");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn smoke_and_full_artifacts_coexist() {
        let dir =
            std::env::temp_dir().join(format!("boomerang-artifact-two-{}", std::process::id()));
        let cache = ArtifactCache::open(&dir).unwrap();
        let other = RunLength {
            trace_blocks: 400,
            warmup_blocks: 100,
        };
        let (profile, data) = tiny_data(3, RUN);
        let data_other = WorkloadData::generate_from_profile(&profile, other);
        cache.store(&profile, RUN, &data).unwrap();
        cache.store(&profile, other, &data_other).unwrap();
        assert_eq!(
            cache.load(&profile, RUN).unwrap().expect("hit").trace.len(),
            1000
        );
        assert_eq!(
            cache
                .load(&profile, other)
                .unwrap()
                .expect("hit")
                .trace
                .len(),
            500
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
