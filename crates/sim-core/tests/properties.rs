//! Property-based tests of the core data types.
use proptest::prelude::*;
use sim_core::rng::SimRng;
use sim_core::{Addr, LineGeometry};

proptest! {
    #[test]
    fn line_of_and_base_are_consistent(raw in 0u64..1 << 40, shift in 2u32..10) {
        let geom = LineGeometry::new(1 << shift);
        let addr = Addr::new(raw & !3);
        let line = geom.line_of(addr);
        let base = geom.line_base(line);
        prop_assert!(base <= addr);
        prop_assert!(addr.raw() - base.raw() < geom.line_bytes());
        prop_assert_eq!(geom.line_of(base), line);
    }

    #[test]
    fn line_distance_is_symmetric_and_triangle_bounded(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let geom = LineGeometry::default();
        let (a, b) = (Addr::new(a), Addr::new(b));
        prop_assert_eq!(geom.line_distance(a, b), geom.line_distance(b, a));
        prop_assert!(geom.line_distance(a, a) == 0);
    }

    #[test]
    fn lines_spanned_counts_match_instruction_extent(start in 0u64..1 << 30, count in 1u64..64) {
        let geom = LineGeometry::default();
        let start = Addr::new(start & !3);
        let lines: Vec<_> = geom.lines_spanned(start, count).collect();
        let first = geom.line_of(start);
        let last = geom.line_of(start.add_instructions(count - 1));
        prop_assert_eq!(lines.first().copied(), Some(first));
        prop_assert_eq!(lines.last().copied(), Some(last));
        prop_assert_eq!(lines.len() as u64, last.0 - first.0 + 1);
    }

    #[test]
    fn seeded_rng_is_reproducible(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut a = SimRng::seeded(seed);
        let mut b = SimRng::seeded(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.range_u64(lo, lo + span), b.range_u64(lo, lo + span));
        }
    }

    #[test]
    fn weighted_index_stays_in_bounds(weights in prop::collection::vec(0.0f64..10.0, 1..8), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = SimRng::seeded(seed);
        for _ in 0..32 {
            let idx = rng.weighted_index(&weights);
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0 || weights.iter().all(|&w| w == 0.0));
        }
    }

    #[test]
    fn coverage_and_speedup_are_well_behaved(base in 0u64..1_000_000, with in 0u64..1_000_000) {
        let c = sim_core::stats::coverage(base, with);
        prop_assert!((0.0..=1.0).contains(&c));
        let s = sim_core::stats::speedup(base, with);
        prop_assert!(s >= 0.0);
    }
}
