//! The abstract branch model.
//!
//! Boomerang's logic depends only on *branch kinds* (conditional vs.
//! unconditional, call/return vs. plain jump), targets and cache-block
//! geometry. This module defines those kinds together with
//! [`BranchInfo`], the static description of a branch embedded in a basic
//! block, and [`BranchOutcome`], one dynamic execution of it.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of control-flow instructions.
///
/// The paper groups discontinuities into *conditional* and *unconditional*
/// (which includes calls and returns); [`BranchKind::is_unconditional`]
/// reflects that grouping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional direct branch; needs the direction predictor.
    Conditional,
    /// Unconditional direct jump.
    DirectJump,
    /// Unconditional indirect jump (target from a register).
    IndirectJump,
    /// Direct function call; pushes a return address.
    Call,
    /// Indirect function call.
    IndirectCall,
    /// Function return; target comes from the return address stack.
    Return,
}

impl BranchKind {
    /// All branch kinds, in a stable order (useful for statistics tables).
    pub const ALL: [BranchKind; 6] = [
        BranchKind::Conditional,
        BranchKind::DirectJump,
        BranchKind::IndirectJump,
        BranchKind::Call,
        BranchKind::IndirectCall,
        BranchKind::Return,
    ];

    /// `true` for every kind except [`BranchKind::Conditional`].
    pub const fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// `true` if the branch is always taken when executed.
    pub const fn is_always_taken(self) -> bool {
        self.is_unconditional()
    }

    /// `true` for calls (direct or indirect).
    pub const fn is_call(self) -> bool {
        matches!(self, BranchKind::Call | BranchKind::IndirectCall)
    }

    /// `true` for returns.
    pub const fn is_return(self) -> bool {
        matches!(self, BranchKind::Return)
    }

    /// `true` if the target cannot be encoded in the instruction (indirect
    /// branches and returns); such targets cannot be recovered by predecoding
    /// a cache block, which matters for Confluence- and Boomerang-style BTB
    /// prefill.
    pub const fn target_is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Return
        )
    }

    /// Short lowercase label used in reports.
    pub const fn label(self) -> &'static str {
        match self {
            BranchKind::Conditional => "conditional",
            BranchKind::DirectJump => "jump",
            BranchKind::IndirectJump => "indirect-jump",
            BranchKind::Call => "call",
            BranchKind::IndirectCall => "indirect-call",
            BranchKind::Return => "return",
        }
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Static description of the branch terminating a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Address of the branch instruction itself.
    pub pc: Addr,
    /// Kind of branch.
    pub kind: BranchKind,
    /// Statically encoded target, if the branch is direct.
    ///
    /// Indirect branches and returns have `None`: their target is only known
    /// dynamically, which is why a predecoder cannot prefill BTB entries for
    /// them.
    pub target: Option<Addr>,
}

impl BranchInfo {
    /// Creates a direct branch description.
    pub const fn direct(pc: Addr, kind: BranchKind, target: Addr) -> Self {
        BranchInfo {
            pc,
            kind,
            target: Some(target),
        }
    }

    /// Creates an indirect branch (or return) description.
    pub const fn indirect(pc: Addr, kind: BranchKind) -> Self {
        BranchInfo {
            pc,
            kind,
            target: None,
        }
    }

    /// The fall-through address (the instruction after the branch).
    pub const fn fall_through(&self) -> Addr {
        self.pc.add_instructions(1)
    }
}

/// One dynamic execution of a branch: whether it was taken and where it
/// actually went.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BranchOutcome {
    /// Was the branch taken?
    pub taken: bool,
    /// The next instruction executed after the branch (target if taken,
    /// fall-through otherwise).
    pub next_pc: Addr,
}

impl BranchOutcome {
    /// A taken branch going to `target`.
    pub const fn taken(target: Addr) -> Self {
        BranchOutcome {
            taken: true,
            next_pc: target,
        }
    }

    /// A not-taken branch falling through to `fall_through`.
    pub const fn not_taken(fall_through: Addr) -> Self {
        BranchOutcome {
            taken: false,
            next_pc: fall_through,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(!BranchKind::Conditional.is_unconditional());
        assert!(BranchKind::DirectJump.is_unconditional());
        assert!(BranchKind::Call.is_call());
        assert!(BranchKind::IndirectCall.is_call());
        assert!(!BranchKind::Return.is_call());
        assert!(BranchKind::Return.is_return());
        assert!(BranchKind::Return.target_is_indirect());
        assert!(BranchKind::IndirectJump.target_is_indirect());
        assert!(!BranchKind::DirectJump.target_is_indirect());
    }

    #[test]
    fn every_unconditional_kind_is_always_taken() {
        for kind in BranchKind::ALL {
            assert_eq!(kind.is_always_taken(), kind.is_unconditional());
        }
    }

    #[test]
    fn labels_are_unique_and_lowercase() {
        let mut labels: Vec<_> = BranchKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), BranchKind::ALL.len());
        for l in labels {
            assert_eq!(l, l.to_lowercase());
        }
        assert_eq!(BranchKind::Conditional.to_string(), "conditional");
    }

    #[test]
    fn branch_info_construction() {
        let b = BranchInfo::direct(Addr::new(0x100), BranchKind::Conditional, Addr::new(0x200));
        assert_eq!(b.target, Some(Addr::new(0x200)));
        assert_eq!(b.fall_through(), Addr::new(0x104));

        let r = BranchInfo::indirect(Addr::new(0x300), BranchKind::Return);
        assert_eq!(r.target, None);
        assert_eq!(r.fall_through(), Addr::new(0x304));
    }

    #[test]
    fn outcome_constructors() {
        let t = BranchOutcome::taken(Addr::new(0x500));
        assert!(t.taken);
        assert_eq!(t.next_pc, Addr::new(0x500));
        let nt = BranchOutcome::not_taken(Addr::new(0x104));
        assert!(!nt.taken);
        assert_eq!(nt.next_pc, Addr::new(0x104));
    }
}
