//! Flat lane slabs for multi-lane simulation.
//!
//! A [`LaneSlab`] is a fixed-size, preallocated slab of per-lane state in the
//! bounded/flat-storage style of Boon's stack-only runtime (SNIPPETS.md
//! snippet 2): every lane's state lives in one contiguous allocation sized
//! once at construction, lanes are addressed by index, and nothing is
//! allocated (or freed) on the hot path afterwards. The lane-batched engine
//! (`frontend::LaneSimulator`) packs one complete per-row timing state —
//! fetch/FTQ/ROB, BPU, BTB, cache hierarchy, prefetch buffers, mechanism —
//! per lane while every lane reads the *same* immutable decoded trace
//! stream.
//!
//! The slab deliberately does not implement `push`/`remove`: the lane
//! population of a group is decided before simulation starts and never
//! changes while lanes are running.

use std::ops::{Index, IndexMut};

/// A fixed-size slab of per-lane state, allocated once up front.
///
/// # Example
///
/// ```
/// use sim_core::lane::LaneSlab;
///
/// let mut slab: LaneSlab<u64> = LaneSlab::from_fn(3, |lane| lane as u64 * 10);
/// assert_eq!(slab.len(), 3);
/// slab[1] += 5;
/// assert_eq!(slab[1], 15);
/// assert_eq!(slab.iter().copied().collect::<Vec<_>>(), vec![0, 15, 20]);
/// ```
#[derive(Debug, Clone)]
pub struct LaneSlab<T> {
    lanes: Box<[T]>,
}

impl<T> LaneSlab<T> {
    /// Builds a slab of `lanes` entries, constructing each lane's state with
    /// `init(lane_index)`. All allocation happens here, before any lane runs.
    pub fn from_fn(lanes: usize, init: impl FnMut(usize) -> T) -> Self {
        Self {
            lanes: (0..lanes).map(init).collect(),
        }
    }

    /// Adopts an already-constructed lane population (e.g. simulators built
    /// from a campaign group's rows) into a flat slab.
    pub fn from_vec(lanes: Vec<T>) -> Self {
        Self {
            lanes: lanes.into_boxed_slice(),
        }
    }

    /// Number of lanes in the slab.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the slab holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Shared iterator over lane states in lane order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.lanes.iter()
    }

    /// Mutable iterator over lane states in lane order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.lanes.iter_mut()
    }

    /// Consumes the slab, returning lane states in lane order.
    pub fn into_vec(self) -> Vec<T> {
        self.lanes.into_vec()
    }
}

impl<T> Index<usize> for LaneSlab<T> {
    type Output = T;

    fn index(&self, lane: usize) -> &T {
        &self.lanes[lane]
    }
}

impl<T> IndexMut<usize> for LaneSlab<T> {
    fn index_mut(&mut self, lane: usize) -> &mut T {
        &mut self.lanes[lane]
    }
}

impl<T> IntoIterator for LaneSlab<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.lanes.into_vec().into_iter()
    }
}

impl<'a, T> IntoIterator for &'a LaneSlab<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.lanes.iter()
    }
}

impl<'a, T> IntoIterator for &'a mut LaneSlab<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.lanes.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_constructs_in_lane_order() {
        let slab = LaneSlab::from_fn(4, |lane| lane * 2);
        assert_eq!(slab.len(), 4);
        assert!(!slab.is_empty());
        assert_eq!(slab.iter().copied().collect::<Vec<_>>(), vec![0, 2, 4, 6]);
    }

    #[test]
    fn from_vec_preserves_order_and_mutation_is_per_lane() {
        let mut slab = LaneSlab::from_vec(vec![1u32, 2, 3]);
        slab[2] = 30;
        for lane in slab.iter_mut() {
            *lane += 1;
        }
        assert_eq!(slab.into_vec(), vec![2, 3, 31]);
    }

    #[test]
    fn empty_slab() {
        let slab: LaneSlab<u8> = LaneSlab::from_fn(0, |_| 0);
        assert!(slab.is_empty());
        assert_eq!(slab.len(), 0);
    }
}
