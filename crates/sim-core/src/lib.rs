//! Common building blocks shared by every crate in the Boomerang reproduction.
//!
//! This crate defines the vocabulary of the simulator:
//!
//! * [`Addr`] — byte addresses in the instruction address space, together with
//!   cache-line geometry helpers ([`LineGeometry`]).
//! * [`BranchKind`], [`BranchInfo`] and [`BasicBlock`] — the abstract RISC
//!   control-flow model used by the synthetic workloads and the front-end
//!   simulator.
//! * [`MicroarchConfig`] — the microarchitectural parameters of Table I of the
//!   paper, plus derived quantities (LLC round-trip latency for the mesh and
//!   crossbar interconnects).
//! * [`stats`] — lightweight counters and ratio helpers used by the metrics
//!   the paper reports (stall-cycle coverage, squashes per kilo-instruction,
//!   speedup).
//! * [`rng`] — deterministic, seedable random number helpers so that every
//!   workload trace and every experiment is exactly reproducible.
//! * [`pool`] — a small work-stealing thread pool on which the experiment
//!   harness and the campaign engine shard their sweeps.
//! * [`lane`] — flat preallocated per-lane state slabs ([`LaneSlab`]) used by
//!   the lane-batched multi-row engine to pack one row's timing state per
//!   lane while all lanes share one immutable decoded trace stream.
//!
//! # Example
//!
//! ```
//! use sim_core::{Addr, LineGeometry, MicroarchConfig};
//!
//! let geom = LineGeometry::default();
//! let a = Addr::new(0x1_0040);
//! assert_eq!(geom.line_of(a).0, 0x1_0040 / 64);
//!
//! let cfg = MicroarchConfig::hpca17();
//! assert_eq!(cfg.btb_entries, 2048);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod block;
pub mod branch;
pub mod config;
pub mod fxhash;
pub mod lane;
pub mod order_queue;
pub mod pool;
pub mod rng;
pub mod stats;

pub use addr::{Addr, CacheLine, LineGeometry, INSTRUCTION_BYTES};
pub use block::{BasicBlock, DynamicBlock, MAX_BASIC_BLOCK_INSTRUCTIONS};
pub use branch::{BranchInfo, BranchKind, BranchOutcome};
pub use config::{Latency, MicroarchConfig, NocModel, PerfectComponents};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use lane::LaneSlab;
pub use order_queue::OrderQueue;
pub use stats::{Counter, Ratio};
