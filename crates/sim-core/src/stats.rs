//! Lightweight statistics helpers used across the simulator.
//!
//! The paper reports three kinds of derived metrics, all of which are ratios
//! of event counters collected during simulation:
//!
//! * *front-end stall-cycle coverage* — stall cycles removed relative to a
//!   no-prefetch baseline,
//! * *squashes per kilo-instruction*,
//! * *speedup* — performance (instructions per cycle) relative to the
//!   baseline.
//!
//! [`Counter`] is a saturating event counter and [`Ratio`] a small utility for
//! the derived values; both are plain data and serialisable so the bench
//! harness can dump raw results.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use sim_core::Counter;
/// let mut c = Counter::default();
/// c.add(10);
/// c.incr();
/// assert_eq!(c.get(), 11);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at `value`.
    pub const fn new(value: u64) -> Self {
        Counter(value)
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds a single event.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Value as `f64`, for ratio computations.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Events per kilo-unit of `denominator` (e.g. squashes per
    /// kilo-instruction).
    pub fn per_kilo(self, denominator: Counter) -> f64 {
        Ratio::new(self.as_f64() * 1000.0, denominator.as_f64()).value()
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.add(rhs);
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// A guarded ratio: `0` when the denominator is zero instead of `NaN`/`inf`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ratio {
    numerator: f64,
    denominator: f64,
}

impl Ratio {
    /// Creates a ratio.
    pub const fn new(numerator: f64, denominator: f64) -> Self {
        Ratio {
            numerator,
            denominator,
        }
    }

    /// Ratio of two counters.
    pub fn of(numerator: Counter, denominator: Counter) -> Self {
        Ratio::new(numerator.as_f64(), denominator.as_f64())
    }

    /// The value of the ratio, or `0.0` if the denominator is zero.
    pub fn value(self) -> f64 {
        if self.denominator == 0.0 {
            0.0
        } else {
            self.numerator / self.denominator
        }
    }

    /// The value expressed as a percentage.
    pub fn percent(self) -> f64 {
        self.value() * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.value())
    }
}

/// Coverage of a quantity relative to a baseline: `1 - value / baseline`,
/// clamped to `[0, 1]`. This is the paper's "fraction of stall cycles
/// covered" metric (Figures 2, 5, 8).
pub fn coverage(baseline: u64, with_mechanism: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    let covered = baseline.saturating_sub(with_mechanism) as f64;
    (covered / baseline as f64).clamp(0.0, 1.0)
}

/// Speedup of a mechanism over a baseline given cycle counts for the same
/// instruction count (Figures 1, 9, 10, 11).
pub fn speedup(baseline_cycles: u64, mechanism_cycles: u64) -> f64 {
    if mechanism_cycles == 0 {
        return 0.0;
    }
    baseline_cycles as f64 / mechanism_cycles as f64
}

/// Geometric mean of a slice of positive values; `0` for an empty slice.
///
/// Used to average speedups across the six workloads.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice; `0` for an empty slice.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        c += 10;
        assert_eq!(c.get(), 20);
        assert_eq!(c.as_f64(), 20.0);
        assert_eq!(format!("{c}"), "20");
        assert_eq!(format!("{c:?}"), "Counter(20)");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new(u64::MAX - 1);
        c.add(100);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn per_kilo_metric() {
        let squashes = Counter::new(25);
        let instructions = Counter::new(10_000);
        assert!((squashes.per_kilo(instructions) - 2.5).abs() < 1e-12);
        assert_eq!(squashes.per_kilo(Counter::new(0)), 0.0);
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(Ratio::new(5.0, 0.0).value(), 0.0);
        assert!((Ratio::new(1.0, 4.0).percent() - 25.0).abs() < 1e-12);
        assert_eq!(Ratio::of(Counter::new(3), Counter::new(6)).value(), 0.5);
        assert_eq!(format!("{}", Ratio::new(1.0, 3.0)), "0.3333");
    }

    #[test]
    fn coverage_metric() {
        assert_eq!(coverage(1000, 400), 0.6);
        assert_eq!(coverage(1000, 0), 1.0);
        assert_eq!(coverage(1000, 1000), 0.0);
        // A mechanism that *adds* stalls is clamped to zero coverage.
        assert_eq!(coverage(1000, 1500), 0.0);
        assert_eq!(coverage(0, 10), 0.0);
    }

    #[test]
    fn speedup_metric() {
        assert!((speedup(1500, 1000) - 1.5).abs() < 1e-12);
        assert_eq!(speedup(1000, 0), 0.0);
        assert_eq!(speedup(0, 10), 0.0);
    }

    #[test]
    fn means() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }
}
