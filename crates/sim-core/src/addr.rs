//! Instruction addresses and cache-line geometry.
//!
//! The simulator models an abstract RISC ISA with fixed-size instructions
//! ([`INSTRUCTION_BYTES`]) and power-of-two cache lines. All address
//! manipulation — alignment, line extraction, line distance (the metric of
//! Figure 4 of the paper) — lives here so that the rest of the code base never
//! does raw bit fiddling on `u64`s.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one instruction in bytes (fixed-width RISC encoding, SPARC-like).
pub const INSTRUCTION_BYTES: u64 = 4;

/// A byte address in the instruction address space.
///
/// `Addr` is a transparent newtype over `u64`; it exists so that instruction
/// addresses, cache-line indices and plain integers cannot be confused.
///
/// # Example
///
/// ```
/// use sim_core::Addr;
/// let a = Addr::new(0x4000);
/// assert_eq!(a.offset(8).raw(), 0x4008);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the address of the `n`-th instruction after this one.
    #[must_use]
    pub const fn add_instructions(self, n: u64) -> Self {
        Addr(self.0 + n * INSTRUCTION_BYTES)
    }

    /// Absolute distance in bytes between two addresses.
    pub const fn distance(self, other: Addr) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Returns `true` if this address is aligned to instruction size.
    pub const fn is_instruction_aligned(self) -> bool {
        self.0.is_multiple_of(INSTRUCTION_BYTES)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// Index of a cache line (block) in the instruction address space.
///
/// Obtained from an [`Addr`] through a [`LineGeometry`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CacheLine(pub u64);

impl CacheLine {
    /// The next sequential cache line.
    #[must_use]
    pub const fn next(self) -> Self {
        CacheLine(self.0 + 1)
    }

    /// The `n`-th sequential cache line after this one.
    #[must_use]
    pub const fn step(self, n: u64) -> Self {
        CacheLine(self.0 + n)
    }

    /// Absolute distance in lines between two cache lines — the x-axis of
    /// Figure 4 in the paper.
    pub const fn distance(self, other: CacheLine) -> u64 {
        self.0.abs_diff(other.0)
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line#{}", self.0)
    }
}

/// Cache-line geometry: line size and the mapping from addresses to lines.
///
/// # Example
///
/// ```
/// use sim_core::{Addr, LineGeometry};
/// let geom = LineGeometry::new(64);
/// assert_eq!(geom.line_of(Addr::new(129)).0, 2);
/// assert_eq!(geom.line_base(geom.line_of(Addr::new(129))), Addr::new(128));
/// assert_eq!(geom.instructions_per_line(), 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineGeometry {
    line_bytes: u64,
    shift: u32,
}

impl LineGeometry {
    /// Creates a geometry with the given line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or is smaller than one
    /// instruction.
    pub fn new(line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two() && line_bytes >= INSTRUCTION_BYTES,
            "cache line size must be a power of two >= {INSTRUCTION_BYTES} bytes, got {line_bytes}"
        );
        LineGeometry {
            line_bytes,
            shift: line_bytes.trailing_zeros(),
        }
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of fixed-width instructions in one line.
    pub const fn instructions_per_line(&self) -> u64 {
        self.line_bytes / INSTRUCTION_BYTES
    }

    /// The cache line containing `addr`.
    pub const fn line_of(&self, addr: Addr) -> CacheLine {
        CacheLine(addr.raw() >> self.shift)
    }

    /// The first byte address of `line`.
    pub const fn line_base(&self, line: CacheLine) -> Addr {
        Addr::new(line.0 << self.shift)
    }

    /// Number of instructions from `addr` (inclusive) to the end of its
    /// cache line — the largest burst the fetch engine can take without
    /// another tag access.
    pub const fn instructions_left_in_line(&self, addr: Addr) -> u64 {
        (self.line_bytes - (addr.raw() & (self.line_bytes - 1))) / INSTRUCTION_BYTES
    }

    /// Distance between the lines of two addresses, in lines.
    pub const fn line_distance(&self, a: Addr, b: Addr) -> u64 {
        self.line_of(a).distance(self.line_of(b))
    }

    /// All distinct lines touched by `count` instructions starting at `start`.
    pub fn lines_spanned(&self, start: Addr, count: u64) -> impl Iterator<Item = CacheLine> {
        let first = self.line_of(start);
        let last = if count == 0 {
            first
        } else {
            self.line_of(start.add_instructions(count - 1))
        };
        (first.0..=last.0).map(CacheLine)
    }
}

impl Default for LineGeometry {
    /// 64-byte lines, matching Table I of the paper.
    fn default() -> Self {
        LineGeometry::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a.offset(28).raw(), 128);
        assert_eq!(a.add_instructions(3).raw(), 112);
        assert_eq!(a.distance(Addr::new(90)), 10);
        assert_eq!(Addr::new(90).distance(a), 10);
        assert!(Addr::new(96).is_instruction_aligned());
        assert!(!Addr::new(97).is_instruction_aligned());
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(format!("{}", Addr::new(0xdead)), "0xdead");
        assert_eq!(format!("{:?}", Addr::new(0x10)), "Addr(0x10)");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn addr_conversions() {
        let a: Addr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }

    #[test]
    fn line_of_and_base() {
        let g = LineGeometry::new(64);
        assert_eq!(g.line_of(Addr::new(0)).0, 0);
        assert_eq!(g.line_of(Addr::new(63)).0, 0);
        assert_eq!(g.line_of(Addr::new(64)).0, 1);
        assert_eq!(g.line_base(CacheLine(3)), Addr::new(192));
        assert_eq!(g.instructions_per_line(), 16);
    }

    #[test]
    fn line_distance_matches_figure4_metric() {
        let g = LineGeometry::default();
        // A branch at 0x1000 whose target is 0x10f0 is 3 lines away.
        assert_eq!(g.line_distance(Addr::new(0x1000), Addr::new(0x10f0)), 3);
        // Backward distance is symmetric.
        assert_eq!(g.line_distance(Addr::new(0x10f0), Addr::new(0x1000)), 3);
        assert_eq!(g.line_distance(Addr::new(0x1000), Addr::new(0x103c)), 0);
    }

    #[test]
    fn lines_spanned_covers_straddling_blocks() {
        let g = LineGeometry::new(64);
        // 20 instructions (80 bytes) starting 8 bytes before a line boundary.
        let lines: Vec<_> = g.lines_spanned(Addr::new(56), 20).collect();
        assert_eq!(lines, vec![CacheLine(0), CacheLine(1), CacheLine(2)]);
        // Zero instructions still reports the line of the start address.
        let lines: Vec<_> = g.lines_spanned(Addr::new(56), 0).collect();
        assert_eq!(lines, vec![CacheLine(0)]);
    }

    #[test]
    fn cache_line_stepping() {
        let l = CacheLine(10);
        assert_eq!(l.next(), CacheLine(11));
        assert_eq!(l.step(4), CacheLine(14));
        assert_eq!(l.distance(CacheLine(7)), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two() {
        let _ = LineGeometry::new(48);
    }

    #[test]
    fn default_geometry_is_64_bytes() {
        assert_eq!(LineGeometry::default().line_bytes(), 64);
    }
}
