//! Basic blocks — the unit of prediction, fetch and trace generation.
//!
//! Following the paper (§IV-A, footnote 1), a *basic block* is a sequence of
//! straight-line instructions ending with a branch instruction. This is the
//! granularity at which the branch prediction unit operates, at which FTQ
//! entries are created, and at which the synthetic workload traces are
//! expressed.

use crate::addr::Addr;
use crate::branch::{BranchInfo, BranchOutcome};
use serde::{Deserialize, Serialize};

/// Upper bound on the number of instructions in one basic block.
///
/// The basic-block BTB stores the block size in a 5-bit field (§VI-D of the
/// paper), so blocks are capped at 31 instructions; the workload generator
/// splits longer straight-line runs into multiple blocks, mirroring what a
/// real basic-block-oriented front end does.
pub const MAX_BASIC_BLOCK_INSTRUCTIONS: u64 = 31;

/// A static basic block: straight-line instructions terminated by a branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Number of instructions in the block, including the terminating branch.
    pub instructions: u64,
    /// The terminating branch. `None` only for the synthetic "end of program"
    /// sentinel block.
    pub terminator: Option<BranchInfo>,
}

impl BasicBlock {
    /// Creates a block with a terminating branch.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` is zero or exceeds
    /// [`MAX_BASIC_BLOCK_INSTRUCTIONS`], or if the terminator is not the last
    /// instruction of the block.
    pub fn new(start: Addr, instructions: u64, terminator: BranchInfo) -> Self {
        assert!(
            (1..=MAX_BASIC_BLOCK_INSTRUCTIONS).contains(&instructions),
            "basic block must have between 1 and {MAX_BASIC_BLOCK_INSTRUCTIONS} instructions, got {instructions}"
        );
        assert_eq!(
            terminator.pc,
            start.add_instructions(instructions - 1),
            "terminator must be the last instruction of the block"
        );
        BasicBlock {
            start,
            instructions,
            terminator: Some(terminator),
        }
    }

    /// Address of the last instruction (the branch, when present).
    pub fn last_instruction(&self) -> Addr {
        self.start
            .add_instructions(self.instructions.saturating_sub(1))
    }

    /// Address of the instruction immediately following the block.
    pub fn fall_through(&self) -> Addr {
        self.start.add_instructions(self.instructions)
    }

    /// Returns `true` if `pc` lies within the block.
    pub fn contains(&self, pc: Addr) -> bool {
        pc >= self.start && pc <= self.last_instruction()
    }
}

/// One dynamic execution of a basic block: the static block plus the outcome
/// of its terminating branch.
///
/// A workload trace is a sequence of `DynamicBlock`s; consecutive entries
/// satisfy `next.block.start == prev.outcome.next_pc`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DynamicBlock {
    /// The static block that was executed.
    pub block: BasicBlock,
    /// What its terminating branch did.
    pub outcome: BranchOutcome,
}

impl DynamicBlock {
    /// Creates a dynamic block record.
    pub const fn new(block: BasicBlock, outcome: BranchOutcome) -> Self {
        DynamicBlock { block, outcome }
    }

    /// Start address of the executed block.
    pub const fn start(&self) -> Addr {
        self.block.start
    }

    /// Number of instructions executed (the whole block).
    pub const fn instructions(&self) -> u64 {
        self.block.instructions
    }

    /// Start address of the next block on the executed path.
    pub const fn next_start(&self) -> Addr {
        self.outcome.next_pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::BranchKind;

    fn sample_block() -> BasicBlock {
        let start = Addr::new(0x1000);
        let term = BranchInfo::direct(
            start.add_instructions(7),
            BranchKind::Conditional,
            Addr::new(0x2000),
        );
        BasicBlock::new(start, 8, term)
    }

    #[test]
    fn block_geometry() {
        let b = sample_block();
        assert_eq!(b.last_instruction(), Addr::new(0x1000 + 7 * 4));
        assert_eq!(b.fall_through(), Addr::new(0x1000 + 8 * 4));
        assert!(b.contains(Addr::new(0x1000)));
        assert!(b.contains(b.last_instruction()));
        assert!(!b.contains(b.fall_through()));
        assert!(!b.contains(Addr::new(0xfff)));
    }

    #[test]
    #[should_panic(expected = "terminator must be the last instruction")]
    fn misplaced_terminator_is_rejected() {
        let start = Addr::new(0x1000);
        let term = BranchInfo::direct(Addr::new(0x1000), BranchKind::DirectJump, Addr::new(0x2000));
        let _ = BasicBlock::new(start, 8, term);
    }

    #[test]
    #[should_panic(expected = "between 1 and")]
    fn oversized_block_is_rejected() {
        let start = Addr::new(0x1000);
        let term = BranchInfo::direct(
            start.add_instructions(63),
            BranchKind::DirectJump,
            Addr::new(0x2000),
        );
        let _ = BasicBlock::new(start, 64, term);
    }

    #[test]
    fn dynamic_block_links_to_next() {
        let b = sample_block();
        let taken = DynamicBlock::new(b, BranchOutcome::taken(Addr::new(0x2000)));
        assert_eq!(taken.next_start(), Addr::new(0x2000));
        assert_eq!(taken.instructions(), 8);
        assert_eq!(taken.start(), Addr::new(0x1000));

        let not_taken = DynamicBlock::new(b, BranchOutcome::not_taken(b.fall_through()));
        assert_eq!(not_taken.next_start(), b.fall_through());
    }
}
