//! Insertion-order tracking with tombstones, shared by the indexed FIFOs.
//!
//! Three hot structures — the L1-I prefetch buffer, the BTB prefetch buffer
//! and the temporal streamer's index — pair a hash index (O(1) membership)
//! with a FIFO that remembers insertion order for eviction. Removing a key
//! from the index must not pay an O(n) scan of the FIFO, so the FIFO keeps
//! `(key, tag)` slots and treats a slot as a *tombstone* once the index no
//! longer maps the key to that tag. This type centralises the shared
//! algorithm: push a tagged slot, pop the oldest live slot (skipping
//! tombstones), and compact tombstones away once the queue doubles past its
//! live capacity — amortised O(1) per operation.
//!
//! The caller supplies the tags (any per-key-monotonic value works: a
//! dedicated generation counter, or an existing sequence number) and decides
//! liveness by comparing a slot's tag against its index.

use std::collections::VecDeque;

/// A FIFO of `(key, tag)` slots with tombstone skipping and amortised
/// compaction.
#[derive(Clone, Debug)]
pub struct OrderQueue<K> {
    slots: VecDeque<(K, u64)>,
    /// Queue length at which [`OrderQueue::maybe_compact`] actually compacts
    /// (conventionally twice the live capacity).
    compact_threshold: usize,
}

impl<K: Copy> OrderQueue<K> {
    /// Creates a queue that compacts once its length reaches
    /// `compact_threshold`.
    pub fn new(compact_threshold: usize) -> Self {
        OrderQueue {
            slots: VecDeque::with_capacity(compact_threshold),
            compact_threshold,
        }
    }

    /// Number of slots, live and tombstoned.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Appends a slot. `tag` must be what the caller's index maps `key` to
    /// while this slot is live; a key re-pushed with a newer tag turns every
    /// older slot for it into a tombstone.
    pub fn push(&mut self, key: K, tag: u64) {
        self.slots.push_back((key, tag));
    }

    /// Pops slots from the front until one satisfies `is_live`, returning
    /// that slot's key (the oldest live entry — exactly the FIFO victim a
    /// tombstone-free queue would yield). Tombstones on the way are
    /// discarded; the live slot itself is removed too, so the caller must
    /// drop the key from its index.
    pub fn pop_oldest_live(&mut self, mut is_live: impl FnMut(&K, u64) -> bool) -> Option<K> {
        while let Some((key, tag)) = self.slots.pop_front() {
            if is_live(&key, tag) {
                return Some(key);
            }
        }
        None
    }

    /// Drops every tombstone if the queue has grown to its compaction
    /// threshold. Call on each push: the O(len) sweep then amortises to O(1)
    /// because at least half the swept slots are removed.
    pub fn maybe_compact(&mut self, mut is_live: impl FnMut(&K, u64) -> bool) {
        if self.slots.len() >= self.compact_threshold {
            self.slots.retain(|&(key, tag)| is_live(&key, tag));
        }
    }

    /// Removes every slot.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pops_oldest_live_and_skips_tombstones() {
        let mut index: HashMap<u32, u64> = HashMap::new();
        let mut q: OrderQueue<u32> = OrderQueue::new(8);
        for (gen, key) in [10u32, 11, 12].iter().enumerate() {
            q.push(*key, gen as u64);
            index.insert(*key, gen as u64);
        }
        // Re-push key 10 with a newer tag: its old slot becomes a tombstone.
        q.push(10, 3);
        index.insert(10, 3);
        let victim = q.pop_oldest_live(|k, tag| index.get(k) == Some(&tag));
        assert_eq!(victim, Some(11), "oldest live is 11, not tombstoned 10");
    }

    #[test]
    fn compaction_keeps_only_live_slots() {
        let mut index: HashMap<u32, u64> = HashMap::new();
        let mut q: OrderQueue<u32> = OrderQueue::new(4);
        for i in 0..4u32 {
            q.push(i, u64::from(i));
        }
        index.insert(3, 3);
        q.maybe_compact(|k, tag| index.get(k) == Some(&tag));
        assert_eq!(q.slot_count(), 1);
        q.clear();
        assert_eq!(q.slot_count(), 0);
    }
}
