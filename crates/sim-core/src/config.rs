//! Microarchitectural configuration (Table I of the paper) and derived
//! latencies.

use crate::addr::LineGeometry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A latency in core clock cycles.
pub type Latency = u64;

/// Interconnect / LLC organisation determining the average LLC round-trip
/// latency seen by one core.
///
/// The paper models a 16-core tiled CMP with a 4x4 2D mesh (3 cycles/hop),
/// giving an average LLC round-trip of ~30 cycles, and a crossbar variant with
/// an 18-cycle round trip (§VI-E2). The `Fixed` variant supports the latency
/// sweeps of Figures 2 and 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NocModel {
    /// 4x4 2D mesh, 3 cycles/hop: ~30-cycle average LLC round trip.
    Mesh4x4,
    /// Wide crossbar: 18-cycle average LLC round trip.
    Crossbar,
    /// A fixed round-trip latency, for sensitivity sweeps.
    Fixed(Latency),
}

impl NocModel {
    /// Average LLC round-trip latency (request + response) in cycles.
    pub const fn llc_round_trip(self) -> Latency {
        match self {
            NocModel::Mesh4x4 => 30,
            NocModel::Crossbar => 18,
            NocModel::Fixed(lat) => lat,
        }
    }
}

impl fmt::Display for NocModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocModel::Mesh4x4 => write!(f, "4x4 mesh (30-cycle LLC round trip)"),
            NocModel::Crossbar => write!(f, "crossbar (18-cycle LLC round trip)"),
            NocModel::Fixed(lat) => write!(f, "fixed {lat}-cycle LLC round trip"),
        }
    }
}

/// Idealised components used by the opportunity study of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PerfectComponents {
    /// Every instruction fetch hits in the L1-I.
    pub perfect_l1i: bool,
    /// Every branch is found in the BTB (no BTB-miss-induced squashes).
    pub perfect_btb: bool,
}

impl PerfectComponents {
    /// Nothing idealised (the realistic configuration).
    pub const fn none() -> Self {
        PerfectComponents {
            perfect_l1i: false,
            perfect_btb: false,
        }
    }

    /// Perfect L1-I only.
    pub const fn l1i() -> Self {
        PerfectComponents {
            perfect_l1i: true,
            perfect_btb: false,
        }
    }

    /// Perfect L1-I and perfect BTB.
    pub const fn l1i_and_btb() -> Self {
        PerfectComponents {
            perfect_l1i: true,
            perfect_btb: true,
        }
    }
}

/// Microarchitectural parameters of the simulated core and memory hierarchy.
///
/// The defaults returned by [`MicroarchConfig::hpca17`] reproduce Table I of
/// the paper: a 3-way out-of-order core resembling an ARM Cortex-A57, a 2K
/// entry BTB, a 32 KB / 2-way L1-I with a 64-entry prefetch buffer, a shared
/// NUCA LLC reached over a 4x4 mesh, and a 45 ns memory.
///
/// # Example
///
/// ```
/// use sim_core::{MicroarchConfig, NocModel};
/// let cfg = MicroarchConfig::hpca17()
///     .with_btb_entries(32 * 1024)
///     .with_noc(NocModel::Fixed(50));
/// assert_eq!(cfg.llc_round_trip(), 50);
/// cfg.validate().unwrap();
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MicroarchConfig {
    /// Core clock frequency in GHz (used to convert the 45 ns memory latency).
    pub clock_ghz: f64,
    /// Fetch / decode / retire width (3-way OoO in the paper).
    pub fetch_width: u64,
    /// Reorder buffer capacity (128 in the paper).
    pub rob_entries: u64,
    /// Load/store queue capacity (32 in the paper; only used by the back-end
    /// data-stall model).
    pub lsq_entries: u64,
    /// Number of BTB entries (2K in the baseline).
    pub btb_entries: u64,
    /// BTB associativity.
    pub btb_ways: u64,
    /// Storage budget of the direction predictor in bytes (8 KB TAGE).
    pub predictor_budget_bytes: u64,
    /// Return address stack depth.
    pub ras_entries: u64,
    /// Fetch target queue depth (32 entries for FDIP/Boomerang).
    pub ftq_entries: usize,
    /// L1-I capacity in bytes (32 KB).
    pub l1i_bytes: u64,
    /// L1-I associativity (2-way).
    pub l1i_ways: u64,
    /// L1-I hit latency in cycles (2).
    pub l1i_latency: Latency,
    /// L1-I prefetch buffer entries (64).
    pub l1i_prefetch_buffer_entries: usize,
    /// Cache-line geometry (64-byte lines).
    pub line: LineGeometry,
    /// Shared LLC capacity in bytes (512 KB per core x 16 cores).
    pub llc_bytes: u64,
    /// LLC associativity (16-way).
    pub llc_ways: u64,
    /// LLC bank access latency in cycles (5). The round-trip figures reported
    /// by [`NocModel`] (30 cycles for the mesh, 18 for the crossbar) already
    /// include the bank access, matching how the paper quotes "average LLC
    /// access latency".
    pub llc_bank_latency: Latency,
    /// Interconnect model determining the LLC round-trip latency.
    pub noc: NocModel,
    /// Main-memory latency in nanoseconds (45 ns).
    pub memory_latency_ns: f64,
    /// Number of in-flight instruction-fetch misses the core can sustain.
    pub fetch_mshrs: usize,
    /// Branch resolution latency: cycles between fetching a mispredicted
    /// branch and redirecting the front end (models the depth of the OoO
    /// pipeline up to execute).
    pub branch_resolution_latency: Latency,
    /// Extra bubble cycles charged when the pipeline is squashed, on top of
    /// the resolution latency (decode/rename refill).
    pub squash_penalty: Latency,
    /// Maximum prefetch probes the prefetch engine may issue per cycle.
    pub prefetch_probes_per_cycle: u64,
    /// BTB prefetch buffer entries used by Boomerang (32).
    pub btb_prefetch_buffer_entries: usize,
    /// Idealised structures for opportunity studies.
    pub perfect: PerfectComponents,
}

impl MicroarchConfig {
    /// The configuration of Table I of the paper.
    pub fn hpca17() -> Self {
        MicroarchConfig {
            clock_ghz: 2.0,
            fetch_width: 3,
            rob_entries: 128,
            lsq_entries: 32,
            btb_entries: 2048,
            btb_ways: 4,
            predictor_budget_bytes: 8 * 1024,
            ras_entries: 32,
            ftq_entries: 32,
            l1i_bytes: 32 * 1024,
            l1i_ways: 2,
            l1i_latency: 2,
            l1i_prefetch_buffer_entries: 64,
            line: LineGeometry::default(),
            llc_bytes: 16 * 512 * 1024,
            llc_ways: 16,
            llc_bank_latency: 5,
            noc: NocModel::Mesh4x4,
            memory_latency_ns: 45.0,
            fetch_mshrs: 16,
            branch_resolution_latency: 12,
            squash_penalty: 3,
            prefetch_probes_per_cycle: 4,
            btb_prefetch_buffer_entries: 32,
            perfect: PerfectComponents::none(),
        }
    }

    /// Returns the configuration with a different BTB capacity.
    #[must_use]
    pub fn with_btb_entries(mut self, entries: u64) -> Self {
        self.btb_entries = entries;
        self
    }

    /// Returns the configuration with a different interconnect model.
    #[must_use]
    pub fn with_noc(mut self, noc: NocModel) -> Self {
        self.noc = noc;
        self
    }

    /// Returns the configuration with a different FTQ depth.
    #[must_use]
    pub fn with_ftq_entries(mut self, entries: usize) -> Self {
        self.ftq_entries = entries;
        self
    }

    /// Returns the configuration with the given idealised components.
    #[must_use]
    pub fn with_perfect(mut self, perfect: PerfectComponents) -> Self {
        self.perfect = perfect;
        self
    }

    /// Average LLC round-trip latency in cycles (interconnect + bank access).
    pub fn llc_round_trip(&self) -> Latency {
        self.noc.llc_round_trip()
    }

    /// Main-memory round-trip latency in cycles.
    pub fn memory_latency(&self) -> Latency {
        (self.memory_latency_ns * self.clock_ghz).round() as Latency
    }

    /// Number of cache lines in the L1-I.
    pub fn l1i_lines(&self) -> u64 {
        self.l1i_bytes / self.line.line_bytes()
    }

    /// Number of cache lines in the LLC.
    pub fn llc_lines(&self) -> u64 {
        self.llc_bytes / self.line.line_bytes()
    }

    /// Validates internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 {
            return Err(ConfigError::new("fetch_width must be non-zero"));
        }
        if !self.btb_entries.is_power_of_two() {
            return Err(ConfigError::new("btb_entries must be a power of two"));
        }
        if self.btb_ways == 0 || !self.btb_entries.is_multiple_of(self.btb_ways) {
            return Err(ConfigError::new(
                "btb_ways must be non-zero and divide btb_entries",
            ));
        }
        if !self
            .l1i_bytes
            .is_multiple_of(self.line.line_bytes() * self.l1i_ways)
        {
            return Err(ConfigError::new(
                "l1i_bytes must be a multiple of line size times associativity",
            ));
        }
        if !self
            .llc_bytes
            .is_multiple_of(self.line.line_bytes() * self.llc_ways)
        {
            return Err(ConfigError::new(
                "llc_bytes must be a multiple of line size times associativity",
            ));
        }
        if self.ftq_entries == 0 {
            return Err(ConfigError::new("ftq_entries must be non-zero"));
        }
        if self.fetch_mshrs == 0 {
            return Err(ConfigError::new("fetch_mshrs must be non-zero"));
        }
        if self.clock_ghz <= 0.0 {
            return Err(ConfigError::new("clock_ghz must be positive"));
        }
        Ok(())
    }
}

impl Default for MicroarchConfig {
    fn default() -> Self {
        MicroarchConfig::hpca17()
    }
}

/// Error returned by [`MicroarchConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    const fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid microarchitectural configuration: {}",
            self.message
        )
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hpca17_matches_table1() {
        let cfg = MicroarchConfig::hpca17();
        assert_eq!(cfg.fetch_width, 3);
        assert_eq!(cfg.rob_entries, 128);
        assert_eq!(cfg.lsq_entries, 32);
        assert_eq!(cfg.btb_entries, 2048);
        assert_eq!(cfg.predictor_budget_bytes, 8 * 1024);
        assert_eq!(cfg.l1i_bytes, 32 * 1024);
        assert_eq!(cfg.l1i_ways, 2);
        assert_eq!(cfg.l1i_latency, 2);
        assert_eq!(cfg.llc_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.llc_ways, 16);
        assert_eq!(cfg.noc, NocModel::Mesh4x4);
        assert!((cfg.memory_latency_ns - 45.0).abs() < f64::EPSILON);
        cfg.validate().unwrap();
    }

    #[test]
    fn derived_latencies() {
        let cfg = MicroarchConfig::hpca17();
        assert_eq!(cfg.llc_round_trip(), 30);
        assert_eq!(cfg.memory_latency(), 90);
        assert_eq!(cfg.l1i_lines(), 512);
        assert_eq!(cfg.llc_lines(), 131072);
        let xbar = cfg.clone().with_noc(NocModel::Crossbar);
        assert_eq!(xbar.llc_round_trip(), 18);
        let fixed = cfg.with_noc(NocModel::Fixed(1));
        assert_eq!(fixed.llc_round_trip(), 1);
    }

    #[test]
    fn builder_methods() {
        let cfg = MicroarchConfig::hpca17()
            .with_btb_entries(32 * 1024)
            .with_ftq_entries(8)
            .with_perfect(PerfectComponents::l1i());
        assert_eq!(cfg.btb_entries, 32 * 1024);
        assert_eq!(cfg.ftq_entries, 8);
        assert!(cfg.perfect.perfect_l1i);
        assert!(!cfg.perfect.perfect_btb);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = MicroarchConfig::hpca17();
        cfg.btb_entries = 3000;
        assert!(cfg.validate().is_err());

        let mut cfg = MicroarchConfig::hpca17();
        cfg.fetch_width = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MicroarchConfig::hpca17();
        cfg.ftq_entries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MicroarchConfig::hpca17();
        cfg.l1i_ways = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = MicroarchConfig::hpca17();
        cfg.clock_ghz = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_error_displays_reason() {
        let mut cfg = MicroarchConfig::hpca17();
        cfg.fetch_mshrs = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("fetch_mshrs"));
    }

    #[test]
    fn perfect_component_presets() {
        assert!(!PerfectComponents::none().perfect_l1i);
        assert!(PerfectComponents::l1i().perfect_l1i);
        assert!(!PerfectComponents::l1i().perfect_btb);
        assert!(PerfectComponents::l1i_and_btb().perfect_btb);
    }

    #[test]
    fn noc_display() {
        assert!(NocModel::Mesh4x4.to_string().contains("mesh"));
        assert!(NocModel::Crossbar.to_string().contains("crossbar"));
        assert!(NocModel::Fixed(7).to_string().contains('7'));
    }
}
