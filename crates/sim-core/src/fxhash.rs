//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The default `std::collections::HashMap` hasher (SipHash-1-3) is designed
//! to resist hash-flooding from untrusted keys; the simulator's keys are
//! cache-line indices and instruction addresses it generated itself, so that
//! robustness only costs cycles — profiling shows SipHash rounds on every
//! prefetch probe and line-index lookup. This module provides the classic
//! multiply-xor "Fx" hash (as used by rustc), which reduces a `u64` key to a
//! handful of arithmetic instructions.
//!
//! Determinism note: unlike `RandomState`, [`FxBuildHasher`] has no per-map
//! seed, so iteration order is stable across runs. Nothing in the simulator
//! may depend on map iteration order anyway (the campaign engine's
//! byte-identical-report contract is enforced by tests), but stability here
//! removes a whole class of accidental nondeterminism.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher specialised for small integer-like keys.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Zero-sized `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_hashes_are_stable() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(64 * 5)), Some(&5));

        let hash = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
        // Nearby keys must not collide into the same bucket pattern.
        let mut low_bits: Vec<u64> = (0..64).map(|i| hash(i) & 0x7f).collect();
        low_bits.dedup();
        assert!(low_bits.len() > 16, "low bits must spread for ring keys");
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
