//! A small work-stealing thread pool for embarrassingly parallel sweeps.
//!
//! Every parallel execution in the repository — the experiment harness's
//! (workload × mechanism) matrices, workload generation, and the `campaign`
//! engine's sharded job sweeps — funnels through [`run_indexed`]: a scoped,
//! dependency-free executor that deals the task indices round-robin into
//! per-worker deques and lets idle workers steal from the back of their
//! neighbours' queues. Compared with the one-thread-per-item spawning the
//! harness used previously, this keeps every core busy even when task costs
//! are badly skewed (an OLTP workload trace costs several times a Streaming
//! one) and puts no limit on the number of tasks.
//!
//! Results are returned in task order regardless of worker count or
//! interleaving, so callers get deterministic output for deterministic tasks.
//!
//! # Example
//!
//! ```
//! let squares = sim_core::pool::run_indexed(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// The worker count used when callers do not specify one: the machine's
/// available parallelism, or 1 if that cannot be determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over every element of `items` on `workers` threads and returns
/// the results in item order.
///
/// `f` receives the item's index alongside the item, so callers can derive
/// per-task seeds or labels from the position. A `workers` of 0 is treated as
/// 1; worker counts beyond `items.len()` are clamped. Tasks are distributed
/// round-robin and re-balanced by work stealing, so the mapping of task to
/// thread is *not* deterministic — only the returned order is.
///
/// # Panics
///
/// Propagates the panic of any task (remaining tasks may be abandoned).
pub fn run_indexed<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // Deal indices round-robin so each worker starts with a similar mix of
    // cheap and expensive tasks; stealing evens out the remainder.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));

    std::thread::scope(|scope| {
        for w in 0..workers {
            let (queues, collected, f) = (&queues, &collected, &f);
            scope.spawn(move || {
                let mut local = Vec::new();
                while let Some(i) = next_task(queues, w) {
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .expect("a sibling pool worker panicked")
                    .extend(local);
            });
        }
    });

    let mut out = collected.into_inner().expect("a pool worker panicked");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Pops the next index for worker `own`: front of its own deque, else a steal
/// from the back of the first non-empty neighbour. Returns `None` only when
/// every queue is empty.
fn next_task(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(i) = queues[own].lock().ok()?.pop_front() {
        return Some(i);
    }
    for offset in 1..queues.len() {
        let victim = (own + offset) % queues.len();
        if let Some(i) = queues[victim].lock().ok()?.pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = run_indexed(8, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let items: Vec<u64> = (0..100).collect();
        let seq = run_indexed(1, &items, |i, &x| x.wrapping_mul(0x9e3779b9) ^ i as u64);
        for workers in [2, 3, 8, 64, 1000] {
            let par = run_indexed(workers, &items, |i, &x| {
                x.wrapping_mul(0x9e3779b9) ^ i as u64
            });
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn skewed_tasks_are_stolen() {
        // Task 0 blocks until some other task has completed. If the pool ran
        // tasks sequentially on one thread (no sibling workers draining the
        // remaining deques), task 0 would be first and nothing could unblock
        // it; with working deques + stealing, the cheap tasks complete on the
        // other workers while task 0 waits. `yield_now` keeps this sound on a
        // single CPU, and the deadline turns a genuine regression into a
        // clear failure instead of a hang.
        let cheap_done = AtomicUsize::new(0);
        let unblocked = AtomicUsize::new(0);
        let items: Vec<u64> = (0..64).collect();
        run_indexed(4, &items, |_, &x| {
            if x == 0 {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                while cheap_done.load(Ordering::SeqCst) == 0 {
                    if std::time::Instant::now() > deadline {
                        return 0;
                    }
                    std::thread::yield_now();
                }
                unblocked.fetch_add(1, Ordering::SeqCst);
            } else {
                cheap_done.fetch_add(1, Ordering::SeqCst);
            }
            x
        });
        assert_eq!(
            unblocked.load(Ordering::SeqCst),
            1,
            "cheap tasks must have run on sibling workers while task 0 was in flight"
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(run_indexed(8, &empty, |_, &x| x).is_empty());
        assert_eq!(run_indexed(0, &[5u64], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
