//! Deterministic random number helpers.
//!
//! Every stochastic choice in the repository — workload code layout, branch
//! behaviour, back-end data stalls — flows through a [`SimRng`] seeded from a
//! workload seed, so that a given (workload, seed, configuration) triple
//! always produces bit-identical results. This is what makes the experiment
//! harness and the integration tests reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A small, fast, deterministic RNG wrapper.
///
/// # Example
///
/// ```
/// use sim_core::rng::SimRng;
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.range_u64(0, 100), b.range_u64(0, 100));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; `salt` distinguishes children created
    /// from the same parent state.
    pub fn fork(&mut self, salt: u64) -> Self {
        let s = self.inner.gen::<u64>() ^ salt.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
        SimRng::seeded(s)
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty collection");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// The raw 53-bit numerator behind one uniform `[0, 1)` sample: the same
    /// single `next_u64` draw [`chance`](Self::chance)/[`unit`](Self::unit)
    /// consume, without the float conversion. Comparing it against a
    /// [`chance_threshold`](Self::chance_threshold) reproduces `chance(p)`
    /// exactly — same stream position, same outcome — in one integer compare,
    /// which is what the back-end latency model's hot path uses.
    #[inline]
    pub fn unit_bits(&mut self) -> u64 {
        self.inner.next_u64() >> 11
    }

    /// Precomputes the integer threshold `t` such that
    /// `unit_bits() < t  ⇔  chance(p)` for every possible draw.
    ///
    /// `chance(p)` tests `(x >> 11) · 2⁻⁵³ < clamp(p)`; scaling by `2⁵³` is
    /// exact for any `f64`, and comparing the 53-bit integer left side
    /// against `⌈p · 2⁵³⌉` is equivalent for both integer and non-integer
    /// right sides.
    #[inline]
    pub fn chance_threshold(p: f64) -> u64 {
        (p.clamp(0.0, 1.0) * (1u64 << 53) as f64).ceil() as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Picks an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights.iter().copied().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut draw = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            let w = w.max(0.0);
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }

    /// Geometric-like draw: returns `k >= 1` with mean approximately `mean`,
    /// capped at `cap`. Used for basic-block lengths and run lengths.
    pub fn geometric(&mut self, mean: f64, cap: u64) -> u64 {
        let mean = mean.max(1.0);
        let p = 1.0 / mean;
        let mut k = 1;
        while k < cap && !self.chance(p) {
            k += 1;
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_for_equal_seeds() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..32)
            .filter(|_| a.range_u64(0, 1 << 30) == b.range_u64(0, 1 << 30))
            .count();
        assert!(
            same < 4,
            "independent seeds should rarely collide, got {same}/32"
        );
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seeded(9);
        let mut parent2 = SimRng::seeded(9);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        for _ in 0..10 {
            assert_eq!(c1.range_u64(0, 1000), c2.range_u64(0, 1000));
        }
        let mut other = parent1.fork(6);
        let diverged = (0..16).any(|_| other.range_u64(0, 1 << 20) != c1.range_u64(0, 1 << 20));
        assert!(diverged);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::seeded(42);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(42);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seeded(7);
        let counts = (0..10_000).fold([0u32; 3], |mut acc, _| {
            acc[rng.weighted_index(&[0.0, 1.0, 3.0])] += 1;
            acc
        });
        assert_eq!(counts[0], 0);
        assert!(counts[2] > counts[1] * 2, "counts {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_index_rejects_empty() {
        SimRng::seeded(0).weighted_index(&[]);
    }

    #[test]
    fn geometric_mean_and_cap() {
        let mut rng = SimRng::seeded(11);
        let draws: Vec<u64> = (0..5000).map(|_| rng.geometric(6.0, 31)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!(draws.iter().all(|&d| (1..=31).contains(&d)));
        assert!((4.0..8.0).contains(&mean), "mean {mean}");
    }
}
