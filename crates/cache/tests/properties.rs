//! Property-based tests of the cache structures.
use cache::{InstructionHierarchy, SetAssocCache};
use proptest::prelude::*;
use sim_core::{CacheLine, MicroarchConfig};

proptest! {
    #[test]
    fn cache_capacity_is_never_exceeded_and_inserted_lines_are_found(
        lines in prop::collection::vec(0u64..1 << 16, 1..400)
    ) {
        let mut cache = SetAssocCache::new(256, 4);
        for &l in &lines {
            cache.insert(CacheLine(l));
            prop_assert!(cache.len() as u64 <= cache.capacity());
            prop_assert!(cache.contains(CacheLine(l)));
        }
    }

    #[test]
    fn demand_fetch_latency_is_monotone_in_hierarchy_level(
        lines in prop::collection::vec(0u64..4096, 1..200)
    ) {
        let cfg = MicroarchConfig::hpca17();
        let mut h = InstructionHierarchy::new(&cfg);
        let mut now = 0u64;
        for &l in &lines {
            let outcome = h.demand_fetch(CacheLine(l), now);
            prop_assert!(outcome.latency >= cfg.l1i_latency);
            prop_assert!(outcome.latency <= cfg.memory_latency() + cfg.l1i_latency);
            now += outcome.latency;
        }
        // Re-fetching the last line immediately is an L1 hit.
        let last = CacheLine(*lines.last().unwrap());
        let again = h.demand_fetch(last, now + 1);
        prop_assert_eq!(again.latency, cfg.l1i_latency);
    }

    #[test]
    fn prefetched_lines_eventually_hit_without_full_latency(
        // Stay within the 64-entry prefetch buffer so nothing ages out
        // before the demand fetches arrive.
        lines in prop::collection::hash_set(0u64..4096, 1..48)
    ) {
        let cfg = MicroarchConfig::hpca17();
        let mut h = InstructionHierarchy::new(&cfg);
        let mut now = 0u64;
        for &l in &lines {
            h.prefetch_probe(CacheLine(l), now);
            now += 1;
        }
        now += cfg.memory_latency() + 10;
        for &l in &lines {
            let outcome = h.demand_fetch(CacheLine(l), now);
            prop_assert!(outcome.latency <= cfg.l1i_latency, "prefetched line stalled {} cycles", outcome.latency);
            now += 1;
        }
    }
}
