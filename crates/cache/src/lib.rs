//! Instruction-side memory hierarchy for the Boomerang front-end simulator.
//!
//! The paper's experiments only exercise the *instruction* path: a 32 KB
//! 2-way L1-I with a 64-entry prefetch buffer, a shared NUCA LLC reached over
//! a mesh or crossbar interconnect, and a 45 ns main memory (Table I). This
//! crate models exactly that:
//!
//! * [`SetAssocCache`] — generic set-associative tag store with LRU,
//! * [`LinePrefetchBuffer`] — the L1-I prefetch buffer,
//! * [`InstructionHierarchy`] — the composite hierarchy with latencies,
//!   outstanding-fill tracking, and the demand/prefetch/BTB-probe interfaces
//!   the front end uses.
//!
//! # Example
//!
//! ```
//! use cache::{HitLevel, InstructionHierarchy};
//! use sim_core::{CacheLine, MicroarchConfig};
//!
//! let mut hierarchy = InstructionHierarchy::new(&MicroarchConfig::hpca17());
//! let cold = hierarchy.demand_fetch(CacheLine(42), 0);
//! assert_eq!(cold.level, HitLevel::Memory);
//! let warm = hierarchy.demand_fetch(CacheLine(42), 1_000);
//! assert_eq!(warm.level, HitLevel::L1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hierarchy;
pub mod prefetch_buffer;
pub mod set_assoc;

pub use hierarchy::{DemandOutcome, HierarchyStats, HitLevel, InstructionHierarchy};
pub use prefetch_buffer::LinePrefetchBuffer;
pub use set_assoc::SetAssocCache;
