//! L1-I prefetch buffer (64 entries in Table I).
//!
//! Prefetched lines are staged here rather than installed directly into the
//! L1-I, so that wrong-path or useless prefetches do not pollute the cache. A
//! demand hit promotes the line into the L1-I; unused lines age out FIFO.

use sim_core::CacheLine;
use std::collections::VecDeque;

/// A FIFO buffer of prefetched cache lines.
#[derive(Clone, Debug)]
pub struct LinePrefetchBuffer {
    lines: VecDeque<CacheLine>,
    capacity: usize,
    hits: u64,
    evicted_unused: u64,
}

impl LinePrefetchBuffer {
    /// Creates a buffer holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the prefetch buffer needs at least one entry");
        LinePrefetchBuffer {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            evicted_unused: 0,
        }
    }

    /// Number of lines currently buffered.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Demand hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lines evicted without ever being used.
    pub fn evicted_unused(&self) -> u64 {
        self.evicted_unused
    }

    /// `true` if `line` is buffered.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.lines.contains(&line)
    }

    /// Inserts a prefetched line. Returns `Some(true)` if an unused line was
    /// evicted to make room, `Some(false)` if inserted without eviction, and
    /// `None` if the line was already present.
    pub fn insert(&mut self, line: CacheLine) -> Option<bool> {
        if self.contains(line) {
            return None;
        }
        let mut evicted = false;
        if self.lines.len() == self.capacity {
            self.lines.pop_front();
            self.evicted_unused += 1;
            evicted = true;
        }
        self.lines.push_back(line);
        Some(evicted)
    }

    /// Removes `line` on a demand hit, returning `true` if it was present.
    pub fn take(&mut self, line: CacheLine) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Discards all buffered lines.
    pub fn clear(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut b = LinePrefetchBuffer::new(4);
        assert_eq!(b.insert(CacheLine(1)), Some(false));
        assert!(b.contains(CacheLine(1)));
        assert!(b.take(CacheLine(1)));
        assert!(!b.take(CacheLine(1)));
        assert_eq!(b.hits(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut b = LinePrefetchBuffer::new(4);
        assert_eq!(b.insert(CacheLine(1)), Some(false));
        assert_eq!(b.insert(CacheLine(1)), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fifo_eviction_counts_unused() {
        let mut b = LinePrefetchBuffer::new(2);
        b.insert(CacheLine(1));
        b.insert(CacheLine(2));
        assert_eq!(b.insert(CacheLine(3)), Some(true));
        assert!(!b.contains(CacheLine(1)));
        assert_eq!(b.evicted_unused(), 1);
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut b = LinePrefetchBuffer::new(2);
        b.insert(CacheLine(1));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = LinePrefetchBuffer::new(0);
    }
}
