//! L1-I prefetch buffer (64 entries in Table I).
//!
//! Prefetched lines are staged here rather than installed directly into the
//! L1-I, so that wrong-path or useless prefetches do not pollute the cache. A
//! demand hit promotes the line into the L1-I; unused lines age out FIFO.

use sim_core::{CacheLine, FxHashMap, OrderQueue};

/// A FIFO buffer of prefetched cache lines with O(1) membership.
///
/// `contains` and `take` used to scan the FIFO linearly on every demand
/// fetch; the buffer now keeps a hash index from line to the *generation* of
/// its live FIFO slot. A `take` simply drops the index entry, leaving a
/// tombstone in the [`OrderQueue`]; eviction and its amortised compaction
/// skip slots whose generation no longer matches the index, so FIFO eviction
/// order is exactly what the scan-based implementation produced.
#[derive(Clone, Debug)]
pub struct LinePrefetchBuffer {
    /// Insertion order with tombstone skipping.
    order: OrderQueue<CacheLine>,
    /// Live lines mapped to the generation of their slot in `order`.
    index: FxHashMap<CacheLine, u64>,
    next_generation: u64,
    capacity: usize,
    hits: u64,
    evicted_unused: u64,
}

impl LinePrefetchBuffer {
    /// Creates a buffer holding up to `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the prefetch buffer needs at least one entry");
        LinePrefetchBuffer {
            order: OrderQueue::new(2 * capacity),
            index: FxHashMap::default(),
            next_generation: 0,
            capacity,
            hits: 0,
            evicted_unused: 0,
        }
    }

    /// Number of lines currently buffered.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Capacity in lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Demand hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lines evicted without ever being used.
    pub fn evicted_unused(&self) -> u64 {
        self.evicted_unused
    }

    /// `true` if `line` is buffered.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.index.contains_key(&line)
    }

    /// Inserts a prefetched line. Returns `Some(true)` if an unused line was
    /// evicted to make room, `Some(false)` if inserted without eviction, and
    /// `None` if the line was already present.
    pub fn insert(&mut self, line: CacheLine) -> Option<bool> {
        if self.contains(line) {
            return None;
        }
        let mut evicted = false;
        if self.index.len() == self.capacity {
            let index = &self.index;
            if let Some(victim) = self
                .order
                .pop_oldest_live(|l, gen| index.get(l) == Some(&gen))
            {
                self.index.remove(&victim);
                self.evicted_unused += 1;
                evicted = true;
            }
        }
        let index = &self.index;
        self.order
            .maybe_compact(|l, gen| index.get(l) == Some(&gen));
        let generation = self.next_generation;
        self.next_generation += 1;
        self.order.push(line, generation);
        self.index.insert(line, generation);
        Some(evicted)
    }

    /// Removes `line` on a demand hit, returning `true` if it was present.
    pub fn take(&mut self, line: CacheLine) -> bool {
        if self.index.remove(&line).is_some() {
            self.hits += 1;
            true
        } else {
            false
        }
    }

    /// Discards all buffered lines.
    pub fn clear(&mut self) {
        self.order.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut b = LinePrefetchBuffer::new(4);
        assert_eq!(b.insert(CacheLine(1)), Some(false));
        assert!(b.contains(CacheLine(1)));
        assert!(b.take(CacheLine(1)));
        assert!(!b.take(CacheLine(1)));
        assert_eq!(b.hits(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut b = LinePrefetchBuffer::new(4);
        assert_eq!(b.insert(CacheLine(1)), Some(false));
        assert_eq!(b.insert(CacheLine(1)), None);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fifo_eviction_counts_unused() {
        let mut b = LinePrefetchBuffer::new(2);
        b.insert(CacheLine(1));
        b.insert(CacheLine(2));
        assert_eq!(b.insert(CacheLine(3)), Some(true));
        assert!(!b.contains(CacheLine(1)));
        assert_eq!(b.evicted_unused(), 1);
        assert_eq!(b.capacity(), 2);
    }

    #[test]
    fn reinserted_line_keeps_its_new_fifo_position() {
        let mut b = LinePrefetchBuffer::new(2);
        b.insert(CacheLine(1));
        b.insert(CacheLine(2));
        assert!(b.take(CacheLine(1)));
        b.insert(CacheLine(1)); // re-inserted: now the newest, not the oldest
        assert_eq!(b.insert(CacheLine(3)), Some(true));
        assert!(b.contains(CacheLine(1)), "re-inserted line must survive");
        assert!(
            !b.contains(CacheLine(2)),
            "oldest live line must be evicted"
        );
        assert!(b.contains(CacheLine(3)));
    }

    #[test]
    fn order_queue_stays_bounded_under_take_insert_churn() {
        let mut b = LinePrefetchBuffer::new(4);
        for i in 0..10_000u64 {
            b.insert(CacheLine(i));
            assert!(b.take(CacheLine(i)));
            assert!(
                b.order.slot_count() <= 2 * b.capacity() + 1,
                "stale slots must be compacted, got {}",
                b.order.slot_count()
            );
        }
        assert!(b.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut b = LinePrefetchBuffer::new(2);
        b.insert(CacheLine(1));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = LinePrefetchBuffer::new(0);
    }
}
