//! The instruction-side memory hierarchy seen by one core.
//!
//! [`InstructionHierarchy`] composes the L1-I tag store, the L1-I prefetch
//! buffer, outstanding-fill tracking (MSHRs), the shared LLC slice and main
//! memory into the single object the front-end simulator talks to. Demand
//! fetches and prefetch probes go through the same fill path, so in-flight
//! prefetches naturally shorten later demand misses — the effect the paper's
//! "stall cycles covered" metric is designed to capture.

use crate::prefetch_buffer::LinePrefetchBuffer;
use crate::set_assoc::SetAssocCache;
use sim_core::FxHashMap;
use sim_core::{CacheLine, Latency, MicroarchConfig};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Where a demand fetch was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HitLevel {
    /// Hit in the L1-I.
    L1,
    /// Hit in the L1-I prefetch buffer (the block was prefetched in time).
    PrefetchBuffer,
    /// The block was still in flight; the demand fetch waits for the
    /// remaining fill latency (a partially covered miss).
    InFlight,
    /// Served by the LLC.
    Llc,
    /// Served by main memory.
    Memory,
}

/// Outcome of a demand fetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandOutcome {
    /// Cycles until the fetch data is available.
    pub latency: Latency,
    /// Which level satisfied the access.
    pub level: HitLevel,
}

/// Outstanding (in-flight) prefetch fills. Demand misses are charged their
/// full latency at access time, so only prefetch fills need tracking.
///
/// Two structures share the work on the hot path: a `HashMap` answering O(1)
/// membership/ready-time queries, and a min-heap ordered by `(ready_at,
/// line)` from which completed fills drain in deterministic completion order
/// without the per-access `Vec`-collect-and-sort the previous implementation
/// paid. Fills promoted out of the map early (demand hits on in-flight
/// lines) leave stale heap entries behind; the drain loop detects them by
/// comparing the popped `ready_at` against the map and skips them.
#[derive(Clone, Debug)]
struct FillQueue {
    ready_at: FxHashMap<CacheLine, u64>,
    heap: BinaryHeap<Reverse<(u64, CacheLine)>>,
    /// Conservative lower bound on the earliest completion in the heap
    /// (`u64::MAX` when the heap is known empty): the drain check that runs
    /// on every demand fetch and prefetch probe is then one compare instead
    /// of a heap peek. Early removals only raise the true minimum, so a
    /// stale bound errs low — the slow path re-establishes it.
    next_ready: u64,
}

impl Default for FillQueue {
    fn default() -> Self {
        FillQueue {
            ready_at: FxHashMap::default(),
            heap: BinaryHeap::new(),
            next_ready: u64::MAX,
        }
    }
}

impl FillQueue {
    fn len(&self) -> usize {
        self.ready_at.len()
    }

    fn contains(&self, line: CacheLine) -> bool {
        self.ready_at.contains_key(&line)
    }

    fn get(&self, line: CacheLine) -> Option<u64> {
        self.ready_at.get(&line).copied()
    }

    fn insert(&mut self, line: CacheLine, ready_at: u64) {
        self.ready_at.insert(line, ready_at);
        self.heap.push(Reverse((ready_at, line)));
        self.next_ready = self.next_ready.min(ready_at);
    }

    fn remove(&mut self, line: CacheLine) {
        // The heap entry goes stale and is skipped when popped.
        self.ready_at.remove(&line);
    }

    /// Pops the next fill completing at or before `now`, in `(ready_at,
    /// line)` order — the same order the previous sort established.
    fn pop_ready(&mut self, now: u64) -> Option<CacheLine> {
        if now < self.next_ready {
            return None;
        }
        while let Some(&Reverse((ready_at, line))) = self.heap.peek() {
            if ready_at > now {
                self.next_ready = ready_at;
                return None;
            }
            self.heap.pop();
            if self.ready_at.get(&line) == Some(&ready_at) {
                self.ready_at.remove(&line);
                return Some(line);
            }
        }
        self.next_ready = u64::MAX;
        None
    }
}

/// Statistics of the instruction hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Demand fetches that hit in the L1-I.
    pub l1_hits: u64,
    /// Demand fetches that hit in the prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// Demand fetches that found their line already in flight.
    pub inflight_hits: u64,
    /// Demand fetches served by the LLC.
    pub llc_fills: u64,
    /// Demand fetches served by main memory.
    pub memory_fills: u64,
    /// Prefetch probes issued to the lower levels.
    pub prefetches_issued: u64,
    /// Prefetch probes dropped because the line was already present or in
    /// flight.
    pub prefetches_redundant: u64,
    /// Prefetched lines that were evicted from the prefetch buffer without
    /// ever being used.
    pub prefetches_unused: u64,
}

impl HierarchyStats {
    /// Total demand fetches observed.
    pub fn demand_fetches(&self) -> u64 {
        self.l1_hits
            + self.prefetch_buffer_hits
            + self.inflight_hits
            + self.llc_fills
            + self.memory_fills
    }

    /// Demand fetches that had to wait on a fill (full or partial miss).
    pub fn demand_misses(&self) -> u64 {
        self.inflight_hits + self.llc_fills + self.memory_fills
    }
}

/// The per-core instruction memory hierarchy.
#[derive(Clone, Debug)]
pub struct InstructionHierarchy {
    l1i: SetAssocCache,
    prefetch_buffer: LinePrefetchBuffer,
    llc: SetAssocCache,
    outstanding: FillQueue,
    l1_latency: Latency,
    llc_latency: Latency,
    memory_latency: Latency,
    perfect_l1i: bool,
    stats: HierarchyStats,
}

impl InstructionHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &MicroarchConfig) -> Self {
        InstructionHierarchy {
            l1i: SetAssocCache::new(config.l1i_lines(), config.l1i_ways),
            prefetch_buffer: LinePrefetchBuffer::new(config.l1i_prefetch_buffer_entries),
            llc: SetAssocCache::new(config.llc_lines(), config.llc_ways),
            outstanding: FillQueue::default(),
            l1_latency: config.l1i_latency,
            llc_latency: config.llc_round_trip(),
            memory_latency: config.memory_latency(),
            perfect_l1i: config.perfect.perfect_l1i,
            stats: HierarchyStats::default(),
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// L1-I hit latency in cycles.
    pub fn l1_latency(&self) -> Latency {
        self.l1_latency
    }

    /// Completes any outstanding fills that are ready at `now`, installing
    /// them into the L1-I (demand fills) or the prefetch buffer (prefetches).
    pub fn drain_completed_fills(&mut self, now: u64) {
        // Install in completion order (line id breaking ties), which the fill
        // queue's heap yields directly: the prefetch buffer is a bounded
        // FIFO, so the install order decides who survives eviction, and it
        // must not vary between otherwise-identical runs.
        while let Some(line) = self.outstanding.pop_ready(now) {
            if let Some(evicted_unused) = self.prefetch_buffer.insert(line) {
                if evicted_unused {
                    self.stats.prefetches_unused += 1;
                }
            }
        }
    }

    /// Number of fills currently outstanding.
    pub fn outstanding_fills(&self) -> usize {
        self.outstanding.len()
    }

    /// Performs a demand instruction fetch of `line` at time `now`.
    ///
    /// The returned latency is the number of cycles until the instructions in
    /// the line are available to the fetch engine.
    pub fn demand_fetch(&mut self, line: CacheLine, now: u64) -> DemandOutcome {
        self.drain_completed_fills(now);

        if self.perfect_l1i {
            self.stats.l1_hits += 1;
            return DemandOutcome {
                latency: self.l1_latency,
                level: HitLevel::L1,
            };
        }

        if self.l1i.access(line) {
            self.stats.l1_hits += 1;
            return DemandOutcome {
                latency: self.l1_latency,
                level: HitLevel::L1,
            };
        }

        // Prefetch buffer hit: the line moves into the L1-I (§IV-A).
        if self.prefetch_buffer.take(line) {
            self.l1i.insert(line);
            self.stats.prefetch_buffer_hits += 1;
            return DemandOutcome {
                latency: self.l1_latency,
                level: HitLevel::PrefetchBuffer,
            };
        }

        // In-flight fill: wait out the remaining latency, then treat the line
        // as a demand fill into the L1-I.
        if let Some(ready_at) = self.outstanding.get(line) {
            let remaining = ready_at.saturating_sub(now).max(1);
            self.outstanding.remove(line);
            self.l1i.insert(line);
            self.stats.inflight_hits += 1;
            return DemandOutcome {
                latency: remaining + self.l1_latency,
                level: HitLevel::InFlight,
            };
        }

        // Full miss: LLC or memory.
        let (latency, level) = if self.llc.access(line) {
            self.stats.llc_fills += 1;
            (self.llc_latency, HitLevel::Llc)
        } else {
            self.llc.insert(line);
            self.stats.memory_fills += 1;
            (self.memory_latency, HitLevel::Memory)
        };
        self.l1i.insert(line);
        DemandOutcome {
            latency: latency + self.l1_latency,
            level,
        }
    }

    /// Issues a prefetch probe for `line` at time `now` (§IV-A): if the line
    /// is already in the L1-I, the prefetch buffer, or in flight, nothing
    /// happens; otherwise a fill is started into the prefetch buffer.
    ///
    /// Returns `true` if a new fill was issued.
    pub fn prefetch_probe(&mut self, line: CacheLine, now: u64) -> bool {
        self.drain_completed_fills(now);
        if self.perfect_l1i
            || self.l1i.contains(line)
            || self.prefetch_buffer.contains(line)
            || self.outstanding.contains(line)
        {
            self.stats.prefetches_redundant += 1;
            return false;
        }
        let latency = if self.llc.contains(line) {
            self.llc_latency
        } else {
            self.llc.insert(line);
            self.memory_latency
        };
        self.outstanding.insert(line, now + latency);
        self.stats.prefetches_issued += 1;
        true
    }

    /// Returns `true` if `line` would hit in the L1-I or prefetch buffer
    /// right now (used by Boomerang's BTB miss probe, which prefers to
    /// predecode a block already present in the L1-I).
    pub fn present(&self, line: CacheLine) -> bool {
        self.perfect_l1i || self.l1i.contains(line) || self.prefetch_buffer.contains(line)
    }

    /// Latency of fetching `line` for a BTB-miss probe *without* disturbing
    /// demand statistics: present lines cost an L1-I access, absent lines
    /// cost an LLC (or memory) round trip and are installed when they return.
    pub fn btb_probe_fetch(&mut self, line: CacheLine, now: u64) -> Latency {
        self.drain_completed_fills(now);
        if self.present(line) {
            return self.l1_latency;
        }
        if let Some(ready_at) = self.outstanding.get(line) {
            return ready_at.saturating_sub(now).max(1) + self.l1_latency;
        }
        let latency = if self.llc.contains(line) {
            self.llc_latency
        } else {
            self.llc.insert(line);
            self.memory_latency
        };
        // The probe's fill lands in the prefetch buffer so that the
        // subsequent demand fetch of the same block hits.
        self.outstanding.insert(line, now + latency);
        self.stats.prefetches_issued += 1;
        latency + self.l1_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::NocModel;

    fn config() -> MicroarchConfig {
        MicroarchConfig::hpca17().with_noc(NocModel::Fixed(30))
    }

    #[test]
    fn cold_fetch_goes_to_memory_then_hits_in_l1() {
        let mut h = InstructionHierarchy::new(&config());
        let first = h.demand_fetch(CacheLine(100), 0);
        assert_eq!(first.level, HitLevel::Memory);
        assert_eq!(first.latency, 90 + 2);
        let second = h.demand_fetch(CacheLine(100), 200);
        assert_eq!(second.level, HitLevel::L1);
        assert_eq!(second.latency, 2);
    }

    #[test]
    fn llc_serves_lines_evicted_from_l1() {
        let cfg = config();
        let mut h = InstructionHierarchy::new(&cfg);
        // Fill well beyond L1-I capacity (512 lines) so early lines evict.
        for i in 0..2000u64 {
            h.demand_fetch(CacheLine(i), i * 10);
        }
        let outcome = h.demand_fetch(CacheLine(0), 1_000_000);
        assert_eq!(outcome.level, HitLevel::Llc);
        assert_eq!(outcome.latency, 30 + 2);
    }

    #[test]
    fn timely_prefetch_converts_miss_into_prefetch_buffer_hit() {
        let mut h = InstructionHierarchy::new(&config());
        // Warm the LLC with the line so the prefetch costs an LLC round trip.
        h.demand_fetch(CacheLine(7), 0);
        // Evict it from L1 by filling other lines.
        for i in 1000..3000u64 {
            h.demand_fetch(CacheLine(i), 10 + i);
        }
        assert!(h.prefetch_probe(CacheLine(7), 10_000));
        // Demand arrives well after the 30-cycle LLC latency.
        let outcome = h.demand_fetch(CacheLine(7), 10_100);
        assert_eq!(outcome.level, HitLevel::PrefetchBuffer);
        assert_eq!(outcome.latency, 2);
        assert_eq!(h.stats().prefetch_buffer_hits, 1);
    }

    #[test]
    fn late_prefetch_gives_partial_coverage() {
        let mut h = InstructionHierarchy::new(&config());
        h.demand_fetch(CacheLine(9), 0);
        for i in 1000..3000u64 {
            h.demand_fetch(CacheLine(i), 10 + i);
        }
        assert!(h.prefetch_probe(CacheLine(9), 20_000));
        // Demand arrives only 10 cycles later: it waits the remaining 20.
        let outcome = h.demand_fetch(CacheLine(9), 20_010);
        assert_eq!(outcome.level, HitLevel::InFlight);
        assert_eq!(outcome.latency, 20 + 2);
    }

    #[test]
    fn redundant_prefetches_are_dropped() {
        let mut h = InstructionHierarchy::new(&config());
        h.demand_fetch(CacheLine(3), 0);
        assert!(!h.prefetch_probe(CacheLine(3), 10));
        assert!(h.prefetch_probe(CacheLine(4), 10));
        assert!(
            !h.prefetch_probe(CacheLine(4), 11),
            "in-flight probe is redundant"
        );
        assert_eq!(h.stats().prefetches_redundant, 2);
        assert_eq!(h.stats().prefetches_issued, 1);
    }

    #[test]
    fn perfect_l1i_never_misses() {
        let mut cfg = config();
        cfg.perfect.perfect_l1i = true;
        let mut h = InstructionHierarchy::new(&cfg);
        for i in 0..100u64 {
            let o = h.demand_fetch(CacheLine(i * 97), i);
            assert_eq!(o.level, HitLevel::L1);
            assert_eq!(o.latency, 2);
        }
        assert_eq!(h.stats().demand_misses(), 0);
    }

    #[test]
    fn btb_probe_fetch_latencies() {
        let mut h = InstructionHierarchy::new(&config());
        h.demand_fetch(CacheLine(11), 0);
        // Present in L1: costs an L1 access.
        assert_eq!(h.btb_probe_fetch(CacheLine(11), 100), 2);
        // Absent: LLC/memory latency, and the fill later satisfies a demand.
        let lat = h.btb_probe_fetch(CacheLine(555), 100);
        assert_eq!(lat, 90 + 2);
        let outcome = h.demand_fetch(CacheLine(555), 100 + 200);
        assert_eq!(outcome.level, HitLevel::PrefetchBuffer);
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let mut h = InstructionHierarchy::new(&config());
        for i in 0..50u64 {
            h.demand_fetch(CacheLine(i), i * 5);
        }
        for i in 0..50u64 {
            h.demand_fetch(CacheLine(i), 1000 + i * 5);
        }
        let s = h.stats();
        assert_eq!(s.demand_fetches(), 100);
        assert_eq!(s.demand_misses(), 50);
        assert_eq!(s.l1_hits, 50);
    }
}
