//! Generic set-associative cache of instruction lines (tag store only).
//!
//! The simulator only needs to know *whether* a line is resident and what the
//! access latency is; data contents never matter for front-end studies, so
//! the cache tracks tags with true-LRU replacement and hit/miss statistics.

use sim_core::CacheLine;

/// A set-associative tag store with true LRU replacement.
///
/// # Example
///
/// ```
/// use cache::SetAssocCache;
/// use sim_core::CacheLine;
///
/// // 32 KB / 64 B lines / 2 ways = 256 sets.
/// let mut l1i = SetAssocCache::new(512, 2);
/// assert!(!l1i.contains(CacheLine(7)));
/// l1i.insert(CacheLine(7));
/// assert!(l1i.contains(CacheLine(7)));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// All ways of all sets in one flat allocation, stride-indexed: set `s`
    /// occupies `slots[s * ways .. (s + 1) * ways]`. A `last_use` of zero
    /// marks an empty way (the stamp is pre-incremented, so live ways always
    /// carry a non-zero stamp); within a set, ways fill lowest-index-first,
    /// which preserves the insertion-order iteration the previous
    /// `Vec<Vec<_>>` representation had.
    slots: Box<[WayState]>,
    num_sets: usize,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Copy, Debug)]
struct WayState {
    line: CacheLine,
    last_use: u64,
}

impl WayState {
    const EMPTY: WayState = WayState {
        line: CacheLine(0),
        last_use: 0,
    };

    fn is_occupied(&self) -> bool {
        self.last_use != 0
    }

    fn holds(&self, line: CacheLine) -> bool {
        self.last_use != 0 && self.line == line
    }
}

impl SetAssocCache {
    /// Creates a cache with `lines` total line slots and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a power of two, `ways` is zero, or `ways`
    /// does not divide `lines`.
    pub fn new(lines: u64, ways: u64) -> Self {
        assert!(
            lines.is_power_of_two(),
            "cache lines must be a power of two"
        );
        assert!(
            ways > 0 && lines.is_multiple_of(ways),
            "ways must divide lines"
        );
        let num_sets = (lines / ways) as usize;
        SetAssocCache {
            slots: vec![WayState::EMPTY; lines as usize].into_boxed_slice(),
            num_sets,
            ways: ways as usize,
            set_mask: num_sets as u64 - 1,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> u64 {
        (self.num_sets * self.ways) as u64
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|w| w.is_occupied()).count()
    }

    /// `true` if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demand hits recorded by [`SetAssocCache::access`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses recorded by [`SetAssocCache::access`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The flat-slice range holding `line`'s set.
    fn set_range(&self, line: CacheLine) -> std::ops::Range<usize> {
        let set = (line.0 & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Checks residence without touching LRU state or statistics.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.slots[self.set_range(line)]
            .iter()
            .any(|w| w.holds(line))
    }

    /// Accesses `line`: returns `true` on a hit (updating LRU and
    /// statistics). A miss does *not* insert the line; the caller decides
    /// when the fill arrives.
    pub fn access(&mut self, line: CacheLine) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line);
        for way in &mut self.slots[range] {
            if way.holds(line) {
                way.last_use = stamp;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Inserts `line`, evicting the LRU line of its set if necessary.
    /// Returns the evicted line, if any.
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line);
        let set = &mut self.slots[range];
        if let Some(way) = set.iter_mut().find(|w| w.holds(line)) {
            way.last_use = stamp;
            return None;
        }
        if let Some(empty) = set.iter_mut().find(|w| !w.is_occupied()) {
            *empty = WayState {
                line,
                last_use: stamp,
            };
            return None;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.last_use)
            .expect("full set always has a victim");
        let evicted = victim.line;
        *victim = WayState {
            line,
            last_use: stamp,
        };
        Some(evicted)
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        self.slots.fill(WayState::EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_records_hits_and_misses() {
        let mut c = SetAssocCache::new(8, 2);
        assert!(!c.access(CacheLine(1)));
        c.insert(CacheLine(1));
        assert!(c.access(CacheLine(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn miss_does_not_install() {
        let mut c = SetAssocCache::new(8, 2);
        assert!(!c.access(CacheLine(5)));
        assert!(!c.contains(CacheLine(5)));
    }

    #[test]
    fn lru_eviction() {
        // 4 sets x 2 ways; lines 0, 4, 8 map to set 0.
        let mut c = SetAssocCache::new(8, 2);
        c.insert(CacheLine(0));
        c.insert(CacheLine(4));
        assert!(c.access(CacheLine(0)));
        let evicted = c.insert(CacheLine(8));
        assert_eq!(evicted, Some(CacheLine(4)));
        assert!(c.contains(CacheLine(0)));
        assert!(!c.contains(CacheLine(4)));
        assert!(c.contains(CacheLine(8)));
    }

    #[test]
    fn reinsert_refreshes_lru_without_eviction() {
        let mut c = SetAssocCache::new(8, 2);
        c.insert(CacheLine(0));
        c.insert(CacheLine(4));
        assert_eq!(c.insert(CacheLine(0)), None);
        assert_eq!(c.len(), 2);
        let evicted = c.insert(CacheLine(8));
        assert_eq!(evicted, Some(CacheLine(4)));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = SetAssocCache::new(16, 4);
        for i in 0..200 {
            c.insert(CacheLine(i));
        }
        assert!(c.len() as u64 <= c.capacity());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = SetAssocCache::new(1000, 2);
    }
}
