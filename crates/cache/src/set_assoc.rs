//! Generic set-associative cache of instruction lines (tag store only).
//!
//! The simulator only needs to know *whether* a line is resident and what the
//! access latency is; data contents never matter for front-end studies, so
//! the cache tracks tags with true-LRU replacement and hit/miss statistics.

use sim_core::CacheLine;

/// Sentinel marking an empty way in the tag array. Instruction lines are
/// derived from text-segment addresses and can never reach `u64::MAX`, so
/// the sentinel never collides with a real line.
const EMPTY_LINE: u64 = u64::MAX;

/// A set-associative tag store with true LRU replacement.
///
/// # Example
///
/// ```
/// use cache::SetAssocCache;
/// use sim_core::CacheLine;
///
/// // 32 KB / 64 B lines / 2 ways = 256 sets.
/// let mut l1i = SetAssocCache::new(512, 2);
/// assert!(!l1i.contains(CacheLine(7)));
/// l1i.insert(CacheLine(7));
/// assert!(l1i.contains(CacheLine(7)));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// Way tags in one flat allocation, stride-indexed: set `s` occupies
    /// `lines[s * ways .. (s + 1) * ways]`. The tags are split SoA-style
    /// from the LRU stamps so the way scan every access performs touches a
    /// contiguous run of bare `u64` tags (a whole 4-way set is 32 bytes) and
    /// needs no occupancy branch: an empty way holds [`EMPTY_LINE`], which
    /// never equals a probed line. `last_use` is only read on a hit and by
    /// the replacement policy. Within a set, ways fill lowest-index-first,
    /// preserving the iteration order of the original AoS representation;
    /// the stamp is pre-incremented, so live ways carry non-zero stamps and
    /// `last_use == 0` stays in lockstep with `lines == EMPTY_LINE`.
    lines: Box<[u64]>,
    last_use: Box<[u64]>,
    num_sets: usize,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache with `lines` total line slots and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a power of two, `ways` is zero, or `ways`
    /// does not divide `lines`.
    pub fn new(lines: u64, ways: u64) -> Self {
        assert!(
            lines.is_power_of_two(),
            "cache lines must be a power of two"
        );
        assert!(
            ways > 0 && lines.is_multiple_of(ways),
            "ways must divide lines"
        );
        let num_sets = (lines / ways) as usize;
        SetAssocCache {
            lines: vec![EMPTY_LINE; lines as usize].into_boxed_slice(),
            last_use: vec![0; lines as usize].into_boxed_slice(),
            num_sets,
            ways: ways as usize,
            set_mask: num_sets as u64 - 1,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> u64 {
        (self.num_sets * self.ways) as u64
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines.iter().filter(|&&l| l != EMPTY_LINE).count()
    }

    /// `true` if the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Demand hits recorded by [`SetAssocCache::access`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses recorded by [`SetAssocCache::access`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The flat-slice range holding `line`'s set.
    fn set_range(&self, line: CacheLine) -> std::ops::Range<usize> {
        let set = (line.0 & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Checks residence without touching LRU state or statistics.
    pub fn contains(&self, line: CacheLine) -> bool {
        self.lines[self.set_range(line)].contains(&line.0)
    }

    /// Accesses `line`: returns `true` on a hit (updating LRU and
    /// statistics). A miss does *not* insert the line; the caller decides
    /// when the fill arrives.
    pub fn access(&mut self, line: CacheLine) -> bool {
        self.stamp += 1;
        let range = self.set_range(line);
        match self.lines[range.clone()].iter().position(|&l| l == line.0) {
            Some(way) => {
                self.last_use[range.start + way] = self.stamp;
                self.hits += 1;
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    /// Inserts `line`, evicting the LRU line of its set if necessary.
    /// Returns the evicted line, if any.
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        debug_assert_ne!(line.0, EMPTY_LINE, "sentinel line is not insertable");
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line);
        let set = &mut self.lines[range.clone()];
        // Resident or empty way first (lowest index wins, as before).
        if let Some(way) = set.iter().position(|&l| l == line.0 || l == EMPTY_LINE) {
            set[way] = line.0;
            self.last_use[range.start + way] = stamp;
            return None;
        }
        // Full set: evict the least recently used way.
        let victim = self.last_use[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("full set always has a victim")
            .0;
        let evicted = self.lines[range.start + victim];
        self.lines[range.start + victim] = line.0;
        self.last_use[range.start + victim] = stamp;
        Some(CacheLine(evicted))
    }

    /// Removes every line.
    pub fn clear(&mut self) {
        self.lines.fill(EMPTY_LINE);
        self.last_use.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_records_hits_and_misses() {
        let mut c = SetAssocCache::new(8, 2);
        assert!(!c.access(CacheLine(1)));
        c.insert(CacheLine(1));
        assert!(c.access(CacheLine(1)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn miss_does_not_install() {
        let mut c = SetAssocCache::new(8, 2);
        assert!(!c.access(CacheLine(5)));
        assert!(!c.contains(CacheLine(5)));
    }

    #[test]
    fn lru_eviction() {
        // 4 sets x 2 ways; lines 0, 4, 8 map to set 0.
        let mut c = SetAssocCache::new(8, 2);
        c.insert(CacheLine(0));
        c.insert(CacheLine(4));
        assert!(c.access(CacheLine(0)));
        let evicted = c.insert(CacheLine(8));
        assert_eq!(evicted, Some(CacheLine(4)));
        assert!(c.contains(CacheLine(0)));
        assert!(!c.contains(CacheLine(4)));
        assert!(c.contains(CacheLine(8)));
    }

    #[test]
    fn reinsert_refreshes_lru_without_eviction() {
        let mut c = SetAssocCache::new(8, 2);
        c.insert(CacheLine(0));
        c.insert(CacheLine(4));
        assert_eq!(c.insert(CacheLine(0)), None);
        assert_eq!(c.len(), 2);
        let evicted = c.insert(CacheLine(8));
        assert_eq!(evicted, Some(CacheLine(4)));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = SetAssocCache::new(16, 4);
        for i in 0..200 {
            c.insert(CacheLine(i));
        }
        assert!(c.len() as u64 <= c.capacity());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = SetAssocCache::new(1000, 2);
    }
}
