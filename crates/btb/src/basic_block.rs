//! Basic-block-oriented BTB (Yeh & Patt organisation used by FDIP, Boomerang
//! and Confluence).

use crate::{BtbEntry, BtbLookup};
use sim_core::Addr;

/// A set-associative, basic-block-oriented BTB with LRU replacement.
///
/// Entries are tagged with the starting address of a basic block; a failed
/// lookup is therefore a genuine BTB miss rather than "not a branch", which
/// is the property Boomerang's BTB-miss detection relies on (§IV-B).
///
/// # Example
///
/// ```
/// use btb::{BasicBlockBtb, BtbEntry};
/// use sim_core::{Addr, BranchInfo, BranchKind};
///
/// let mut btb = BasicBlockBtb::new(2048, 4);
/// let term = BranchInfo::direct(Addr::new(0x101c), BranchKind::DirectJump, Addr::new(0x4000));
/// btb.insert(BtbEntry::from_block(Addr::new(0x1000), 8, term));
/// assert!(btb.lookup(Addr::new(0x1000)).is_hit());
/// assert!(!btb.lookup(Addr::new(0x1004)).is_hit());
/// ```
#[derive(Clone, Debug)]
pub struct BasicBlockBtb {
    /// Way tags in one flat allocation, stride-indexed: set `s` occupies
    /// `starts[s * ways .. (s + 1) * ways]`. Tags are scanned on every BPU
    /// lookup, so the scan array is SoA-split down to the bare block-start
    /// words (8 bytes a way — a whole 4-way set fits half a cache line) with
    /// no occupancy branch: empty ways hold [`EMPTY_START`], which no real
    /// basic block can start at. The LRU stamps live in the parallel
    /// `last_use` array (read only on hits and by replacement; zero for
    /// empty ways, pre-incremented so live ways are non-zero), and the full
    /// entries in `entries`, touched only on a hit. Ways fill
    /// lowest-index-first, preserving the iteration order of the original
    /// `Vec<Vec<_>>` representation.
    starts: Box<[u64]>,
    last_use: Box<[u64]>,
    entries: Box<[BtbEntry]>,
    num_sets: usize,
    ways: usize,
    set_mask: u64,
    lookups: u64,
    hits: u64,
    insertions: u64,
    stamp: u64,
}

/// Sentinel marking an empty way in the tag array: no basic block can start
/// at the top of the address space, so the sentinel never matches a lookup.
const EMPTY_START: u64 = u64::MAX;

const FILLER_ENTRY: BtbEntry = BtbEntry {
    block_start: Addr::new(0),
    block_size: 1,
    kind: sim_core::BranchKind::DirectJump,
    target: None,
};

impl BasicBlockBtb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn new(entries: u64, ways: u64) -> Self {
        assert!(
            entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let num_sets = (entries / ways) as usize;
        BasicBlockBtb {
            starts: vec![EMPTY_START; entries as usize].into_boxed_slice(),
            last_use: vec![0; entries as usize].into_boxed_slice(),
            entries: vec![FILLER_ENTRY; entries as usize].into_boxed_slice(),
            num_sets,
            ways: ways as usize,
            set_mask: num_sets as u64 - 1,
            lookups: 0,
            hits: 0,
            insertions: 0,
            stamp: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> u64 {
        (self.num_sets * self.ways) as u64
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.starts.iter().filter(|&&s| s != EMPTY_START).count()
    }

    /// `true` if the BTB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss ratio observed so far.
    pub fn miss_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            1.0 - self.hits as f64 / self.lookups as f64
        }
    }

    /// Index of the first way of the set holding `block_start`.
    fn set_base(&self, block_start: Addr) -> usize {
        ((block_start.raw() >> 2) & self.set_mask) as usize * self.ways
    }

    /// Way index of `block_start` within its set, if resident.
    fn find_way(&self, block_start: Addr) -> Option<usize> {
        let base = self.set_base(block_start);
        self.starts[base..base + self.ways]
            .iter()
            .position(|&s| s == block_start.raw())
            .map(|i| base + i)
    }

    /// Looks up the entry for the basic block starting at `block_start`.
    pub fn lookup(&mut self, block_start: Addr) -> BtbLookup {
        self.lookups += 1;
        self.stamp += 1;
        match self.find_way(block_start) {
            Some(way) => {
                self.last_use[way] = self.stamp;
                self.hits += 1;
                BtbLookup::Hit(self.entries[way])
            }
            None => BtbLookup::Miss,
        }
    }

    /// Checks for an entry without updating statistics or LRU state (used by
    /// prefetchers probing the BTB).
    pub fn probe(&self, block_start: Addr) -> Option<BtbEntry> {
        self.find_way(block_start).map(|way| self.entries[way])
    }

    /// Inserts or updates an entry, evicting the LRU way of its set if full.
    pub fn insert(&mut self, entry: BtbEntry) {
        debug_assert_ne!(entry.block_start.raw(), EMPTY_START);
        self.insertions += 1;
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(way) = self.find_way(entry.block_start) {
            self.entries[way] = entry;
            self.last_use[way] = stamp;
            return;
        }
        let base = self.set_base(entry.block_start);
        let set = &self.starts[base..base + self.ways];
        let way = match set.iter().position(|&s| s == EMPTY_START) {
            Some(empty) => base + empty,
            None => {
                let victim = self.last_use[base..base + self.ways]
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &t)| t)
                    .expect("a full set always has a victim")
                    .0;
                base + victim
            }
        };
        self.starts[way] = entry.block_start.raw();
        self.last_use[way] = stamp;
        self.entries[way] = entry;
    }

    /// Updates the stored target of an existing entry (used when an indirect
    /// branch resolves to a new target). Returns `true` if the entry existed.
    pub fn update_target(&mut self, block_start: Addr, target: Addr) -> bool {
        match self.find_way(block_start) {
            Some(way) => {
                self.entries[way].target = Some(target);
                true
            }
            None => false,
        }
    }

    /// Removes every entry (used between experiment phases).
    pub fn clear(&mut self) {
        self.starts.fill(EMPTY_START);
        self.last_use.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BranchInfo, BranchKind};

    fn entry(start: u64, size: u64, target: u64) -> BtbEntry {
        let term = BranchInfo::direct(
            Addr::new(start + (size - 1) * 4),
            BranchKind::Conditional,
            Addr::new(target),
        );
        BtbEntry::from_block(Addr::new(start), size, term)
    }

    #[test]
    fn insert_then_hit() {
        let mut btb = BasicBlockBtb::new(64, 4);
        btb.insert(entry(0x1000, 4, 0x2000));
        let hit = btb.lookup(Addr::new(0x1000));
        assert!(hit.is_hit());
        assert_eq!(hit.entry().unwrap().target, Some(Addr::new(0x2000)));
        assert!(!btb.lookup(Addr::new(0x1010)).is_hit());
        assert_eq!(btb.lookups(), 2);
        assert_eq!(btb.hits(), 1);
        assert!((btb.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probe_does_not_disturb_statistics() {
        let mut btb = BasicBlockBtb::new(64, 4);
        btb.insert(entry(0x1000, 4, 0x2000));
        assert!(btb.probe(Addr::new(0x1000)).is_some());
        assert!(btb.probe(Addr::new(0x3000)).is_none());
        assert_eq!(btb.lookups(), 0);
    }

    #[test]
    fn reinsertion_updates_in_place() {
        let mut btb = BasicBlockBtb::new(64, 4);
        btb.insert(entry(0x1000, 4, 0x2000));
        btb.insert(entry(0x1000, 4, 0x3000));
        assert_eq!(btb.len(), 1);
        assert_eq!(
            btb.lookup(Addr::new(0x1000)).entry().unwrap().target,
            Some(Addr::new(0x3000))
        );
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // Direct-mapped sets of 2 ways: force conflicts within one set.
        let mut btb = BasicBlockBtb::new(8, 2);
        let num_sets = 4u64;
        // Three blocks mapping to the same set (stride = sets * 4 bytes).
        let stride = num_sets * 4;
        let a = 0x1000;
        let b = a + stride;
        let c = b + stride;
        btb.insert(entry(a, 2, 0x9000));
        btb.insert(entry(b, 2, 0x9000));
        // Touch `a` so `b` becomes LRU.
        assert!(btb.lookup(Addr::new(a)).is_hit());
        btb.insert(entry(c, 2, 0x9000));
        assert!(
            btb.lookup(Addr::new(a)).is_hit(),
            "recently used entry must survive"
        );
        assert!(
            !btb.lookup(Addr::new(b)).is_hit(),
            "LRU entry must be evicted"
        );
        assert!(btb.lookup(Addr::new(c)).is_hit());
    }

    #[test]
    fn capacity_is_respected() {
        let mut btb = BasicBlockBtb::new(32, 4);
        for i in 0..100 {
            btb.insert(entry(0x1000 + i * 8, 2, 0x9000));
        }
        assert!(btb.len() as u64 <= btb.capacity());
        assert_eq!(btb.capacity(), 32);
    }

    #[test]
    fn update_target_for_indirect_branches() {
        let mut btb = BasicBlockBtb::new(64, 4);
        let term = BranchInfo::indirect(Addr::new(0x100c), BranchKind::IndirectCall);
        btb.insert(BtbEntry::from_block(Addr::new(0x1000), 4, term));
        assert_eq!(btb.probe(Addr::new(0x1000)).unwrap().target, None);
        assert!(btb.update_target(Addr::new(0x1000), Addr::new(0x7000)));
        assert_eq!(
            btb.probe(Addr::new(0x1000)).unwrap().target,
            Some(Addr::new(0x7000))
        );
        assert!(!btb.update_target(Addr::new(0x2000), Addr::new(0x7000)));
    }

    #[test]
    fn clear_empties_the_btb() {
        let mut btb = BasicBlockBtb::new(64, 4);
        btb.insert(entry(0x1000, 4, 0x2000));
        assert!(!btb.is_empty());
        btb.clear();
        assert!(btb.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_capacity() {
        let _ = BasicBlockBtb::new(1000, 4);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn rejects_bad_associativity() {
        let _ = BasicBlockBtb::new(1024, 3);
    }
}
