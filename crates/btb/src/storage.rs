//! Storage-cost model for BTBs and related front-end structures (§VI-D).
//!
//! The paper's cost comparison uses SPARC-style field widths: 46-bit virtual
//! addresses (tags), 30-bit target offsets, 3-bit branch type and 5-bit basic
//! block size. These helpers compute the per-structure costs quoted in the
//! paper: 540 bytes of additional state for Boomerang versus hundreds of
//! kilobytes for the prior techniques.

/// Width of an address tag in bits (46-bit virtual address space).
pub const TAG_BITS: u64 = 46;
/// Width of a stored branch target in bits (maximum offset in SPARC).
pub const TARGET_BITS: u64 = 30;
/// Width of the branch-type field in bits.
pub const BRANCH_TYPE_BITS: u64 = 3;
/// Width of the basic-block size field in bits.
pub const BLOCK_SIZE_BITS: u64 = 5;

/// Storage of one basic-block BTB entry in bits.
pub const fn bb_btb_entry_bits() -> u64 {
    TAG_BITS + TARGET_BITS + BRANCH_TYPE_BITS + BLOCK_SIZE_BITS
}

/// Storage of a basic-block BTB with `entries` entries, in bytes.
pub const fn bb_btb_bytes(entries: u64) -> u64 {
    entries * bb_btb_entry_bits() / 8
}

/// Storage of one FTQ entry in bits: basic-block start address plus size
/// (§VI-D: 46 + 5 bits).
pub const fn ftq_entry_bits() -> u64 {
    TAG_BITS + BLOCK_SIZE_BITS
}

/// Storage of an FTQ with `entries` entries, in bytes (the paper quotes 204
/// bytes for 32 entries).
pub const fn ftq_bytes(entries: u64) -> u64 {
    entries * ftq_entry_bits() / 8
}

/// Storage of the BTB prefetch buffer with `entries` entries, in bytes (the
/// paper quotes 336 bytes for 32 entries).
pub const fn btb_prefetch_buffer_bytes(entries: u64) -> u64 {
    entries * bb_btb_entry_bits() / 8
}

/// Total additional storage Boomerang needs beyond the baseline core, in
/// bytes: a deep FTQ plus the BTB prefetch buffer (§VI-D: 540 bytes).
pub const fn boomerang_additional_bytes(ftq_entries: u64, buffer_entries: u64) -> u64 {
    ftq_bytes(ftq_entries) + btb_prefetch_buffer_bytes(buffer_entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_widths_match_the_paper() {
        assert_eq!(bb_btb_entry_bits(), 84);
        assert_eq!(ftq_entry_bits(), 51);
    }

    #[test]
    fn paper_quoted_totals() {
        // §VI-D: a 32-entry FTQ needs 204 bytes and a 32-entry BTB prefetch
        // buffer 336 bytes, for a 540-byte total.
        assert_eq!(ftq_bytes(32), 204);
        assert_eq!(btb_prefetch_buffer_bytes(32), 336);
        assert_eq!(boomerang_additional_bytes(32, 32), 540);
    }

    #[test]
    fn large_btbs_cost_hundreds_of_kilobytes() {
        // §II-C: 16-32K entries cost up to ~280 KB of state per core.
        let bytes_32k = bb_btb_bytes(32 * 1024);
        assert!(
            bytes_32k > 250 * 1024 && bytes_32k < 400 * 1024,
            "{bytes_32k}"
        );
        // The baseline 2K-entry BTB is ~21 KB.
        let bytes_2k = bb_btb_bytes(2 * 1024);
        assert!(bytes_2k > 15 * 1024 && bytes_2k < 32 * 1024, "{bytes_2k}");
    }

    #[test]
    fn storage_is_monotone_in_size() {
        let mut last = 0;
        for entries in [512u64, 1024, 2048, 4096, 8192] {
            let b = bb_btb_bytes(entries);
            assert!(b > last);
            last = b;
        }
    }
}
