//! Conventional instruction-granular BTB.
//!
//! Entries are tagged by the branch instruction's own PC. A lookup that
//! misses is indistinguishable from "this instruction is not a branch", which
//! is precisely why this organisation cannot drive Boomerang-style BTB miss
//! detection (§IV-B). It is used by the non-decoupled baselines (next-line,
//! DIP, SHIFT) whose front ends predict at instruction granularity.

use crate::{BtbEntry, BtbLookup};
use sim_core::Addr;

/// A set-associative instruction-granular BTB with LRU replacement.
#[derive(Clone, Debug)]
pub struct InstructionBtb {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    lookups: u64,
    hits: u64,
    stamp: u64,
}

#[derive(Clone, Debug)]
struct Way {
    branch_pc: Addr,
    entry: BtbEntry,
    last_use: u64,
}

impl InstructionBtb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn new(entries: u64, ways: u64) -> Self {
        assert!(
            entries.is_power_of_two(),
            "BTB entries must be a power of two"
        );
        assert!(
            ways > 0 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        let num_sets = (entries / ways) as usize;
        InstructionBtb {
            sets: vec![Vec::with_capacity(ways as usize); num_sets],
            ways: ways as usize,
            set_mask: num_sets as u64 - 1,
            lookups: 0,
            hits: 0,
            stamp: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> u64 {
        (self.sets.len() * self.ways) as u64
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    fn set_index(&self, branch_pc: Addr) -> usize {
        ((branch_pc.raw() >> 2) & self.set_mask) as usize
    }

    /// Looks up the branch at `branch_pc`.
    ///
    /// A miss means either "not a branch" or "branch whose entry was evicted"
    /// — the front end cannot tell which.
    pub fn lookup(&mut self, branch_pc: Addr) -> BtbLookup {
        self.lookups += 1;
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(branch_pc);
        for way in &mut self.sets[set] {
            if way.branch_pc == branch_pc {
                way.last_use = stamp;
                self.hits += 1;
                return BtbLookup::Hit(way.entry);
            }
        }
        BtbLookup::Miss
    }

    /// Inserts or updates the entry for the branch at `branch_pc`.
    pub fn insert(&mut self, branch_pc: Addr, entry: BtbEntry) {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.ways;
        let set_idx = self.set_index(branch_pc);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.branch_pc == branch_pc) {
            way.entry = entry;
            way.last_use = stamp;
            return;
        }
        if set.len() < ways {
            set.push(Way {
                branch_pc,
                entry,
                last_use: stamp,
            });
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.last_use)
            .expect("a full set always has a victim");
        *victim = Way {
            branch_pc,
            entry,
            last_use: stamp,
        };
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BranchInfo, BranchKind};

    fn entry(start: u64, size: u64, target: u64) -> (Addr, BtbEntry) {
        let pc = Addr::new(start + (size - 1) * 4);
        let term = BranchInfo::direct(pc, BranchKind::Conditional, Addr::new(target));
        (pc, BtbEntry::from_block(Addr::new(start), size, term))
    }

    #[test]
    fn keyed_by_branch_pc_not_block_start() {
        let mut btb = InstructionBtb::new(64, 4);
        let (pc, e) = entry(0x1000, 4, 0x2000);
        btb.insert(pc, e);
        assert!(btb.lookup(pc).is_hit());
        // The block start itself is not a branch PC, so it misses.
        assert!(!btb.lookup(Addr::new(0x1000)).is_hit());
        assert_eq!(btb.lookups(), 2);
        assert_eq!(btb.hits(), 1);
    }

    #[test]
    fn lru_replacement() {
        let mut btb = InstructionBtb::new(8, 2);
        let stride = 4 * 4; // same set every stride
        let (pa, ea) = entry(0x1000, 1, 0x9000);
        let (pb, eb) = entry(0x1000 + stride, 1, 0x9000);
        let (pc_, ec) = entry(0x1000 + 2 * stride, 1, 0x9000);
        btb.insert(pa, ea);
        btb.insert(pb, eb);
        assert!(btb.lookup(pa).is_hit());
        btb.insert(pc_, ec);
        assert!(btb.lookup(pa).is_hit());
        assert!(!btb.lookup(pb).is_hit());
        assert!(btb.lookup(pc_).is_hit());
    }

    #[test]
    fn capacity_and_clear() {
        let mut btb = InstructionBtb::new(16, 4);
        for i in 0..64 {
            let (pc, e) = entry(0x1000 + i * 16, 2, 0x9000);
            btb.insert(pc, e);
        }
        assert!(btb.len() as u64 <= btb.capacity());
        btb.clear();
        assert!(btb.is_empty());
    }

    #[test]
    fn update_in_place() {
        let mut btb = InstructionBtb::new(16, 4);
        let (pc, e) = entry(0x1000, 2, 0x9000);
        btb.insert(pc, e);
        let (_, e2) = entry(0x1000, 2, 0xa000);
        btb.insert(pc, e2);
        assert_eq!(btb.len(), 1);
        assert_eq!(
            btb.lookup(pc).entry().unwrap().target,
            Some(Addr::new(0xa000))
        );
    }
}
