//! The BTB prefetch buffer (§IV-B of the paper).
//!
//! When Boomerang predecodes a fetched cache block, it creates BTB entries
//! for *all* branches it finds. Only the entry that resolves the pending BTB
//! miss goes straight into the BTB; the remaining entries are staged in this
//! small FIFO buffer to avoid polluting the BTB with entries that may never
//! be used. The buffer is looked up in parallel with the BTB; a hit moves the
//! entry into the BTB.

use crate::BtbEntry;
use sim_core::{Addr, FxHashMap, OrderQueue};

/// A small FIFO buffer of prefilled BTB entries (32 entries in the paper),
/// indexed by block start address.
///
/// The BPU probes this buffer on every BTB lookup, and Boomerang's BTB miss
/// probe inserts a burst of entries per predecoded line, so both `insert`
/// and `take` sit on the simulator's hot path. Entries live in a hash index
/// keyed by block start; an [`OrderQueue`] of `(addr, generation)` slots
/// remembers the replacement order, with slots whose generation no longer
/// matches the index (taken entries) skipped during eviction and compacted
/// away in amortised O(1).
#[derive(Clone, Debug)]
pub struct BtbPrefetchBuffer {
    /// Insertion order with tombstone skipping.
    order: OrderQueue<Addr>,
    /// Live entries with the generation of their FIFO slot. An in-place
    /// update (§IV-B re-predecode of the same block) keeps the generation,
    /// and therefore the original FIFO position.
    index: FxHashMap<Addr, (BtbEntry, u64)>,
    next_generation: u64,
    capacity: usize,
    hits: u64,
    inserts: u64,
}

impl BtbPrefetchBuffer {
    /// Creates a buffer holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the BTB prefetch buffer needs at least one entry"
        );
        BtbPrefetchBuffer {
            order: OrderQueue::new(2 * capacity),
            index: FxHashMap::default(),
            next_generation: 0,
            capacity,
            hits: 0,
            inserts: 0,
        }
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hits observed (entries promoted to the BTB).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries inserted so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Inserts an entry; the oldest entry is dropped if the buffer is full
    /// (first-in-first-out replacement, §IV-B).
    pub fn insert(&mut self, entry: BtbEntry) {
        self.inserts += 1;
        if let Some((existing, _)) = self.index.get_mut(&entry.block_start) {
            *existing = entry;
            return;
        }
        if self.index.len() == self.capacity {
            let index = &self.index;
            if let Some(victim) = self
                .order
                .pop_oldest_live(|a, gen| index.get(a).is_some_and(|&(_, g)| g == gen))
            {
                self.index.remove(&victim);
            }
        }
        let index = &self.index;
        self.order
            .maybe_compact(|a, gen| index.get(a).is_some_and(|&(_, g)| g == gen));
        let generation = self.next_generation;
        self.next_generation += 1;
        self.order.push(entry.block_start, generation);
        self.index.insert(entry.block_start, (entry, generation));
    }

    /// Looks up (and removes) the entry for the block starting at
    /// `block_start`. A hit means the entry is being promoted into the BTB.
    pub fn take(&mut self, block_start: Addr) -> Option<BtbEntry> {
        let (entry, _) = self.index.remove(&block_start)?;
        self.hits += 1;
        Some(entry)
    }

    /// Checks for an entry without removing it.
    pub fn peek(&self, block_start: Addr) -> Option<BtbEntry> {
        self.index.get(&block_start).map(|&(entry, _)| entry)
    }

    /// Discards all buffered entries.
    pub fn clear(&mut self) {
        self.order.clear();
        self.index.clear();
    }

    /// Storage cost in bits: each entry holds a 46-bit tag, 30-bit target,
    /// 3-bit branch type and 5-bit block size (§VI-D: 336 bytes for 32
    /// entries).
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64 * (46 + 30 + 3 + 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BranchInfo, BranchKind};

    fn entry(start: u64) -> BtbEntry {
        let term = BranchInfo::direct(
            Addr::new(start + 12),
            BranchKind::Conditional,
            Addr::new(0x9000),
        );
        BtbEntry::from_block(Addr::new(start), 4, term)
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
        assert!(buf.peek(Addr::new(0x1000)).is_some());
        let taken = buf.take(Addr::new(0x1000));
        assert_eq!(taken.unwrap().block_start, Addr::new(0x1000));
        assert!(buf.is_empty());
        assert_eq!(buf.hits(), 1);
        assert_eq!(buf.take(Addr::new(0x1000)), None);
    }

    #[test]
    fn fifo_replacement_drops_the_oldest() {
        let mut buf = BtbPrefetchBuffer::new(3);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x2000));
        buf.insert(entry(0x3000));
        buf.insert(entry(0x4000));
        assert_eq!(buf.len(), 3);
        assert!(
            buf.peek(Addr::new(0x1000)).is_none(),
            "oldest entry must be dropped"
        );
        assert!(buf.peek(Addr::new(0x4000)).is_some());
        assert_eq!(buf.inserts(), 4);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn taken_entry_does_not_shield_later_entries_from_eviction() {
        let mut buf = BtbPrefetchBuffer::new(2);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x2000));
        assert!(buf.take(Addr::new(0x1000)).is_some());
        buf.insert(entry(0x1000)); // re-inserted: now the newest
        buf.insert(entry(0x3000)); // must evict 0x2000, the oldest live
        assert!(buf.peek(Addr::new(0x2000)).is_none());
        assert!(buf.peek(Addr::new(0x1000)).is_some());
        assert!(buf.peek(Addr::new(0x3000)).is_some());
    }

    #[test]
    fn order_queue_stays_bounded_under_take_insert_churn() {
        let mut buf = BtbPrefetchBuffer::new(4);
        for i in 0..10_000u64 {
            buf.insert(entry(0x1000 + i * 0x40));
            assert!(buf.take(Addr::new(0x1000 + i * 0x40)).is_some());
            assert!(buf.order.slot_count() <= 2 * buf.capacity() + 1);
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn paper_storage_cost_is_336_bytes_for_32_entries() {
        let buf = BtbPrefetchBuffer::new(32);
        assert_eq!(buf.storage_bits(), 32 * 84);
        assert_eq!(buf.storage_bits() / 8, 336);
    }

    #[test]
    fn clear_and_capacity() {
        let mut buf = BtbPrefetchBuffer::new(2);
        buf.insert(entry(0x1000));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = BtbPrefetchBuffer::new(0);
    }
}
