//! The BTB prefetch buffer (§IV-B of the paper).
//!
//! When Boomerang predecodes a fetched cache block, it creates BTB entries
//! for *all* branches it finds. Only the entry that resolves the pending BTB
//! miss goes straight into the BTB; the remaining entries are staged in this
//! small FIFO buffer to avoid polluting the BTB with entries that may never
//! be used. The buffer is looked up in parallel with the BTB; a hit moves the
//! entry into the BTB.

use crate::BtbEntry;
use sim_core::Addr;

/// Sentinel marking an empty slot: no basic block starts at the top of the
/// address space.
const EMPTY_START: u64 = u64::MAX;

/// A small FIFO buffer of prefilled BTB entries (32 entries in the paper),
/// indexed by block start address.
///
/// The BPU probes this buffer on every BTB miss, and Boomerang's BTB miss
/// probe inserts a burst of entries per predecoded line, so both `insert`
/// and `take` sit on the simulator's hot path. At 32 entries, flat
/// sentinel-scanned arrays beat any hash index: lookups scan a 256-byte
/// start-address array, and FIFO replacement is an arg-min over the
/// insertion sequence numbers (an in-place update keeps its slot's
/// sequence, and therefore its FIFO position, exactly as the paper's
/// buffer would).
#[derive(Clone, Debug)]
pub struct BtbPrefetchBuffer {
    starts: Box<[u64]>,
    seqs: Box<[u64]>,
    entries: Box<[BtbEntry]>,
    next_seq: u64,
    len: usize,
    capacity: usize,
    hits: u64,
    inserts: u64,
}

const FILLER_ENTRY: BtbEntry = BtbEntry {
    block_start: Addr::new(0),
    block_size: 1,
    kind: sim_core::BranchKind::DirectJump,
    target: None,
};

impl BtbPrefetchBuffer {
    /// Creates a buffer holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the BTB prefetch buffer needs at least one entry"
        );
        BtbPrefetchBuffer {
            starts: vec![EMPTY_START; capacity].into_boxed_slice(),
            seqs: vec![0; capacity].into_boxed_slice(),
            entries: vec![FILLER_ENTRY; capacity].into_boxed_slice(),
            next_seq: 0,
            len: 0,
            capacity,
            hits: 0,
            inserts: 0,
        }
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hits observed (entries promoted to the BTB).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries inserted so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    fn find(&self, block_start: Addr) -> Option<usize> {
        self.starts.iter().position(|&s| s == block_start.raw())
    }

    /// Inserts an entry; the oldest entry is dropped if the buffer is full
    /// (first-in-first-out replacement, §IV-B).
    pub fn insert(&mut self, entry: BtbEntry) {
        debug_assert_ne!(entry.block_start.raw(), EMPTY_START);
        self.inserts += 1;
        if let Some(slot) = self.find(entry.block_start) {
            // In-place update (§IV-B re-predecode of the same block) keeps
            // the slot's sequence, and therefore its FIFO position.
            self.entries[slot] = entry;
            return;
        }
        let slot = if self.len == self.capacity {
            // FIFO eviction: the oldest live slot has the minimum sequence.
            self.seqs
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s)
                .expect("capacity is non-zero")
                .0
        } else {
            let empty = self
                .starts
                .iter()
                .position(|&s| s == EMPTY_START)
                .expect("len < capacity implies an empty slot");
            self.len += 1;
            empty
        };
        self.starts[slot] = entry.block_start.raw();
        self.seqs[slot] = self.next_seq;
        self.next_seq += 1;
        self.entries[slot] = entry;
    }

    /// Looks up (and removes) the entry for the block starting at
    /// `block_start`. A hit means the entry is being promoted into the BTB.
    pub fn take(&mut self, block_start: Addr) -> Option<BtbEntry> {
        let slot = self.find(block_start)?;
        self.starts[slot] = EMPTY_START;
        self.len -= 1;
        self.hits += 1;
        Some(self.entries[slot])
    }

    /// Checks for an entry without removing it.
    pub fn peek(&self, block_start: Addr) -> Option<BtbEntry> {
        self.find(block_start).map(|slot| self.entries[slot])
    }

    /// Discards all buffered entries.
    pub fn clear(&mut self) {
        self.starts.fill(EMPTY_START);
        self.len = 0;
    }

    /// Storage cost in bits: each entry holds a 46-bit tag, 30-bit target,
    /// 3-bit branch type and 5-bit block size (§VI-D: 336 bytes for 32
    /// entries).
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64 * (46 + 30 + 3 + 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BranchInfo, BranchKind};

    fn entry(start: u64) -> BtbEntry {
        let term = BranchInfo::direct(
            Addr::new(start + 12),
            BranchKind::Conditional,
            Addr::new(0x9000),
        );
        BtbEntry::from_block(Addr::new(start), 4, term)
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
        assert!(buf.peek(Addr::new(0x1000)).is_some());
        let taken = buf.take(Addr::new(0x1000));
        assert_eq!(taken.unwrap().block_start, Addr::new(0x1000));
        assert!(buf.is_empty());
        assert_eq!(buf.hits(), 1);
        assert_eq!(buf.take(Addr::new(0x1000)), None);
    }

    #[test]
    fn fifo_replacement_drops_the_oldest() {
        let mut buf = BtbPrefetchBuffer::new(3);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x2000));
        buf.insert(entry(0x3000));
        buf.insert(entry(0x4000));
        assert_eq!(buf.len(), 3);
        assert!(
            buf.peek(Addr::new(0x1000)).is_none(),
            "oldest entry must be dropped"
        );
        assert!(buf.peek(Addr::new(0x4000)).is_some());
        assert_eq!(buf.inserts(), 4);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn taken_entry_does_not_shield_later_entries_from_eviction() {
        let mut buf = BtbPrefetchBuffer::new(2);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x2000));
        assert!(buf.take(Addr::new(0x1000)).is_some());
        buf.insert(entry(0x1000)); // re-inserted: now the newest
        buf.insert(entry(0x3000)); // must evict 0x2000, the oldest live
        assert!(buf.peek(Addr::new(0x2000)).is_none());
        assert!(buf.peek(Addr::new(0x1000)).is_some());
        assert!(buf.peek(Addr::new(0x3000)).is_some());
    }

    #[test]
    fn heavy_take_insert_churn_stays_consistent() {
        let mut buf = BtbPrefetchBuffer::new(4);
        for i in 0..10_000u64 {
            buf.insert(entry(0x1000 + i * 0x40));
            assert!(buf.take(Addr::new(0x1000 + i * 0x40)).is_some());
            assert!(buf.len() <= buf.capacity());
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn paper_storage_cost_is_336_bytes_for_32_entries() {
        let buf = BtbPrefetchBuffer::new(32);
        assert_eq!(buf.storage_bits(), 32 * 84);
        assert_eq!(buf.storage_bits() / 8, 336);
    }

    #[test]
    fn clear_and_capacity() {
        let mut buf = BtbPrefetchBuffer::new(2);
        buf.insert(entry(0x1000));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = BtbPrefetchBuffer::new(0);
    }
}
