//! The BTB prefetch buffer (§IV-B of the paper).
//!
//! When Boomerang predecodes a fetched cache block, it creates BTB entries
//! for *all* branches it finds. Only the entry that resolves the pending BTB
//! miss goes straight into the BTB; the remaining entries are staged in this
//! small FIFO buffer to avoid polluting the BTB with entries that may never
//! be used. The buffer is looked up in parallel with the BTB; a hit moves the
//! entry into the BTB.

use crate::BtbEntry;
use sim_core::Addr;
use std::collections::VecDeque;

/// A small FIFO buffer of prefilled BTB entries (32 entries in the paper).
#[derive(Clone, Debug)]
pub struct BtbPrefetchBuffer {
    entries: VecDeque<BtbEntry>,
    capacity: usize,
    hits: u64,
    inserts: u64,
}

impl BtbPrefetchBuffer {
    /// Creates a buffer holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the BTB prefetch buffer needs at least one entry"
        );
        BtbPrefetchBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            inserts: 0,
        }
    }

    /// Number of entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hits observed (entries promoted to the BTB).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries inserted so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Inserts an entry; the oldest entry is dropped if the buffer is full
    /// (first-in-first-out replacement, §IV-B).
    pub fn insert(&mut self, entry: BtbEntry) {
        self.inserts += 1;
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.block_start == entry.block_start)
        {
            *existing = entry;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// Looks up (and removes) the entry for the block starting at
    /// `block_start`. A hit means the entry is being promoted into the BTB.
    pub fn take(&mut self, block_start: Addr) -> Option<BtbEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.block_start == block_start)?;
        self.hits += 1;
        self.entries.remove(pos)
    }

    /// Checks for an entry without removing it.
    pub fn peek(&self, block_start: Addr) -> Option<BtbEntry> {
        self.entries
            .iter()
            .find(|e| e.block_start == block_start)
            .copied()
    }

    /// Discards all buffered entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Storage cost in bits: each entry holds a 46-bit tag, 30-bit target,
    /// 3-bit branch type and 5-bit block size (§VI-D: 336 bytes for 32
    /// entries).
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64 * (46 + 30 + 3 + 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{BranchInfo, BranchKind};

    fn entry(start: u64) -> BtbEntry {
        let term = BranchInfo::direct(
            Addr::new(start + 12),
            BranchKind::Conditional,
            Addr::new(0x9000),
        );
        BtbEntry::from_block(Addr::new(start), 4, term)
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
        assert!(buf.peek(Addr::new(0x1000)).is_some());
        let taken = buf.take(Addr::new(0x1000));
        assert_eq!(taken.unwrap().block_start, Addr::new(0x1000));
        assert!(buf.is_empty());
        assert_eq!(buf.hits(), 1);
        assert_eq!(buf.take(Addr::new(0x1000)), None);
    }

    #[test]
    fn fifo_replacement_drops_the_oldest() {
        let mut buf = BtbPrefetchBuffer::new(3);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x2000));
        buf.insert(entry(0x3000));
        buf.insert(entry(0x4000));
        assert_eq!(buf.len(), 3);
        assert!(
            buf.peek(Addr::new(0x1000)).is_none(),
            "oldest entry must be dropped"
        );
        assert!(buf.peek(Addr::new(0x4000)).is_some());
        assert_eq!(buf.inserts(), 4);
    }

    #[test]
    fn duplicate_insert_updates_in_place() {
        let mut buf = BtbPrefetchBuffer::new(4);
        buf.insert(entry(0x1000));
        buf.insert(entry(0x1000));
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn paper_storage_cost_is_336_bytes_for_32_entries() {
        let buf = BtbPrefetchBuffer::new(32);
        assert_eq!(buf.storage_bits(), 32 * 84);
        assert_eq!(buf.storage_bits() / 8, 336);
    }

    #[test]
    fn clear_and_capacity() {
        let mut buf = BtbPrefetchBuffer::new(2);
        buf.insert(entry(0x1000));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = BtbPrefetchBuffer::new(0);
    }
}
