//! Branch target buffer (BTB) organisations.
//!
//! Boomerang's key enabling structure is a *basic-block-oriented BTB*
//! (Yeh & Patt): entries are tagged by the starting address of a basic block
//! and describe the block's size and its terminating branch. Unlike a
//! conventional instruction-granular BTB — which cannot tell a non-branch
//! instruction apart from a missing entry — a BB-BTB lookup that fails is a
//! *genuine* BTB miss, which is what lets Boomerang detect and prefill misses.
//!
//! This crate provides:
//!
//! * [`BtbEntry`] — the contents of one entry,
//! * [`BasicBlockBtb`] — set-associative, basic-block-oriented BTB,
//! * [`InstructionBtb`] — the conventional branch-PC-indexed organisation
//!   used by the non-Boomerang baselines,
//! * [`BtbPrefetchBuffer`] — the small FIFO Boomerang uses to stage prefilled
//!   entries without polluting the BTB (§IV-B),
//! * [`storage`] — the §VI-D storage-cost model.
//!
//! # Example
//!
//! ```
//! use btb::{BasicBlockBtb, BtbEntry};
//! use sim_core::{Addr, BranchInfo, BranchKind};
//!
//! let mut btb = BasicBlockBtb::new(2048, 4);
//! let term = BranchInfo::direct(Addr::new(0x40101c), BranchKind::Call, Addr::new(0x600000));
//! btb.insert(BtbEntry::from_block(Addr::new(0x401000), 8, term));
//! assert!(btb.lookup(Addr::new(0x401000)).is_hit());
//! // A lookup of an unknown block start is a *genuine* miss.
//! assert!(!btb.lookup(Addr::new(0x402000)).is_hit());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod basic_block;
pub mod instruction;
pub mod prefetch_buffer;
pub mod storage;

pub use basic_block::BasicBlockBtb;
pub use instruction::InstructionBtb;
pub use prefetch_buffer::BtbPrefetchBuffer;

use serde::{Deserialize, Serialize};
use sim_core::{Addr, BranchInfo, BranchKind};

/// The payload of a BTB entry: everything the branch prediction unit needs to
/// form the next fetch address once the entry's block is reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BtbEntry {
    /// Start address of the basic block (the tag for a BB-BTB).
    pub block_start: Addr,
    /// Number of instructions in the block, including the branch.
    pub block_size: u64,
    /// Kind of the terminating branch.
    pub kind: BranchKind,
    /// Target of the terminating branch, when it is a direct branch. Indirect
    /// branches and returns store the last observed target (or `None` before
    /// the first observation).
    pub target: Option<Addr>,
}

impl BtbEntry {
    /// Builds an entry from a static block description.
    pub fn from_block(block_start: Addr, block_size: u64, terminator: BranchInfo) -> Self {
        BtbEntry {
            block_start,
            block_size,
            kind: terminator.kind,
            target: terminator.target,
        }
    }

    /// Address of the terminating branch instruction.
    pub fn branch_pc(&self) -> Addr {
        self.block_start
            .add_instructions(self.block_size.saturating_sub(1))
    }

    /// Fall-through address (the instruction after the block).
    pub fn fall_through(&self) -> Addr {
        self.block_start.add_instructions(self.block_size)
    }
}

/// Result of a BTB lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BtbLookup {
    /// The entry was found.
    Hit(BtbEntry),
    /// No entry for this address: with a basic-block BTB this is a genuine
    /// miss (the paper's trigger for a BTB miss probe).
    Miss,
}

impl BtbLookup {
    /// Returns the entry on a hit.
    pub fn entry(self) -> Option<BtbEntry> {
        match self {
            BtbLookup::Hit(e) => Some(e),
            BtbLookup::Miss => None,
        }
    }

    /// `true` on a hit.
    pub fn is_hit(self) -> bool {
        matches!(self, BtbLookup::Hit(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_geometry() {
        let term = BranchInfo::direct(
            Addr::new(0x101c),
            BranchKind::Conditional,
            Addr::new(0x2000),
        );
        let e = BtbEntry::from_block(Addr::new(0x1000), 8, term);
        assert_eq!(e.branch_pc(), Addr::new(0x101c));
        assert_eq!(e.fall_through(), Addr::new(0x1020));
        assert_eq!(e.target, Some(Addr::new(0x2000)));
        assert_eq!(e.kind, BranchKind::Conditional);
    }

    #[test]
    fn lookup_helpers() {
        let term = BranchInfo::indirect(Addr::new(0x1000), BranchKind::Return);
        let e = BtbEntry::from_block(Addr::new(0x1000), 1, term);
        assert!(BtbLookup::Hit(e).is_hit());
        assert_eq!(BtbLookup::Hit(e).entry(), Some(e));
        assert!(!BtbLookup::Miss.is_hit());
        assert_eq!(BtbLookup::Miss.entry(), None);
    }
}
