//! Property-based tests of the BTB structures.
use btb::{BasicBlockBtb, BtbEntry, BtbPrefetchBuffer};
use proptest::prelude::*;
use sim_core::{Addr, BranchInfo, BranchKind};

fn entry(start: u64, size: u64) -> BtbEntry {
    let size = size.clamp(1, 31);
    let start = start & !3;
    let term = BranchInfo::direct(
        Addr::new(start + (size - 1) * 4),
        BranchKind::Conditional,
        Addr::new(start + 0x1000),
    );
    BtbEntry::from_block(Addr::new(start), size, term)
}

proptest! {
    #[test]
    fn btb_never_exceeds_capacity_and_finds_what_it_keeps(
        inserts in prop::collection::vec((0u64..1 << 20, 1u64..31), 1..300)
    ) {
        let mut btb = BasicBlockBtb::new(64, 4);
        for &(start, size) in &inserts {
            btb.insert(entry(start, size));
            prop_assert!(btb.len() as u64 <= btb.capacity());
        }
        // The most recently inserted entry is always resident.
        let (s, z) = *inserts.last().unwrap();
        let e = entry(s, z);
        prop_assert_eq!(btb.probe(e.block_start).map(|x| x.branch_pc()), Some(e.branch_pc()));
    }

    #[test]
    fn btb_lookups_only_return_matching_tags(
        inserts in prop::collection::vec(0u64..1 << 16, 1..100),
        probes in prop::collection::vec(0u64..1 << 16, 1..100)
    ) {
        let mut btb = BasicBlockBtb::new(128, 4);
        for &s in &inserts {
            btb.insert(entry(s, 4));
        }
        for &p in &probes {
            let addr = Addr::new(p & !3);
            if let Some(e) = btb.probe(addr) {
                prop_assert_eq!(e.block_start, addr);
            }
        }
    }

    #[test]
    fn prefetch_buffer_is_bounded_and_fifo(
        inserts in prop::collection::vec(0u64..1 << 12, 1..200)
    ) {
        let mut buf = BtbPrefetchBuffer::new(32);
        for &s in &inserts {
            buf.insert(entry(s, 2));
            prop_assert!(buf.len() <= buf.capacity());
        }
        let (hits_before, takes) = (buf.hits(), inserts.len().min(5));
        for &s in inserts.iter().rev().take(takes) {
            // Taking an entry removes it.
            let addr = entry(s, 2).block_start;
            if buf.take(addr).is_some() {
                prop_assert!(buf.peek(addr).is_none());
            }
        }
        prop_assert!(buf.hits() >= hits_before);
    }
}
