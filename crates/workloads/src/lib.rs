//! Synthetic server-workload substrate for the Boomerang reproduction.
//!
//! The paper evaluates Boomerang on six commercial server workloads running
//! under a full-system simulator. Neither the binaries nor the traces are
//! available, so this crate builds the closest synthetic equivalent that
//! exercises the same front-end code paths:
//!
//! 1. [`WorkloadProfile`] — a declarative description of one workload's
//!    front-end-relevant characteristics (instruction footprint, branch mix,
//!    branch-target distances, call depth, temporal reuse).
//! 2. [`CodeLayout`] — a deterministic synthetic text segment generated from
//!    a profile: functions, basic blocks, and a control-flow graph.
//! 3. [`TraceGenerator`] / [`Trace`] — the dynamic execution path through
//!    that layout, which the front-end simulator uses as its oracle.
//! 4. [`analysis`] — workload characterisation (Figure 4's branch-distance
//!    distribution, working-set sizes, dynamic branch mix).
//!
//! # Example
//!
//! ```
//! use workloads::{CodeLayout, Trace, WorkloadProfile};
//! use workloads::analysis::BranchDistanceHistogram;
//!
//! let profile = WorkloadProfile::tiny(1);
//! let layout = CodeLayout::generate(&profile);
//! let trace = Trace::generate_blocks(&layout, 10_000);
//! let hist = BranchDistanceHistogram::measure(&trace, layout.geometry(), 8);
//! // Most taken conditional branches land close to the branch (Figure 4).
//! assert!(hist.cumulative_within(4) > 0.8);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod codec;
pub mod layout;
pub mod profile;
pub mod trace;

pub use codec::{profile_fingerprint, ByteReader, CodecError};
pub use layout::{
    BlockId, BranchBehavior, CodeLayout, ControlFlow, Function, FunctionId, LayoutSummary,
    StaticBlock, CODE_BASE,
};
pub use profile::{
    latency_class, BackendProfile, ConditionalBehaviorMix, ProfileError, TerminatorMix,
    WorkloadKind, WorkloadProfile, LATENCY_SEED_SALT, MIN_FOOTPRINT_BYTES,
};
pub use trace::{Trace, TraceGenerator};
