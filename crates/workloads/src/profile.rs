//! Workload profiles.
//!
//! The paper evaluates six commercial server workloads (Table II): Nutch,
//! Darwin Streaming, Apache, Zeus, Oracle and DB2, running under the Flexus
//! full-system simulator. Those binaries and traces are not available, so this
//! crate generates *synthetic* workloads whose front-end-relevant
//! characteristics match what the paper reports: multi-megabyte instruction
//! footprints, branch working sets far exceeding a 2K-entry BTB, ~92 % of
//! taken conditional branches landing within four cache blocks of the branch
//! (Figure 4), deep layered call chains, and per-workload differences in
//! streaming behaviour and BTB pressure.
//!
//! A [`WorkloadProfile`] is a declarative description of one such workload;
//! [`crate::layout::CodeLayout::generate`] turns it into a static code layout
//! and [`crate::trace::TraceGenerator`] walks that layout to produce the
//! dynamic instruction stream.

use serde::{Deserialize, Serialize};
use sim_core::rng::SimRng;
use std::fmt;

/// Relative frequencies of the different terminator kinds of a basic block.
///
/// The remainder after calls, jumps, indirect branches and returns is made up
/// of conditional branches, which dominate in all profiles.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TerminatorMix {
    /// Fraction of blocks ending in a direct call.
    pub call: f64,
    /// Fraction of blocks ending in an indirect call.
    pub indirect_call: f64,
    /// Fraction of blocks ending in an unconditional direct jump.
    pub jump: f64,
    /// Fraction of blocks ending in an indirect jump.
    pub indirect_jump: f64,
    /// Fraction of blocks ending in an *early* return (in addition to the
    /// structural return that terminates every function).
    pub early_return: f64,
}

impl TerminatorMix {
    /// Fraction of blocks ending in a conditional branch.
    pub fn conditional(&self) -> f64 {
        (1.0 - self.call - self.indirect_call - self.jump - self.indirect_jump - self.early_return)
            .max(0.0)
    }

    /// Validates that the fractions are non-negative and sum to at most one.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Validates the mix, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let parts = [
            ("terminators.call", self.call),
            ("terminators.indirect_call", self.indirect_call),
            ("terminators.jump", self.jump),
            ("terminators.indirect_jump", self.indirect_jump),
            ("terminators.early_return", self.early_return),
        ];
        for (field, p) in parts {
            unit_fraction(field, p)?;
        }
        let sum: f64 = parts.iter().map(|&(_, p)| p).sum();
        if sum > 1.0 {
            return Err(ProfileError::new(
                "terminators",
                format!("fractions sum to {sum} (must be at most 1)"),
            ));
        }
        Ok(())
    }
}

/// Mix of dynamic behaviours assigned to static conditional branches.
///
/// The behaviours differ in how hard they are for the direction predictors:
/// biased branches are easy for everything including a bimodal predictor,
/// loop exits and history patterns need TAGE-like history, and a small
/// fraction of data-dependent branches is unpredictable for everyone.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConditionalBehaviorMix {
    /// Fraction of conditional branches that are loop back-edges.
    pub loop_backedge: f64,
    /// Fraction exhibiting a short repeating history pattern.
    pub pattern: f64,
    /// Fraction that are effectively data-dependent (close to 50/50).
    pub data_dependent: f64,
    /// Mean probability of "taken" for the remaining biased branches.
    pub bias_mean: f64,
    /// Mean loop trip count for loop back-edges.
    pub mean_trip_count: f64,
}

impl ConditionalBehaviorMix {
    /// Fraction of conditional branches that are simply biased.
    pub fn biased(&self) -> f64 {
        (1.0 - self.loop_backedge - self.pattern - self.data_dependent).max(0.0)
    }

    /// Validates the mix.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Validates the mix, naming the offending field on failure.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let parts = [
            ("conditionals.loop_backedge", self.loop_backedge),
            ("conditionals.pattern", self.pattern),
            ("conditionals.data_dependent", self.data_dependent),
        ];
        for (field, p) in parts {
            unit_fraction(field, p)?;
        }
        let sum: f64 = parts.iter().map(|&(_, p)| p).sum();
        if sum > 1.0 {
            return Err(ProfileError::new(
                "conditionals",
                format!("fractions sum to {sum} (must be at most 1)"),
            ));
        }
        unit_fraction("conditionals.bias_mean", self.bias_mean)?;
        if self.mean_trip_count.is_nan() || self.mean_trip_count < 2.0 {
            return Err(ProfileError::new(
                "conditionals.mean_trip_count",
                format!("must be at least 2 (got {})", self.mean_trip_count),
            ));
        }
        Ok(())
    }
}

/// Parameters of the simple out-of-order back-end model.
///
/// The back-end is not the subject of the paper, but its data stalls determine
/// how much of the front-end improvement turns into end-to-end speedup
/// (Figures 1 and 9 saturate between 1.1x and 1.7x). Each retired instruction
/// is given an execution latency drawn from this distribution.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackendProfile {
    /// Fraction of instructions that are memory loads.
    pub load_fraction: f64,
    /// Probability that a load misses the L1-D and hits the LLC.
    pub l1d_miss_rate: f64,
    /// Probability that a load misses the LLC entirely (goes to memory).
    pub llc_miss_rate: f64,
    /// Baseline execution latency of a non-memory instruction in cycles.
    pub base_latency: u64,
}

/// Salt XORed into the workload seed to derive the back-end latency RNG
/// stream (kept stable so committed reports never shift).
pub const LATENCY_SEED_SALT: u64 = 0xbac_bac_bac;

/// Per-instruction latency classes drawn by [`BackendProfile::latency_classes`].
/// The numeric values index the back end's class→latency table.
pub mod latency_class {
    /// Non-load instruction: base latency.
    pub const BASE: u8 = 0;
    /// Load missing the LLC: memory latency.
    pub const MEMORY: u8 = 1;
    /// Load missing the L1-D, hitting the LLC.
    pub const LLC: u8 = 2;
    /// Load hitting the L1-D: base latency + 2.
    pub const L1D_HIT: u8 = 3;
}

impl BackendProfile {
    /// Precomputes the per-instruction latency-**class** stream for a
    /// workload seed.
    ///
    /// The back end draws one Bernoulli cascade per instruction it accepts,
    /// and the accepted-instruction sequence is the same for every
    /// mechanism, configuration and engine that runs the same workload — the
    /// draw values depend only on the RNG state, never on simulation timing.
    /// The whole stream is therefore a pure function of `(profile, seed)`
    /// and can be generated once per workload and shared by every simulator
    /// run over it, instead of re-drawn instruction-by-instruction inside
    /// each run's hot loop. Classes rather than latencies are stored so the
    /// stream stays independent of the microarchitectural configuration
    /// (LLC/memory latencies map in at simulation time).
    ///
    /// Draw-for-draw identical to the back end's online cascade: same
    /// number and order of underlying `next_u64` calls, so a simulator fed
    /// this stream produces byte-identical statistics to one drawing live.
    pub fn latency_classes(&self, workload_seed: u64, count: usize) -> Vec<u8> {
        use crate::profile::latency_class as class;
        let mut rng = SimRng::seeded(workload_seed ^ LATENCY_SEED_SALT);
        let load_t = SimRng::chance_threshold(self.load_fraction);
        let llc_t = SimRng::chance_threshold(self.llc_miss_rate);
        let l1d_t = SimRng::chance_threshold(self.l1d_miss_rate);
        (0..count)
            .map(|_| {
                if rng.unit_bits() >= load_t {
                    class::BASE
                } else if rng.unit_bits() < llc_t {
                    class::MEMORY
                } else if rng.unit_bits() < l1d_t {
                    class::LLC
                } else {
                    class::L1D_HIT
                }
            })
            .collect()
    }

    /// Validates the back-end parameters.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Validates the back-end parameters, naming the offending field on
    /// failure.
    pub fn validate(&self) -> Result<(), ProfileError> {
        unit_fraction("backend.load_fraction", self.load_fraction)?;
        unit_fraction("backend.l1d_miss_rate", self.l1d_miss_rate)?;
        unit_fraction("backend.llc_miss_rate", self.llc_miss_rate)?;
        if self.base_latency < 1 {
            return Err(ProfileError::new(
                "backend.base_latency",
                "must be at least 1 cycle (got 0)".to_string(),
            ));
        }
        Ok(())
    }
}

/// A field-level [`WorkloadProfile`] validation error: which field is out of
/// range and why. Surfaces through the campaign spec parser so a bad
/// user-authored profile is rejected with its field name instead of
/// panicking a simulation worker mid-campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileError {
    /// Dotted path of the offending field (e.g. `terminators.call`).
    pub field: &'static str,
    /// What is wrong with the value.
    pub message: String,
}

impl ProfileError {
    fn new(field: &'static str, message: String) -> Self {
        ProfileError { field, message }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` {}", self.field, self.message)
    }
}

impl std::error::Error for ProfileError {}

fn unit_fraction(field: &'static str, value: f64) -> Result<(), ProfileError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(ProfileError::new(
            field,
            format!("must be a fraction in [0, 1] (got {value})"),
        ))
    }
}

/// Names of the six server workloads studied in the paper (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Nutch — open-source web search (Apache Nutch v1.2).
    Nutch,
    /// Darwin Streaming Server — media streaming.
    Streaming,
    /// Apache HTTP Server — SPECweb99 web front end.
    Apache,
    /// Zeus Web Server — SPECweb99 web front end.
    Zeus,
    /// Oracle 10g — TPC-C online transaction processing.
    Oracle,
    /// IBM DB2 v8 ESE — TPC-C online transaction processing.
    Db2,
}

impl WorkloadKind {
    /// All six workloads in the order the paper lists them.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Nutch,
        WorkloadKind::Streaming,
        WorkloadKind::Apache,
        WorkloadKind::Zeus,
        WorkloadKind::Oracle,
        WorkloadKind::Db2,
    ];

    /// Human-readable name as used in the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadKind::Nutch => "Nutch",
            WorkloadKind::Streaming => "Streaming",
            WorkloadKind::Apache => "Apache",
            WorkloadKind::Zeus => "Zeus",
            WorkloadKind::Oracle => "Oracle",
            WorkloadKind::Db2 => "DB2",
        }
    }

    /// The synthetic profile standing in for this workload.
    pub fn profile(self) -> WorkloadProfile {
        WorkloadProfile::for_kind(self)
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Declarative description of one synthetic server workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Which paper workload this profile emulates.
    pub kind: WorkloadKind,
    /// One-line description (Table II analogue).
    pub description: String,
    /// Seed from which layout and trace randomness are derived.
    pub seed: u64,
    /// Target active instruction footprint in bytes.
    pub footprint_bytes: u64,
    /// Mean basic-block length in instructions.
    pub mean_block_instructions: f64,
    /// Mean number of basic blocks per function.
    pub mean_function_blocks: f64,
    /// Terminator mix.
    pub terminators: TerminatorMix,
    /// Conditional-branch behaviour mix.
    pub conditionals: ConditionalBehaviorMix,
    /// Mean distance, in cache blocks, of a taken conditional branch target
    /// (Figure 4: ~92 % within four blocks).
    pub cond_target_mean_lines: f64,
    /// Fraction of taken conditional targets that are backward (loops and
    /// retries).
    pub cond_backward_fraction: f64,
    /// Maximum call depth the trace generator will follow before forcing a
    /// return (layered server stacks reach ~10-20).
    pub max_call_depth: usize,
    /// Number of top-level "service" entry points the dispatcher cycles
    /// through; this controls instruction working-set churn.
    pub service_roots: usize,
    /// Fraction of call sites that call a "hot" (frequently reused) callee
    /// rather than a uniformly random one; higher values create more
    /// temporal reuse and thus more L1-I hits.
    pub hot_callee_fraction: f64,
    /// Fraction of the instruction footprint occupied by the shared
    /// *utility layer*: the leaf helper code (allocator, libc-like routines)
    /// at the tail of the layout that every service calls into. Utility
    /// functions are exactly the ones `Function::is_hot` marks, and they are
    /// the "hot" callees that [`hot_callee_fraction`](Self::hot_callee_fraction)
    /// steers call sites toward — so a larger utility layer spreads the same
    /// reuse over more code. Layout generation clamps the value to
    /// `[0.03, 0.4]`.
    ///
    /// Formerly (mis)named `hot_function_fraction`; campaign specs still
    /// accept that key as a deprecated alias.
    pub utility_fraction: f64,
    /// Back-end data-stall model.
    pub backend: BackendProfile,
}

impl WorkloadProfile {
    /// The profile standing in for `kind`.
    ///
    /// The parameters are chosen so that a 2K-entry-BTB, 32 KB-L1-I baseline
    /// core reproduces the qualitative per-workload behaviour of the paper:
    /// OLTP workloads (Oracle, DB2) have the largest footprints and BTB
    /// pressure, Streaming is the most sequential, and the web workloads sit
    /// in between.
    pub fn for_kind(kind: WorkloadKind) -> Self {
        match kind {
            WorkloadKind::Nutch => WorkloadProfile {
                kind,
                description: "Apache Nutch v1.2, 230 clients, 1.4 GB index (web search)".into(),
                seed: 0x4e75_7463_6801,
                footprint_bytes: 1_600 * 1024,
                mean_block_instructions: 6.5,
                mean_function_blocks: 14.0,
                terminators: TerminatorMix {
                    call: 0.095,
                    indirect_call: 0.012,
                    jump: 0.055,
                    indirect_jump: 0.006,
                    early_return: 0.035,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.1,
                    pattern: 0.1,
                    data_dependent: 0.045,
                    bias_mean: 0.82,
                    mean_trip_count: 6.0,
                },
                cond_target_mean_lines: 1.6,
                cond_backward_fraction: 0.32,
                max_call_depth: 18,
                service_roots: 96,
                hot_callee_fraction: 0.3,
                utility_fraction: 0.06,
                backend: BackendProfile {
                    load_fraction: 0.26,
                    l1d_miss_rate: 0.045,
                    llc_miss_rate: 0.004,
                    base_latency: 1,
                },
            },
            WorkloadKind::Streaming => WorkloadProfile {
                kind,
                description: "Darwin Streaming Server 6.0.3, 7500 clients (media streaming)".into(),
                seed: 0x5374_7265_616d,
                footprint_bytes: 1_100 * 1024,
                mean_block_instructions: 8.5,
                mean_function_blocks: 18.0,
                terminators: TerminatorMix {
                    call: 0.075,
                    indirect_call: 0.008,
                    jump: 0.045,
                    indirect_jump: 0.004,
                    early_return: 0.025,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.14,
                    pattern: 0.08,
                    data_dependent: 0.035,
                    bias_mean: 0.86,
                    mean_trip_count: 8.0,
                },
                cond_target_mean_lines: 1.4,
                cond_backward_fraction: 0.34,
                max_call_depth: 16,
                service_roots: 48,
                hot_callee_fraction: 0.4,
                utility_fraction: 0.08,
                backend: BackendProfile {
                    load_fraction: 0.24,
                    l1d_miss_rate: 0.05,
                    llc_miss_rate: 0.006,
                    base_latency: 1,
                },
            },
            WorkloadKind::Apache => WorkloadProfile {
                kind,
                description: "Apache HTTP Server v2.0, 16K connections, fastCGI (SPECweb99)".into(),
                seed: 0x4170_6163_6865,
                footprint_bytes: 2_000 * 1024,
                mean_block_instructions: 6.0,
                mean_function_blocks: 13.0,
                terminators: TerminatorMix {
                    call: 0.105,
                    indirect_call: 0.014,
                    jump: 0.06,
                    indirect_jump: 0.007,
                    early_return: 0.04,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.09,
                    pattern: 0.11,
                    data_dependent: 0.05,
                    bias_mean: 0.80,
                    mean_trip_count: 5.0,
                },
                cond_target_mean_lines: 1.7,
                cond_backward_fraction: 0.30,
                max_call_depth: 20,
                service_roots: 128,
                hot_callee_fraction: 0.28,
                utility_fraction: 0.05,
                backend: BackendProfile {
                    load_fraction: 0.27,
                    l1d_miss_rate: 0.05,
                    llc_miss_rate: 0.005,
                    base_latency: 1,
                },
            },
            WorkloadKind::Zeus => WorkloadProfile {
                kind,
                description: "Zeus Web Server, 16K connections, fastCGI (SPECweb99)".into(),
                seed: 0x5a65_7573_0001,
                footprint_bytes: 1_800 * 1024,
                mean_block_instructions: 6.2,
                mean_function_blocks: 13.5,
                terminators: TerminatorMix {
                    call: 0.1,
                    indirect_call: 0.013,
                    jump: 0.058,
                    indirect_jump: 0.006,
                    early_return: 0.038,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.09,
                    pattern: 0.1,
                    data_dependent: 0.048,
                    bias_mean: 0.81,
                    mean_trip_count: 5.5,
                },
                cond_target_mean_lines: 1.65,
                cond_backward_fraction: 0.31,
                max_call_depth: 19,
                service_roots: 112,
                hot_callee_fraction: 0.3,
                utility_fraction: 0.05,
                backend: BackendProfile {
                    load_fraction: 0.26,
                    l1d_miss_rate: 0.048,
                    llc_miss_rate: 0.005,
                    base_latency: 1,
                },
            },
            WorkloadKind::Oracle => WorkloadProfile {
                kind,
                description: "Oracle 10g Enterprise Database Server, TPC-C, 100 warehouses".into(),
                seed: 0x4f72_6163_6c65,
                footprint_bytes: 3_200 * 1024,
                mean_block_instructions: 5.4,
                mean_function_blocks: 12.0,
                terminators: TerminatorMix {
                    call: 0.115,
                    indirect_call: 0.018,
                    jump: 0.065,
                    indirect_jump: 0.009,
                    early_return: 0.045,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.08,
                    pattern: 0.12,
                    data_dependent: 0.055,
                    bias_mean: 0.78,
                    mean_trip_count: 4.5,
                },
                cond_target_mean_lines: 1.8,
                cond_backward_fraction: 0.29,
                max_call_depth: 22,
                service_roots: 192,
                hot_callee_fraction: 0.22,
                utility_fraction: 0.04,
                backend: BackendProfile {
                    load_fraction: 0.30,
                    l1d_miss_rate: 0.06,
                    llc_miss_rate: 0.008,
                    base_latency: 1,
                },
            },
            WorkloadKind::Db2 => WorkloadProfile {
                kind,
                description: "IBM DB2 v8 ESE Database Server, TPC-C, 100 warehouses".into(),
                seed: 0x4442_3200_0001,
                footprint_bytes: 3_600 * 1024,
                mean_block_instructions: 5.2,
                mean_function_blocks: 11.5,
                terminators: TerminatorMix {
                    call: 0.12,
                    indirect_call: 0.02,
                    jump: 0.068,
                    indirect_jump: 0.01,
                    early_return: 0.048,
                },
                conditionals: ConditionalBehaviorMix {
                    loop_backedge: 0.08,
                    pattern: 0.12,
                    data_dependent: 0.05,
                    bias_mean: 0.78,
                    mean_trip_count: 4.5,
                },
                cond_target_mean_lines: 1.85,
                cond_backward_fraction: 0.28,
                max_call_depth: 22,
                service_roots: 224,
                hot_callee_fraction: 0.2,
                utility_fraction: 0.04,
                backend: BackendProfile {
                    load_fraction: 0.31,
                    l1d_miss_rate: 0.062,
                    llc_miss_rate: 0.009,
                    base_latency: 1,
                },
            },
        }
    }

    /// All six paper workloads.
    pub fn all() -> Vec<WorkloadProfile> {
        WorkloadKind::ALL.iter().map(|k| k.profile()).collect()
    }

    /// A small profile for unit tests and doc examples: a few tens of KB of
    /// code, so layout generation and short simulations are fast.
    pub fn tiny(seed: u64) -> Self {
        let mut p = WorkloadProfile::for_kind(WorkloadKind::Nutch);
        p.description = "tiny synthetic workload for tests".into();
        p.seed = seed;
        p.footprint_bytes = 48 * 1024;
        p.service_roots = 16;
        p.max_call_depth = 12;
        p
    }

    /// Returns the profile with a different footprint, keeping everything
    /// else fixed. Useful for footprint-sensitivity studies.
    #[must_use]
    pub fn with_footprint_bytes(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Returns the profile with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the profile with a different number of service entry points
    /// (instruction working-set churn).
    #[must_use]
    pub fn with_service_roots(mut self, roots: usize) -> Self {
        self.service_roots = roots;
        self
    }

    /// Returns the profile with a different hot-callee fraction (temporal
    /// reuse of the utility layer).
    #[must_use]
    pub fn with_hot_callee_fraction(mut self, fraction: f64) -> Self {
        self.hot_callee_fraction = fraction;
        self
    }

    /// Returns the profile with a different utility-layer size fraction.
    #[must_use]
    pub fn with_utility_fraction(mut self, fraction: f64) -> Self {
        self.utility_fraction = fraction;
        self
    }

    /// Returns the profile with a different mean basic-block length.
    #[must_use]
    pub fn with_mean_block_instructions(mut self, mean: f64) -> Self {
        self.mean_block_instructions = mean;
        self
    }

    /// Returns the profile with a different mean function size in blocks.
    #[must_use]
    pub fn with_mean_function_blocks(mut self, mean: f64) -> Self {
        self.mean_function_blocks = mean;
        self
    }

    /// Returns the profile with a different mean taken-conditional target
    /// distance in cache lines (the Figure 4 axis).
    #[must_use]
    pub fn with_cond_target_mean_lines(mut self, mean: f64) -> Self {
        self.cond_target_mean_lines = mean;
        self
    }

    /// Returns the profile with a different backward-conditional fraction.
    #[must_use]
    pub fn with_cond_backward_fraction(mut self, fraction: f64) -> Self {
        self.cond_backward_fraction = fraction;
        self
    }

    /// Returns the profile with a different maximum call depth.
    #[must_use]
    pub fn with_max_call_depth(mut self, depth: usize) -> Self {
        self.max_call_depth = depth;
        self
    }

    /// Returns the profile with a different terminator mix.
    #[must_use]
    pub fn with_terminators(mut self, mix: TerminatorMix) -> Self {
        self.terminators = mix;
        self
    }

    /// Returns the profile with a different conditional-behaviour mix.
    #[must_use]
    pub fn with_conditionals(mut self, mix: ConditionalBehaviorMix) -> Self {
        self.conditionals = mix;
        self
    }

    /// Returns the profile with a different back-end model.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendProfile) -> Self {
        self.backend = backend;
        self
    }

    /// Short name of the underlying workload.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Validates that all fractions and means are in range.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Validates the profile, naming the first offending field on failure.
    ///
    /// The campaign spec parser calls this for every resolved `[[workload]]`
    /// entry, so an out-of-range value is reported as a field-level spec
    /// error at parse time instead of panicking a pool worker inside
    /// [`crate::layout::CodeLayout::generate`] mid-campaign.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.footprint_bytes < MIN_FOOTPRINT_BYTES {
            return Err(ProfileError::new(
                "footprint_bytes",
                format!(
                    "must be at least {MIN_FOOTPRINT_BYTES} bytes (got {})",
                    self.footprint_bytes
                ),
            ));
        }
        if self.mean_block_instructions.is_nan() || self.mean_block_instructions < 2.0 {
            return Err(ProfileError::new(
                "mean_block_instructions",
                format!("must be at least 2 (got {})", self.mean_block_instructions),
            ));
        }
        if self.mean_function_blocks.is_nan() || self.mean_function_blocks < 2.0 {
            return Err(ProfileError::new(
                "mean_function_blocks",
                format!("must be at least 2 (got {})", self.mean_function_blocks),
            ));
        }
        self.terminators.validate()?;
        self.conditionals.validate()?;
        if self.cond_target_mean_lines.is_nan() || self.cond_target_mean_lines <= 0.0 {
            return Err(ProfileError::new(
                "cond_target_mean_lines",
                format!("must be positive (got {})", self.cond_target_mean_lines),
            ));
        }
        unit_fraction("cond_backward_fraction", self.cond_backward_fraction)?;
        if self.max_call_depth < 2 {
            return Err(ProfileError::new(
                "max_call_depth",
                format!("must be at least 2 (got {})", self.max_call_depth),
            ));
        }
        if self.service_roots < 1 {
            return Err(ProfileError::new(
                "service_roots",
                "must be at least 1 (got 0)".to_string(),
            ));
        }
        unit_fraction("hot_callee_fraction", self.hot_callee_fraction)?;
        unit_fraction("utility_fraction", self.utility_fraction)?;
        self.backend.validate()?;
        Ok(())
    }
}

/// Smallest footprint a profile may request (16 KB): below this the layered
/// dispatcher/service/utility structure degenerates.
pub const MIN_FOOTPRINT_BYTES: u64 = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_are_valid() {
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            assert!(p.is_valid(), "profile for {kind} is invalid");
            assert_eq!(p.kind, kind);
            assert!(!p.description.is_empty());
        }
        assert!(WorkloadProfile::tiny(1).is_valid());
    }

    #[test]
    fn oltp_workloads_have_larger_footprints_and_btb_pressure() {
        let nutch = WorkloadKind::Nutch.profile();
        let oracle = WorkloadKind::Oracle.profile();
        let db2 = WorkloadKind::Db2.profile();
        assert!(oracle.footprint_bytes > nutch.footprint_bytes);
        assert!(db2.footprint_bytes > oracle.footprint_bytes);
        // OLTP code is branchier: shorter blocks, more calls.
        assert!(db2.mean_block_instructions < nutch.mean_block_instructions);
        assert!(db2.terminators.call > nutch.terminators.call);
    }

    #[test]
    fn streaming_is_the_most_sequential() {
        let streaming = WorkloadKind::Streaming.profile();
        for kind in WorkloadKind::ALL {
            let p = kind.profile();
            assert!(streaming.mean_block_instructions >= p.mean_block_instructions);
        }
    }

    #[test]
    fn terminator_mix_accounting() {
        let mix = TerminatorMix {
            call: 0.1,
            indirect_call: 0.05,
            jump: 0.05,
            indirect_jump: 0.0,
            early_return: 0.1,
        };
        assert!(mix.is_valid());
        assert!((mix.conditional() - 0.7).abs() < 1e-12);

        let bad = TerminatorMix {
            call: 0.9,
            indirect_call: 0.9,
            jump: 0.0,
            indirect_jump: 0.0,
            early_return: 0.0,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn conditional_mix_accounting() {
        let mix = ConditionalBehaviorMix {
            loop_backedge: 0.2,
            pattern: 0.1,
            data_dependent: 0.05,
            bias_mean: 0.8,
            mean_trip_count: 8.0,
        };
        assert!(mix.is_valid());
        assert!((mix.biased() - 0.65).abs() < 1e-12);
        let bad = ConditionalBehaviorMix {
            mean_trip_count: 1.0,
            ..mix
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn profile_builders() {
        let p = WorkloadKind::Apache
            .profile()
            .with_footprint_bytes(64 * 1024)
            .with_seed(99)
            .with_service_roots(24)
            .with_hot_callee_fraction(0.5)
            .with_utility_fraction(0.1)
            .with_mean_block_instructions(7.0)
            .with_mean_function_blocks(10.0)
            .with_cond_target_mean_lines(2.0)
            .with_cond_backward_fraction(0.25)
            .with_max_call_depth(9);
        assert_eq!(p.footprint_bytes, 64 * 1024);
        assert_eq!(p.seed, 99);
        assert_eq!(p.service_roots, 24);
        assert_eq!(p.hot_callee_fraction, 0.5);
        assert_eq!(p.utility_fraction, 0.1);
        assert_eq!(p.mean_block_instructions, 7.0);
        assert_eq!(p.mean_function_blocks, 10.0);
        assert_eq!(p.cond_target_mean_lines, 2.0);
        assert_eq!(p.cond_backward_fraction, 0.25);
        assert_eq!(p.max_call_depth, 9);
        assert_eq!(p.name(), "Apache");
        assert!(p.is_valid());
    }

    #[test]
    fn validate_names_the_offending_field() {
        let err = WorkloadProfile::tiny(1)
            .with_footprint_bytes(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "footprint_bytes");
        assert!(err.to_string().contains("got 0"), "{err}");

        let err = WorkloadProfile::tiny(1)
            .with_service_roots(0)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "service_roots");

        let err = WorkloadProfile::tiny(1)
            .with_hot_callee_fraction(1.5)
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "hot_callee_fraction");

        let mut bad_mix = WorkloadProfile::tiny(1);
        bad_mix.terminators.call = 0.95;
        bad_mix.terminators.jump = 0.95;
        let err = bad_mix.validate().unwrap_err();
        assert_eq!(err.field, "terminators");
        assert!(err.to_string().contains("sum"), "{err}");

        let mut bad_backend = WorkloadProfile::tiny(1);
        bad_backend.backend.base_latency = 0;
        let err = bad_backend.validate().unwrap_err();
        assert_eq!(err.field, "backend.base_latency");
    }

    #[test]
    fn workload_kind_display_matches_paper_labels() {
        let names: Vec<_> = WorkloadKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(
            names,
            vec!["Nutch", "Streaming", "Apache", "Zeus", "Oracle", "DB2"]
        );
    }

    #[test]
    fn profiles_all_returns_six() {
        assert_eq!(WorkloadProfile::all().len(), 6);
    }
}
