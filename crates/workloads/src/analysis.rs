//! Workload characterisation helpers.
//!
//! These functions compute the workload-level statistics the paper uses to
//! motivate its design:
//!
//! * the distance, in cache blocks, between a taken conditional branch and
//!   its target (Figure 4) — the key reason branch-predictor-directed
//!   prefetching works even with an imperfect predictor;
//! * the size of the active branch and instruction working sets, which is
//!   what defeats practical BTBs and L1-I caches in the first place.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use sim_core::{BranchKind, LineGeometry};
use std::collections::HashSet;

/// Histogram of taken-conditional-branch target distances in cache blocks.
///
/// `buckets[d]` counts taken conditional branches whose target lies exactly
/// `d` cache blocks away from the branch instruction, for `d` in
/// `0..=max_distance`; branches further away land in the overflow bucket.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BranchDistanceHistogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl BranchDistanceHistogram {
    /// Measures the histogram over a dynamic trace.
    pub fn measure(trace: &Trace, geometry: LineGeometry, max_distance: u64) -> Self {
        let mut buckets = vec![0u64; (max_distance + 1) as usize];
        let mut overflow = 0u64;
        let mut total = 0u64;
        for d in trace.blocks() {
            let term = match d.block.terminator {
                Some(t) => t,
                None => continue,
            };
            if term.kind != BranchKind::Conditional || !d.outcome.taken {
                continue;
            }
            let dist = geometry.line_distance(term.pc, d.outcome.next_pc);
            total += 1;
            if dist <= max_distance {
                buckets[dist as usize] += 1;
            } else {
                overflow += 1;
            }
        }
        BranchDistanceHistogram {
            buckets,
            overflow,
            total,
        }
    }

    /// Total taken conditional branches observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of taken conditional branches at exactly distance `d`.
    pub fn fraction_at(&self, d: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.buckets
            .get(d as usize)
            .map(|&c| c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    /// Cumulative fraction of taken conditional branches within `d` cache
    /// blocks (the y-axis of Figure 4).
    pub fn cumulative_within(&self, d: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.buckets.iter().take((d + 1) as usize).sum();
        upto as f64 / self.total as f64
    }

    /// The per-distance cumulative series for distances `0..=max`, as plotted
    /// in Figure 4.
    pub fn cumulative_series(&self) -> Vec<f64> {
        (0..self.buckets.len() as u64)
            .map(|d| self.cumulative_within(d))
            .collect()
    }
}

/// Aggregate working-set statistics of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkingSetStats {
    /// Distinct cache lines touched by instruction fetch.
    pub instruction_lines: usize,
    /// Distinct static branch PCs executed.
    pub branch_working_set: usize,
    /// Distinct static branch PCs that were taken at least once — the set a
    /// BTB actually needs to hold.
    pub taken_branch_working_set: usize,
    /// Distinct basic blocks executed.
    pub distinct_blocks: usize,
    /// Dynamic instruction count.
    pub instructions: u64,
}

impl WorkingSetStats {
    /// Measures the working sets of a trace.
    pub fn measure(trace: &Trace, geometry: LineGeometry) -> Self {
        let mut lines = HashSet::new();
        let mut branches = HashSet::new();
        let mut taken_branches = HashSet::new();
        let mut blocks = HashSet::new();
        for d in trace.blocks() {
            blocks.insert(d.start());
            for line in geometry.lines_spanned(d.start(), d.instructions()) {
                lines.insert(line);
            }
            if let Some(term) = d.block.terminator {
                branches.insert(term.pc);
                if d.outcome.taken {
                    taken_branches.insert(term.pc);
                }
            }
        }
        WorkingSetStats {
            instruction_lines: lines.len(),
            branch_working_set: branches.len(),
            taken_branch_working_set: taken_branches.len(),
            distinct_blocks: blocks.len(),
            instructions: trace.instructions(),
        }
    }

    /// Active instruction footprint in bytes.
    pub fn footprint_bytes(&self, geometry: LineGeometry) -> u64 {
        self.instruction_lines as u64 * geometry.line_bytes()
    }
}

/// Dynamic branch mix of a trace: how often each branch kind executes and how
/// often it is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchMix {
    /// Executed conditional branches.
    pub conditional: u64,
    /// Taken conditional branches.
    pub conditional_taken: u64,
    /// Executed unconditional branches (jumps, calls, returns, indirect).
    pub unconditional: u64,
    /// Total dynamic instructions.
    pub instructions: u64,
}

impl BranchMix {
    /// Measures the dynamic branch mix of a trace.
    pub fn measure(trace: &Trace) -> Self {
        let mut mix = BranchMix {
            instructions: trace.instructions(),
            ..BranchMix::default()
        };
        for d in trace.blocks() {
            let term = match d.block.terminator {
                Some(t) => t,
                None => continue,
            };
            if term.kind == BranchKind::Conditional {
                mix.conditional += 1;
                if d.outcome.taken {
                    mix.conditional_taken += 1;
                }
            } else {
                mix.unconditional += 1;
            }
        }
        mix
    }

    /// Dynamic conditional branches per kilo-instruction.
    pub fn conditional_per_kilo_instruction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.conditional as f64 * 1000.0 / self.instructions as f64
    }

    /// Fraction of executed conditional branches that were taken.
    pub fn conditional_taken_rate(&self) -> f64 {
        if self.conditional == 0 {
            return 0.0;
        }
        self.conditional_taken as f64 / self.conditional as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::CodeLayout;
    use crate::profile::WorkloadProfile;

    fn sample() -> (CodeLayout, Trace) {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(33));
        let trace = Trace::generate_blocks(&layout, 60_000);
        (layout, trace)
    }

    #[test]
    fn distance_histogram_matches_figure4_shape() {
        let (layout, trace) = sample();
        let hist = BranchDistanceHistogram::measure(&trace, layout.geometry(), 8);
        assert!(hist.total() > 1000);
        // Figure 4: ~92 % of taken conditional branches land within 4 blocks.
        let within4 = hist.cumulative_within(4);
        assert!(
            within4 > 0.85,
            "only {:.1}% of taken conditionals within 4 blocks",
            within4 * 100.0
        );
        // ...but not all of them: there must be a far tail.
        let within8 = hist.cumulative_within(8);
        assert!(within8 < 1.0, "the far-target tail is missing");
        // The cumulative series is monotone.
        let series = hist.cumulative_series();
        assert_eq!(series.len(), 9);
        for pair in series.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        // Fractions at individual distances sum to the cumulative value.
        let sum: f64 = (0..=4).map(|d| hist.fraction_at(d)).sum();
        assert!((sum - within4).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_zero_statistics() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(3));
        let empty = Trace::generate_blocks(&layout, 0);
        let hist = BranchDistanceHistogram::measure(&empty, layout.geometry(), 8);
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.cumulative_within(4), 0.0);
        assert_eq!(hist.fraction_at(0), 0.0);
        let mix = BranchMix::measure(&empty);
        assert_eq!(mix.conditional_per_kilo_instruction(), 0.0);
        assert_eq!(mix.conditional_taken_rate(), 0.0);
    }

    #[test]
    fn working_set_exceeds_l1i_and_small_btb() {
        let (layout, trace) = sample();
        let ws = WorkingSetStats::measure(&trace, layout.geometry());
        assert!(ws.instructions > 100_000);
        assert!(ws.distinct_blocks > 400);
        assert!(ws.branch_working_set >= ws.taken_branch_working_set);
        assert!(ws.footprint_bytes(layout.geometry()) >= ws.instruction_lines as u64 * 64);
    }

    #[test]
    fn branch_mix_is_consistent() {
        let (_, trace) = sample();
        let mix = BranchMix::measure(&trace);
        assert_eq!(
            mix.conditional + mix.unconditional,
            trace.len() as u64,
            "every block ends in exactly one branch"
        );
        assert!(mix.conditional_taken <= mix.conditional);
        assert!(mix.conditional_per_kilo_instruction() > 50.0);
        let rate = mix.conditional_taken_rate();
        assert!((0.2..=0.9).contains(&rate), "taken rate {rate}");
    }
}
